"""The Executor/Instance protocol and the canonical scenario runner.

Design rule: everything scenario-*independent* (code generation,
compilation, table building) belongs to :meth:`Executor.load`, which
adapters memoize per machine; everything scenario-*dependent* lives on
the :class:`Instance`.  Callers that used to thread pattern/level/
target/semantics through every helper now configure an executor once
and pass it around as a value.
"""

from __future__ import annotations

import abc
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from ..semantics.trace import Trace, TraceRecord
from ..uml.events import Event
from ..uml.statemachine import StateMachine

__all__ = ["Executor", "Instance", "run_scenario", "normalize_stimuli"]

#: One stimulus event, normalized: (event name, integer payload).
PlainEvent = Tuple[str, int]


def normalize_stimuli(stimuli: Iterable[object]) -> List[PlainEvent]:
    """Normalize a stimulus sequence to ``[(name, payload), ...]``.

    Accepts the spellings that grew across the repo: plain names,
    :class:`~repro.uml.events.Event` objects, ``(name, payload)``
    pairs, and objects with an ``events`` attribute of pairs (the fuzz
    layer's ``Stimulus``).
    """
    if hasattr(stimuli, "events"):
        stimuli = stimuli.events   # fuzz Stimulus
    out: List[PlainEvent] = []
    for item in stimuli:
        if isinstance(item, str):
            out.append((item, 0))
        elif isinstance(item, Event):
            out.append((item.name, 0))
        elif isinstance(item, tuple) and len(item) == 2:
            out.append((str(item[0]), int(item[1])))
        else:
            raise TypeError(f"cannot normalize stimulus event {item!r}")
    return out


class Instance(abc.ABC):
    """One executing machine instance behind some backend."""

    machine: StateMachine

    @abc.abstractmethod
    def start(self) -> "Instance":
        """Take the initial transition and run to completion."""

    @abc.abstractmethod
    def dispatch(self, event: object, payload: int = 0) -> "Instance":
        """Queue one event (name or Event) and run to completion."""

    @property
    @abc.abstractmethod
    def trace(self) -> Trace:
        """Everything this instance did (grows monotonically)."""

    @property
    @abc.abstractmethod
    def in_final(self) -> bool:
        """True when the top region reached its final state."""

    @property
    @abc.abstractmethod
    def is_terminated(self) -> bool:
        """True after a terminate pseudostate (backends without
        terminate support always report False)."""

    @abc.abstractmethod
    def attributes(self) -> Dict[str, int]:
        """Current context-attribute values."""

    def step(self, event: object, payload: int = 0) -> List[TraceRecord]:
        """Dispatch one event, return only the records it produced."""
        before = len(self.trace.records)
        self.dispatch(event, payload)
        return list(self.trace.records[before:])

    def run_scenario(self, stimuli: Iterable[object]) -> "Instance":
        """Start (if needed) and dispatch every stimulus event in
        order, stopping early on termination — the contract every
        backend shares."""
        if not self.is_started:
            self.start()
        for name, payload in normalize_stimuli(stimuli):
            if self.is_terminated:
                break
            self.dispatch(name, payload)
        return self

    @property
    def is_started(self) -> bool:
        return True   # adapters that distinguish override this


class Executor(abc.ABC):
    """A way of executing state machines.

    Adapters memoize compilation per machine, so loading many instances
    of one machine — or many scenarios against one machine — pays for
    the backend's compile step once.
    """

    #: Short stable name ("interp", "vm", "fleet") used in oracle cell
    #: ids and reports.
    name: str = "?"

    @abc.abstractmethod
    def load(self, machine: StateMachine, *,
             externals: Optional[Mapping[str, Callable]] = None
             ) -> Instance:
        """Prepare one fresh instance of *machine* (not yet started)."""

    def describe(self) -> str:
        return self.name


def run_scenario(executor: Executor, machine: StateMachine,
                 stimuli: Iterable[object], *,
                 externals: Optional[Mapping[str, Callable]] = None
                 ) -> Instance:
    """THE scenario entry point: load, start, dispatch, return.

    Replaces the per-backend helpers (interpreter
    ``run_scenario(machine, events, config)``, VM
    ``run_vm_scenario(machine, events, pattern, level)``) whose
    argument orders never agreed; those remain as deprecation shims
    over this function.
    """
    instance = executor.load(machine, externals=externals)
    return instance.run_scenario(stimuli)
