"""repro.exec — one Executor protocol over every execution backend.

The repo grew three ways to run a state machine: the reference
interpreter (:mod:`repro.semantics.runtime`), compiled code on the ISA
simulator (:mod:`repro.vm.harness`), and the vectorized fleet engine
(:mod:`repro.fleet`).  Each had its own construction dance and argument
order.  This package is the redesign that unifies them:

* :class:`Executor` — ``load(machine) -> Instance`` (compilation or
  other scenario-independent work happens here, memoized per machine);
* :class:`Instance` — ``start()``, ``dispatch(event)``,
  ``step(event) -> new trace records``, ``trace`` / ``in_final`` /
  ``is_terminated`` / ``attributes()`` observers;
* :func:`run_scenario` — the one canonical entry point
  ``run_scenario(executor, machine, stimuli)`` every backend shares
  (the per-backend ``run_scenario`` / ``run_vm_scenario`` helpers are
  deprecation shims over this).

Adapters: :class:`InterpreterExecutor`, :class:`VMExecutor`,
:class:`FleetExecutor`.
"""

from .protocol import (Executor, Instance, normalize_stimuli,
                       run_scenario)
from .adapters import (FleetExecutor, InterpreterExecutor, VMExecutor,
                       default_executors)

__all__ = ["Executor", "Instance", "run_scenario", "normalize_stimuli",
           "InterpreterExecutor", "VMExecutor", "FleetExecutor",
           "default_executors"]
