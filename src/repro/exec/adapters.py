"""Executor adapters over the three execution backends.

Each adapter owns the backend-specific configuration (semantics for
the interpreter and fleet, pattern/level/target for the VM) and
memoizes the scenario-independent compile per machine, keyed weakly so
machines can be garbage collected.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Mapping, Optional, Union

from ..compiler.driver import OptLevel
from ..compiler.target.description import TargetDescription
from ..fleet.engine import Fleet
from ..fleet.table import TableProgram, compile_table
from ..semantics.runtime import MachineInstance
from ..semantics.trace import Trace
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from ..vm.harness import CompiledProgram
from .protocol import Executor, Instance

__all__ = ["InterpreterExecutor", "VMExecutor", "FleetExecutor",
           "default_executors"]


# ---------------------------------------------------------------------------
# interpreter
# ---------------------------------------------------------------------------

class _InterpreterInstance(Instance):
    def __init__(self, machine: StateMachine, semantics: SemanticsConfig,
                 externals: Optional[Mapping[str, Callable]]) -> None:
        self.machine = machine
        self.inner = MachineInstance(machine, config=semantics,
                                     externals=externals)

    def start(self) -> "Instance":
        self.inner.start()
        return self

    def dispatch(self, event: object, payload: int = 0) -> "Instance":
        self.inner.dispatch(event, priority=payload)
        return self

    @property
    def is_started(self) -> bool:
        return self.inner.is_started

    @property
    def trace(self) -> Trace:
        return self.inner.trace

    @property
    def in_final(self) -> bool:
        return self.inner.in_final

    @property
    def is_terminated(self) -> bool:
        return self.inner.is_terminated

    def attributes(self) -> Dict[str, int]:
        return dict(self.inner.attributes)


class InterpreterExecutor(Executor):
    """The reference semantics (:mod:`repro.semantics.runtime`)."""

    name = "interp"

    def __init__(self, semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
                 ) -> None:
        self.semantics = semantics

    def load(self, machine: StateMachine, *,
             externals: Optional[Mapping[str, Callable]] = None
             ) -> Instance:
        return _InterpreterInstance(machine, self.semantics, externals)

    def describe(self) -> str:
        return f"interp[{self.semantics.describe()}]"


# ---------------------------------------------------------------------------
# compiled code on the ISA simulator
# ---------------------------------------------------------------------------

class _VMInstance(Instance):
    def __init__(self, program: CompiledProgram,
                 externals: Optional[Mapping[str, Callable]]) -> None:
        self.machine = program.model
        self.program = program
        self._externals = externals
        self.vm = None   # booted by start()

    def start(self) -> "Instance":
        if self.vm is not None:
            raise RuntimeError("instance already started")
        self.vm = self.program.boot(externals=self._externals)
        return self

    def _booted(self):
        if self.vm is None:
            raise RuntimeError("dispatch before start()")
        return self.vm

    def dispatch(self, event: object, payload: int = 0) -> "Instance":
        self._booted().dispatch(event)
        return self

    @property
    def is_started(self) -> bool:
        return self.vm is not None

    @property
    def trace(self) -> Trace:
        return self._booted().trace

    @property
    def in_final(self) -> bool:
        return self._booted().is_final()

    @property
    def is_terminated(self) -> bool:
        return False   # generated runtimes have no terminate support

    def attributes(self) -> Dict[str, int]:
        vm = self._booted()
        return {name: vm.read_attribute(name)
                for name in self.machine.context.attributes}

    @property
    def metrics(self):
        """Backend extra: the simulator's deterministic cost counters."""
        return self._booted().metrics


class VMExecutor(Executor):
    """Generated code, compiled and run on the RT ISA simulator.

    ``load`` compiles once per machine (weakly memoized), so a
    conformance sweep over many scenarios assembles one image and boots
    a fresh simulator per instance.
    """

    name = "vm"

    def __init__(self, pattern: str = "nested-switch",
                 level: OptLevel = OptLevel.OS,
                 target: Union[TargetDescription, str, None] = None) -> None:
        self.pattern = pattern
        self.level = level
        self.target = target
        self._programs: "weakref.WeakKeyDictionary[StateMachine, CompiledProgram]" = \
            weakref.WeakKeyDictionary()

    def program_for(self, machine: StateMachine) -> CompiledProgram:
        program = self._programs.get(machine)
        if program is None:
            program = CompiledProgram(machine, self.pattern,
                                      level=self.level, target=self.target)
            self._programs[machine] = program
        return program

    def load(self, machine: StateMachine, *,
             externals: Optional[Mapping[str, Callable]] = None
             ) -> Instance:
        return _VMInstance(self.program_for(machine), externals)

    def describe(self) -> str:
        return f"vm[{self.pattern}, {self.level.value}]"


# ---------------------------------------------------------------------------
# fleet tables
# ---------------------------------------------------------------------------

class _FleetInstance(Instance):
    """Protocol view of lane 0 of a (usually width-1) fleet."""

    def __init__(self, program: TableProgram, n_lanes: int, trace: bool,
                 externals: Optional[Mapping[str, Callable]]) -> None:
        self.machine = program.machine
        self.fleet = Fleet(program, n_lanes, externals=externals,
                           trace=trace)

    def start(self) -> "Instance":
        self.fleet.start()
        return self

    def dispatch(self, event: object, payload: int = 0) -> "Instance":
        self.fleet.dispatch_all(event)
        return self

    @property
    def is_started(self) -> bool:
        return self.fleet.is_started

    @property
    def trace(self) -> Trace:
        return self.fleet.trace_of(0)

    @property
    def in_final(self) -> bool:
        return self.fleet.lane_in_final(0)

    @property
    def is_terminated(self) -> bool:
        return False   # terminate is outside the fleet subset

    def attributes(self) -> Dict[str, int]:
        return self.fleet.attributes_of(0)


class FleetExecutor(Executor):
    """The vectorized table engine (:mod:`repro.fleet`).

    Through the protocol an instance is lane 0 of an ``n_lanes``-wide
    fleet (default 1); wider loads step every lane with the same
    events, which is how the conformance suite cross-checks the
    vectorized path against the scalar one.
    """

    name = "fleet"

    def __init__(self, semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 n_lanes: int = 1, trace: bool = True) -> None:
        self.semantics = semantics
        self.n_lanes = n_lanes
        self.trace = trace
        self._tables: "weakref.WeakKeyDictionary[StateMachine, TableProgram]" = \
            weakref.WeakKeyDictionary()

    def table_for(self, machine: StateMachine) -> TableProgram:
        table = self._tables.get(machine)
        if table is None:
            table = compile_table(machine, self.semantics)
            self._tables[machine] = table
        return table

    def load(self, machine: StateMachine, *,
             externals: Optional[Mapping[str, Callable]] = None
             ) -> Instance:
        return _FleetInstance(self.table_for(machine), self.n_lanes,
                              self.trace, externals)

    def describe(self) -> str:
        return f"fleet[n={self.n_lanes}]"


def default_executors() -> Dict[str, Executor]:
    """The three stock executors under their protocol names."""
    return {
        "interp": InterpreterExecutor(),
        "vm": VMExecutor(),
        "fleet": FleetExecutor(),
    }
