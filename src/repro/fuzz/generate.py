"""Seeded random machine generator — the fuzzer's program generator.

This is the Csmith of the pipeline: where
:mod:`repro.experiments.workload` builds *families* of machines with a
controlled amount of dead structure (for sweeps with interpretable
axes), this generator builds *arbitrary* machines with a configurable
feature mix, tuned for bug-finding rather than charting:

* composite states (nested once or twice), with completion flows;
* guards over randomly generated expression trees — attributes,
  literals, comparisons, ``&&``/``||``/``!``, and **external-operation
  calls inside guard and assign expressions**;
* duplicate transitions (same source, same trigger — document order
  decides) and shadowed transitions (an unguarded completion outranks
  the event transition under UML priority);
* unreachable flat states and unreachable composites (whole dead
  regions);
* deep chords (extra random edges, including cross-hierarchy
  transitions into and out of composite sub-regions);
* degenerate shapes: the empty machine (initial straight to final),
  single-state machines whose only behavior is internal/self loops;
* event emission to self, internal transitions, transitions to final.

Every draw comes from the case's :class:`random.Random`, so a case is
reproducible from ``(seed, profile)`` alone.  Generated machines always
validate; expression generation deliberately avoids ``/`` and ``%``
(division-by-zero would make the reference raise, and wrapping
semantics differ per word width) and keeps multiplication operands
small so context attributes stay far inside the simulator's 32-bit
words — the runner additionally screens every reference run and
rejects cases that still misbehave (raise or overflow), Csmith-style.

The profile's booleans/probabilities are *feature weights*, not hard
shapes: the point is for the coverage-guided runner to reweight
profiles as they stop producing new behavior.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Set, Tuple

from ..uml import (Assign, Behavior, CallExpr, CallStmt, EmitStmt, Expr,
                   StateMachineBuilder, ValidationError)
from ..uml.actions import BinOp, BoolLit, IntLit, Stmt, UnaryOp, VarRef
from ..uml.builder import RegionBuilder
from ..uml.statemachine import StateMachine
from .case import FuzzCase, Stimulus

__all__ = ["FuzzProfile", "DEFAULT_PROFILES", "random_machine",
           "random_stimulus", "generate_case"]

_ATTRS = ("ax", "bx", "cx")
_OPS = ("probe", "sensor", "motor", "relay")
_CMP = ("<", "<=", ">", ">=", "==", "!=")


@dataclass(frozen=True)
class FuzzProfile:
    """Feature mix of one generation strategy."""

    name: str
    min_states: int = 2
    max_states: int = 6
    p_degenerate: float = 0.0    # empty machine / single-state loop
    p_composite: float = 0.0     # a state becomes composite
    p_nested: float = 0.0        # a composite substate nests again
    composite_width: int = 2
    p_guard: float = 0.3         # a transition gets a guard
    p_guard_call: float = 0.2    # a guard expression embeds a call
    p_effect: float = 0.5        # a transition gets an effect
    p_entry_exit: float = 0.5    # a state gets entry/exit behaviors
    p_assign: float = 0.4        # a behavior statement is an assign
    p_emit: float = 0.0          # a behavior statement emits to self
    p_dup: float = 0.0           # duplicate (source, trigger) transition
    p_shadow: float = 0.0        # unguarded completion shadows an event
    p_dead: float = 0.0          # unreachable state / dead region
    p_chord: float = 0.3         # extra random edge per state
    p_cross: float = 0.0         # a chord crosses region boundaries
    p_internal: float = 0.2      # internal self-transition
    p_final: float = 0.4         # some transition targets final
    p_event_reuse: float = 0.3   # a transition reuses an earlier event
    max_stimuli: int = 3
    max_events: int = 10
    p_unknown_event: float = 0.1  # stimulus event outside the alphabet


#: The fleet of strategies the coverage-guided runner schedules.
DEFAULT_PROFILES: Tuple[FuzzProfile, ...] = (
    FuzzProfile("flat", max_states=6, p_guard=0.35, p_dup=0.2,
                p_chord=0.5, p_final=0.5),
    FuzzProfile("hierarchical", max_states=5, p_composite=0.5,
                p_nested=0.25, composite_width=3, p_shadow=0.3,
                p_cross=0.3, p_guard=0.3),
    FuzzProfile("degenerate", min_states=1, max_states=2,
                p_degenerate=0.7, p_internal=0.5, p_guard=0.2,
                max_stimuli=2, max_events=6),
    FuzzProfile("guard-heavy", max_states=4, p_guard=0.9,
                p_guard_call=0.5, p_dup=0.4, p_effect=0.7,
                p_assign=0.7),
    FuzzProfile("dead-structure", max_states=6, p_dead=0.6,
                p_composite=0.3, p_shadow=0.4, p_guard=0.25),
    FuzzProfile("emitter", max_states=4, p_emit=0.25, p_effect=0.7,
                p_assign=0.5, p_guard=0.3, max_events=8),
)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

def _literal(rng: random.Random) -> Expr:
    return IntLit(rng.randint(-4, 7))


def _int_atom(rng: random.Random, attrs: Sequence[str],
              allow_call: bool) -> Expr:
    roll = rng.random()
    if roll < 0.4 and attrs:
        return VarRef(rng.choice(list(attrs)))
    if allow_call and roll < 0.55:
        n_args = rng.randint(0, 2)
        args = tuple(_literal(rng) if rng.random() < 0.6
                     else VarRef(rng.choice(list(attrs)))
                     for _ in range(n_args)) if attrs else \
            tuple(_literal(rng) for _ in range(n_args))
        return CallExpr(rng.choice(_OPS), args)
    return _literal(rng)


def _int_expr(rng: random.Random, attrs: Sequence[str],
              allow_call: bool, depth: int = 2) -> Expr:
    """Bounded integer expression.  ``*`` only pairs an atom with a
    small literal, and ``/``/``%`` never appear, so values stay well
    inside the simulator's 32-bit words for any reachable run."""
    if depth <= 0 or rng.random() < 0.35:
        return _int_atom(rng, attrs, allow_call)
    op = rng.choice(("+", "-", "*"))
    lhs = _int_expr(rng, attrs, allow_call, depth - 1)
    if op == "*":
        return BinOp(op, lhs, IntLit(rng.randint(-3, 3)))
    rhs = _int_expr(rng, attrs, allow_call, depth - 1)
    return BinOp(op, lhs, rhs)


def _bool_expr(rng: random.Random, attrs: Sequence[str],
               allow_call: bool, depth: int = 2) -> Expr:
    roll = rng.random()
    if depth <= 0 or roll < 0.5:
        return BinOp(rng.choice(_CMP),
                     _int_expr(rng, attrs, allow_call, 1),
                     _int_expr(rng, attrs, allow_call, 1))
    if roll < 0.6:
        return UnaryOp("!", _bool_expr(rng, attrs, allow_call, depth - 1))
    if roll < 0.65:
        return BoolLit(rng.random() < 0.5)
    return BinOp(rng.choice(("&&", "||")),
                 _bool_expr(rng, attrs, allow_call, depth - 1),
                 _bool_expr(rng, attrs, allow_call, depth - 1))


def _behavior(rng: random.Random, attrs: Sequence[str],
              profile: FuzzProfile, alphabet: Sequence[str],
              max_stmts: int = 2) -> Optional[Behavior]:
    statements: List[Stmt] = []
    for _ in range(rng.randint(1, max_stmts)):
        roll = rng.random()
        if roll < profile.p_emit and alphabet:
            statements.append(EmitStmt(rng.choice(list(alphabet))))
        elif roll < profile.p_emit + profile.p_assign and attrs:
            statements.append(Assign(
                rng.choice(list(attrs)),
                _int_expr(rng, attrs, allow_call=rng.random() < 0.5)))
        else:
            n_args = rng.randint(0, 2)
            args = tuple(_int_atom(rng, attrs, allow_call=False)
                         for _ in range(n_args))
            statements.append(CallStmt(CallExpr(rng.choice(_OPS), args)))
    return Behavior(statements=tuple(statements))


# ---------------------------------------------------------------------------
# machines
# ---------------------------------------------------------------------------

class _Gen:
    """One generation run (carries the rng, profile, and name pools)."""

    def __init__(self, rng: random.Random, profile: FuzzProfile) -> None:
        self.rng = rng
        self.profile = profile
        self.attrs: Tuple[str, ...] = ()
        self.event_names: List[str] = []
        self.features: Set[str] = set()
        self._event_counter = 0

    def event(self) -> str:
        """A trigger name: fresh, or an earlier one (event reuse means
        one signal drives transitions in several states)."""
        rng, p = self.rng, self.profile
        if (self.event_names and len(self.event_names) >= p.max_events) or \
                (self.event_names and rng.random() < p.p_event_reuse):
            self.features.add("event-reuse")
            return rng.choice(self.event_names)
        self._event_counter += 1
        name = f"ev{self._event_counter}"
        self.event_names.append(name)
        return name

    def guard(self) -> Optional[Expr]:
        rng, p = self.rng, self.profile
        if rng.random() >= p.p_guard:
            return None
        allow_call = rng.random() < p.p_guard_call
        if allow_call:
            self.features.add("guard-call")
        self.features.add("guard")
        return _bool_expr(rng, self.attrs, allow_call)

    def effect(self) -> Optional[Behavior]:
        rng, p = self.rng, self.profile
        if rng.random() >= p.p_effect:
            return None
        return _behavior(rng, self.attrs, p, self.event_names)

    def entry_exit(self) -> Tuple[Optional[Behavior], Optional[Behavior]]:
        rng, p = self.rng, self.profile
        entry = _behavior(rng, self.attrs, p, self.event_names) \
            if rng.random() < p.p_entry_exit else None
        exit_ = _behavior(rng, self.attrs, p, self.event_names) \
            if rng.random() < p.p_entry_exit * 0.6 else None
        return entry, exit_


def random_machine(rng: random.Random, profile: FuzzProfile,
                   name: str = "Fuzz") -> Tuple[StateMachine, Tuple[str, ...],
                                                Tuple[str, ...]]:
    """Generate one machine.

    Returns ``(machine, alphabet, features)`` — the alphabet is the
    trigger names in use (stimulus generation draws from it), features
    are the coverage tags the run actually exercised.
    """
    gen = _Gen(rng, profile)
    b = StateMachineBuilder(name)
    n_attrs = rng.randint(1, len(_ATTRS))
    gen.attrs = _ATTRS[:n_attrs]
    for attr in gen.attrs:
        b.attribute(attr, rng.randint(-2, 3))

    if rng.random() < profile.p_degenerate:
        _degenerate(b, gen)
    else:
        _structured(b, gen)

    machine = b.build()
    return machine, tuple(gen.event_names), tuple(sorted(gen.features))


def _degenerate(b: StateMachineBuilder, gen: _Gen) -> None:
    rng = gen.rng
    shape = rng.choice(("empty", "single-loop", "single-final"))
    gen.features.add(f"degenerate:{shape}")
    if shape == "empty":
        b.initial_to("final")
        return
    entry, exit_ = gen.entry_exit()
    b.state("S0", entry=entry, exit=exit_)
    b.initial_to("S0")
    if rng.random() < gen.profile.p_internal:
        b.internal("S0", on=gen.event(), guard=gen.guard(),
                   effect=gen.effect())
        gen.features.add("internal")
    b.transition("S0", "S0", on=gen.event(), guard=gen.guard(),
                 effect=gen.effect())
    gen.features.add("self-loop")
    if shape == "single-final":
        b.transition("S0", "final", on=gen.event(), guard=gen.guard())
        gen.features.add("to-final")


def _structured(b: StateMachineBuilder, gen: _Gen) -> None:
    rng, profile = gen.rng, gen.profile
    n_states = rng.randint(max(2, profile.min_states), profile.max_states)
    names: List[str] = []
    inner_names: List[str] = []     # states nested inside composites
    for i in range(n_states):
        sname = f"S{i}"
        entry, exit_ = gen.entry_exit()
        if rng.random() < profile.p_composite:
            gen.features.add("composite")
            comp = b.composite(sname, entry=entry, exit=exit_)
            inner_names.extend(_fill_composite(comp, gen, sname))
        else:
            b.state(sname, entry=entry, exit=exit_)
        names.append(sname)
    b.initial_to(names[0])

    # Connected core: a ring over the top-level states.
    for i, sname in enumerate(names):
        target = names[(i + 1) % len(names)]
        b.transition(sname, target, on=gen.event(), guard=gen.guard(),
                     effect=gen.effect())

    # Deep chords: extra random edges, optionally cross-hierarchy.
    for sname in names:
        if rng.random() >= profile.p_chord:
            continue
        pool = names
        if inner_names and rng.random() < profile.p_cross:
            pool = inner_names
            gen.features.add("cross-region")
        target = rng.choice([t for t in pool if t != sname] or names)
        b.transition(sname, target, on=gen.event(), guard=gen.guard(),
                     effect=gen.effect())
        gen.features.add("chord")
    if inner_names and rng.random() < profile.p_cross:
        # ... and one climbing out of a composite's sub-region.
        b.transition(rng.choice(inner_names), rng.choice(names),
                     on=gen.event(), guard=gen.guard())
        gen.features.add("cross-region")

    # Duplicate transitions: same source and trigger, document order
    # decides which one a dispatch takes (guards permitting).
    existing = [(t.source.name, trig.name)
                for t in b.machine.all_transitions()
                for trig in t.triggers
                if t.source.name in names]
    for source, trig in existing:
        if rng.random() < profile.p_dup:
            b.transition(source, rng.choice(names), on=trig,
                         guard=gen.guard(), effect=gen.effect())
            gen.features.add("duplicate-transition")

    # Internal transitions.
    for sname in names:
        if rng.random() < profile.p_internal:
            b.internal(sname, on=gen.event(), guard=gen.guard(),
                       effect=gen.effect())
            gen.features.add("internal")

    # Shadowed transition: an unguarded completion out of a state makes
    # its same-source event transitions dead under UML priority.
    if rng.random() < profile.p_shadow and len(names) >= 3:
        host = names[1]
        b.completion(host, names[2])
        gen.features.add("shadow")

    # Unreachable structure: states (and whole composite regions)
    # without incoming transitions.
    for i in range(2):
        if rng.random() >= profile.p_dead:
            continue
        dname = f"D{i}"
        if rng.random() < profile.p_composite:
            comp = b.composite(dname)
            _fill_composite(comp, gen, dname)
            gen.features.add("dead-region")
        else:
            b.state(dname, entry=gen.entry_exit()[0])
            gen.features.add("dead-state")
        b.transition(dname, rng.choice(names), on=gen.event(),
                     guard=gen.guard())

    # A way out.
    if rng.random() < profile.p_final:
        b.transition(rng.choice(names), "final", on=gen.event(),
                     guard=gen.guard(), effect=gen.effect())
        gen.features.add("to-final")


def _fill_composite(comp: RegionBuilder, gen: _Gen,
                    prefix: str) -> List[str]:
    """Populate a composite's sub-region: a short chain, a completion
    path, and possibly one more nesting level."""
    rng, profile = gen.rng, gen.profile
    width = rng.randint(1, max(1, profile.composite_width))
    inner = [f"{prefix}x{j}" for j in range(width)]
    for j, iname in enumerate(inner):
        entry, exit_ = gen.entry_exit()
        if j == width - 1 and rng.random() < profile.p_nested:
            nested = comp.composite(iname, entry=entry, exit=exit_)
            gen.features.add("nested-composite")
            _fill_composite(nested, gen, iname)
        else:
            comp.state(iname, entry=entry, exit=exit_)
    comp.initial_to(inner[0])
    for j in range(width - 1):
        comp.transition(inner[j], inner[j + 1], on=gen.event(),
                        guard=gen.guard(), effect=gen.effect())
    if rng.random() < 0.6:
        comp.transition(inner[-1], "final", on=gen.event(),
                        guard=gen.guard())
        gen.features.add("composite-completes")
    return inner


# ---------------------------------------------------------------------------
# stimuli and cases
# ---------------------------------------------------------------------------

def random_stimulus(rng: random.Random, alphabet: Sequence[str],
                    profile: FuzzProfile,
                    max_length: int = 12) -> Stimulus:
    """One event sequence: alphabet draws, occasional out-of-alphabet
    signals, small integer payloads."""
    length = rng.randint(0, max_length)
    events = []
    for _ in range(length):
        if not alphabet or rng.random() < profile.p_unknown_event:
            name = f"zz{rng.randint(0, 2)}"
        else:
            name = rng.choice(list(alphabet))
        events.append((name, rng.randint(0, 3)))
    return Stimulus(tuple(events))


def generate_case(seed: int, profile: FuzzProfile,
                  name: str = "") -> FuzzCase:
    """Generate one reproducible case from ``(seed, profile)``.

    Generation retries (consuming the same rng stream) in the unlikely
    event a draw violates well-formedness, so every returned case holds
    a validated machine.
    """
    rng = random.Random(seed)
    machine_name = name or f"Fz{seed & 0xFFFFFF:06x}"
    for _ in range(8):
        try:
            machine, alphabet, features = random_machine(
                rng, profile, name=machine_name)
            break
        except ValidationError:     # pragma: no cover - safety net
            continue
    else:                           # pragma: no cover - safety net
        b = StateMachineBuilder(machine_name)
        b.state("S0")
        b.initial_to("S0")
        b.transition("S0", "final", on="ev1")
        machine, alphabet, features = b.build(), ("ev1",), ("fallback",)
    n_stimuli = rng.randint(1, max(1, profile.max_stimuli))
    stimuli = tuple(random_stimulus(rng, alphabet, profile)
                    for _ in range(n_stimuli))
    return FuzzCase(machine=machine, stimuli=stimuli, seed=seed,
                    profile=profile.name, features=features)
