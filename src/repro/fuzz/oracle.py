"""The N-way differential oracle.

For one :class:`~repro.fuzz.case.FuzzCase` the oracle runs every
stimulus through

1. the **reference**: the UML interpreter on the case machine;
2. the **model-optimizer executor**: the interpreter on the optimized
   clone (default pipeline — or the deliberately broken pipeline when
   ``inject_bug``/an explicit ``model_selection`` says so);
3. one **compiled VM per grid cell**: pattern × optimization level ×
   target, generated, compiled, assembled and executed on the ISA
   simulator.

and compares the :class:`~repro.fuzz.observe.Observation` of every
executor against the reference.  All executor runs go through the
:class:`~repro.engine.ExperimentEngine` — content-addressed caching
dedupes repeated (machine, stimuli, cell) work across cases, shrink
attempts and corpus replays, and ``engine.map`` runs the grid on the
engine's worker pool.

Cases whose *reference* run is not well defined (the interpreter raises
— unguarded completion cycles, emit storms past the RTC budget — or an
attribute assignment leaves the simulator's 32-bit value range) are
**rejected**, not failed: like Csmith skipping undefined-behavior
programs, the oracle only judges executors on programs the semantics
fully defines.  A grid cell whose codegen pattern *documents* the
machine as unsupported (``unsupported:`` observations, e.g.
cross-region transitions under nested-switch) is counted as skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compiler.driver import OptLevel
from ..engine import ExperimentEngine
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .bugs import INJECTED_PIPELINE, buggy_pass_manager
from .case import FuzzCase
from .observe import (Observation, cached_fleet_observations,
                      cached_interp_observations, cached_vm_observations)

__all__ = ["OracleConfig", "Divergence", "CaseResult",
           "DifferentialOracle", "MODEL_OPT_EXECUTOR", "FLEET_EXECUTOR",
           "VALUE_BOUND"]

#: Executor id of the model-optimizer comparison.
MODEL_OPT_EXECUTOR = "model-opt"

#: Executor id of the vectorized table engine (:mod:`repro.fleet`).
FLEET_EXECUTOR = "fleet"

#: Reference runs assigning any |value| beyond this are rejected: the
#: simulator stores attributes in 32-bit words, the interpreter in
#: unbounded Python ints, so only the agreeing range is well defined.
VALUE_BOUND = 2 ** 31 - 1

_LEVELS = {level.value: level for level in OptLevel}


def _vm_executor_id(pattern: str, level: OptLevel, target: str) -> str:
    return f"vm:{pattern}/{level.value}/{target}"


@dataclass(frozen=True)
class OracleConfig:
    """Which executors one oracle run compares.

    ``patterns=None`` means *unpinned*: a direct oracle run uses
    flat-switch, and the :class:`~repro.fuzz.runner.FuzzRunner`
    rotates one pattern per case.  An explicit tuple pins the grid —
    the runner never rotates past it.
    """

    patterns: Optional[Tuple[str, ...]] = None
    targets: Tuple[str, ...] = ("rt32", "rt16")
    levels: Tuple[str, ...] = ("-O0", "-O1", "-O2", "-Os")
    check_optimized: bool = True
    #: Run the fleet table engine as a fourth executor.  Fresh configs
    #: default to True; :meth:`from_dict` defaults to False so corpus
    #: fixtures recorded before the fleet existed replay with their
    #: exact original executor set.
    check_fleet: bool = True
    inject_bug: bool = False
    #: Explicit pass selection for the model-opt executor (overrides
    #: the default pipeline; may name injected passes).  ``None`` means
    #: the default pipeline — or :data:`INJECTED_PIPELINE` when
    #: ``inject_bug`` is set.
    model_selection: Optional[Tuple[str, ...]] = None
    #: Exact executor pinning (the shrinker's narrowed re-checks): when
    #: set, the VM grid is exactly these ``vm:...`` ids — not the
    #: cross-product of their components — and the pattern/level/target
    #: tuples above are ignored.
    executors: Optional[Tuple[str, ...]] = None

    def cells(self) -> List[Tuple[str, OptLevel, str]]:
        if self.executors is not None:
            out = []
            for executor in self.executors:
                if not executor.startswith("vm:"):
                    continue   # model-opt / fleet are not grid cells
                pattern, level, target = \
                    executor.split(":", 1)[1].split("/")
                out.append((pattern, _LEVELS[level], target))
            return out
        patterns = self.patterns if self.patterns is not None \
            else ("flat-switch",)
        return [(pattern, _LEVELS[level], target)
                for pattern in patterns
                for level in self.levels
                for target in self.targets]

    def selection(self) -> Optional[Tuple[str, ...]]:
        if self.model_selection is not None:
            return self.model_selection
        if self.inject_bug:
            return INJECTED_PIPELINE
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"patterns": (list(self.patterns)
                             if self.patterns is not None else None),
                "targets": list(self.targets),
                "levels": list(self.levels),
                "check_optimized": self.check_optimized,
                "check_fleet": self.check_fleet,
                "inject_bug": self.inject_bug,
                "model_selection": (list(self.model_selection)
                                    if self.model_selection is not None
                                    else None),
                "executors": (list(self.executors)
                              if self.executors is not None else None)}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "OracleConfig":
        selection = data.get("model_selection")
        executors = data.get("executors")
        patterns = data.get("patterns")
        return OracleConfig(
            patterns=tuple(patterns) if patterns is not None else None,
            targets=tuple(data.get("targets", ("rt32", "rt16"))),
            levels=tuple(data.get("levels",
                                  ("-O0", "-O1", "-O2", "-Os"))),
            check_optimized=bool(data.get("check_optimized", True)),
            # Pre-fleet fixtures carry no key; replaying them must not
            # grow a new executor (corpus replays assert the *exact*
            # divergent set).
            check_fleet=bool(data.get("check_fleet", False)),
            inject_bug=bool(data.get("inject_bug", False)),
            model_selection=(tuple(selection) if selection is not None
                             else None),
            executors=(tuple(executors) if executors is not None
                       else None))

    def narrowed_to(self, executors: Sequence[str]) -> "OracleConfig":
        """The cheapest config that still runs *executors* — exactly
        the executors that diverged, not the cross-product of their
        components (the shrinker's re-checks must not latch onto a
        divergence in a cell that was never observed diverging)."""
        pinned = tuple(sorted(set(executors)))
        return replace(self, executors=pinned,
                       check_optimized=MODEL_OPT_EXECUTOR in pinned,
                       check_fleet=FLEET_EXECUTOR in pinned)


@dataclass(frozen=True)
class Divergence:
    """One executor disagreeing with the reference on one stimulus."""

    executor: str
    stimulus_index: int
    reason: str

    def summary(self) -> str:
        return (f"{self.executor} @ stimulus {self.stimulus_index}: "
                f"{self.reason}")


@dataclass
class CaseResult:
    """Everything one oracle run concluded about one case."""

    case: FuzzCase
    status: str = "ok"                    # ok | rejected | diverged
    reject_reason: str = ""
    divergences: List[Divergence] = field(default_factory=list)
    executors_run: int = 0
    cells_skipped: int = 0
    coverage: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def diverged(self) -> bool:
        return self.status == "diverged"

    def divergent_executors(self) -> Tuple[str, ...]:
        return tuple(sorted({d.executor for d in self.divergences}))

    def summary(self) -> str:
        head = self.case.describe()
        if self.status == "rejected":
            return f"{head}: rejected ({self.reject_reason})"
        if self.status == "diverged":
            return (f"{head}: {len(self.divergences)} divergence(s), "
                    f"first: {self.divergences[0].summary()}")
        return (f"{head}: agreed across {self.executors_run} "
                f"executor(s)")


class DifferentialOracle:
    """Runs cases through every executor and compares observations."""

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 config: OracleConfig = OracleConfig(),
                 semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
                 ) -> None:
        self.engine = engine if engine is not None else ExperimentEngine()
        self.config = config
        self.semantics = semantics

    # -- executors ----------------------------------------------------------

    def _optimized_machine(self, machine: StateMachine) -> StateMachine:
        selection = self.config.selection()
        if self.config.inject_bug or \
                self.config.model_selection is not None:
            # Injected/explicit pipelines bypass the engine cache: the
            # default catalog (and so the cached optimize entry point)
            # does not know the planted passes.
            manager = buggy_pass_manager(semantics=self.semantics)
            return manager.run(machine, selection=selection).optimized
        return self.engine.optimize_model(machine,
                                          semantics=self.semantics).optimized

    def run_case(self, case: FuzzCase) -> CaseResult:
        result = CaseResult(case=case,
                            coverage=_case_coverage_shape(case))
        stimuli = case.plain_stimuli()
        reference = cached_interp_observations(self.engine, case.machine,
                                               stimuli, self.semantics)
        result.coverage = result.coverage + _observation_coverage(reference)

        # Csmith-style screen: only judge fully defined references.
        for index, obs in enumerate(reference):
            if not obs.ok:
                result.status = "rejected"
                result.reject_reason = \
                    f"reference stimulus {index}: {obs.error}"
                return result
            if obs.max_assigned_magnitude() > VALUE_BOUND:
                result.status = "rejected"
                result.reject_reason = (f"reference stimulus {index}: "
                                        "assigned value exceeds the 32-bit "
                                        "agreement range")
                return result
            if obs.pool_depth > 1:
                result.status = "rejected"
                result.reject_reason = (
                    f"reference stimulus {index}: queues "
                    f"{obs.pool_depth} pending events (the generated "
                    "runtimes hold a single-slot pool)")
                return result

        executors: List[Tuple[str, Any]] = []
        if self.config.check_optimized:
            optimized = self._optimized_machine(case.machine)
            executors.append((
                MODEL_OPT_EXECUTOR,
                lambda optimized=optimized: cached_interp_observations(
                    self.engine, optimized, stimuli, self.semantics)))
        if self.config.check_fleet:
            executors.append((
                FLEET_EXECUTOR,
                lambda: cached_fleet_observations(
                    self.engine, case.machine, stimuli, self.semantics)))
        for pattern, level, target in self.config.cells():
            executors.append((
                _vm_executor_id(pattern, level, target),
                lambda p=pattern, l=level, t=target:
                    cached_vm_observations(self.engine, case.machine,
                                           stimuli, pattern=p, level=l,
                                           target=t)))

        observations = self.engine.map(lambda item: item[1](), executors)
        for (executor, _), observed in zip(executors, observations):
            if all(obs.unsupported for obs in observed) and observed:
                result.cells_skipped += 1
                continue
            result.executors_run += 1
            result.coverage = result.coverage + \
                _observation_coverage(observed)
            for index, (ref, obs) in enumerate(zip(reference, observed)):
                if not obs.ok:
                    result.divergences.append(Divergence(
                        executor, index, f"executor raised: {obs.error}"))
                elif not ref.matches(obs):
                    result.divergences.append(Divergence(
                        executor, index, ref.first_difference(obs)))
        if result.divergences:
            result.status = "diverged"
        return result


# ---------------------------------------------------------------------------
# coverage signatures
# ---------------------------------------------------------------------------

def _bucket(n: int) -> str:
    if n == 0:
        return "0"
    if n <= 2:
        return "1-2"
    if n <= 5:
        return "3-5"
    if n <= 10:
        return "6-10"
    return "11+"


def _case_coverage_shape(case: FuzzCase) -> Tuple[str, ...]:
    n_states = sum(1 for _ in case.machine.all_states())
    n_trans = sum(1 for _ in case.machine.all_transitions())
    items = {f"shape:states:{_bucket(n_states)}",
             f"shape:transitions:{_bucket(n_trans)}"}
    items.update(f"feature:{feature}" for feature in case.features)
    return tuple(sorted(items))


def _observation_coverage(observations: Sequence[Observation]
                          ) -> Tuple[str, ...]:
    items = set()
    for obs in observations:
        items.update(f"trace:{kind}" for kind in obs.kinds)
        items.add(f"observable:{_bucket(len(obs.payloads))}")
        if obs.final:
            items.add("end:final")
    return tuple(sorted(items))
