"""The repro corpus: minimized diverging cases, persisted.

Corpus entries live in a :class:`repro.store.ArtifactStore` under a
``fuzz-case:`` key prefix — the same verified, atomically-published,
multi-process-safe on-disk format the compile cache uses, so a fuzz
directory can be shared between runs, processes and CI jobs.  Each
entry is a plain-data dict::

    {"id": <case id>,
     "case": <FuzzCase.to_dict()>,
     "oracle": <OracleConfig.to_dict()>,
     "semantics": <variation points the divergence was found under>,
     "expect": [<executor ids that diverged>],
     "note": "<free text>"}

``expect`` is the ground truth for :meth:`Corpus.replay` and the
replay-fixture tests: a repro *reproduces* when re-running the oracle
flags exactly the recorded executors (an empty ``expect`` marks a case
expected to be clean — useful for pinning fixed bugs).  Entries also
export/import as JSON files so minimized repros can be checked into the
test tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

# The semantics codec is the service wire format's — one dict shape for
# every layer that persists a SemanticsConfig.
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..service.protocol import semantics_from_dict, semantics_to_dict
from ..store import ArtifactStore
from .case import FuzzCase
from .oracle import CaseResult, DifferentialOracle, OracleConfig

__all__ = ["Corpus", "ReplayOutcome", "entry_to_json", "entry_from_json",
           "semantics_to_dict", "semantics_from_dict"]

_PREFIX = "fuzz-case:"


def _entry(case: FuzzCase, config: OracleConfig,
           expect: Sequence[str], note: str,
           semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
           ) -> Dict[str, Any]:
    return {"id": case.case_id,
            "case": case.to_dict(),
            "oracle": config.to_dict(),
            "semantics": semantics_to_dict(semantics),
            "expect": sorted(expect),
            "note": note}


def entry_to_json(entry: Dict[str, Any]) -> str:
    return json.dumps(entry, indent=2, sort_keys=True)


def entry_from_json(text: str) -> Dict[str, Any]:
    entry = json.loads(text)
    # Round-trip through the typed objects: malformed files fail here,
    # not deep inside a replay.
    FuzzCase.from_dict(entry["case"])
    OracleConfig.from_dict(entry["oracle"])
    semantics_from_dict(entry.get("semantics"))
    return entry


class ReplayOutcome:
    """Verdict of replaying one corpus entry."""

    def __init__(self, entry: Dict[str, Any], result: CaseResult) -> None:
        self.entry = entry
        self.result = result
        self.expected = tuple(entry.get("expect", ()))
        self.observed = result.divergent_executors()

    @property
    def reproduces(self) -> bool:
        if tuple(sorted(self.expected)) != self.observed:
            return False
        # A clean pin (empty expectation) only counts when the case
        # actually *executed* cleanly — a rejected reference also has
        # zero divergences, but verifies nothing.
        if not self.expected and self.result.status != "ok":
            return False
        return True

    def summary(self) -> str:
        verdict = "reproduces" if self.reproduces else "DOES NOT reproduce"
        detail = ""
        if not self.reproduces:
            detail = (f" (expected {list(self.expected)}, observed "
                      f"{list(self.observed)})")
        return f"{self.entry['id']}: {verdict}{detail}"


class Corpus:
    """Minimized repros in an :class:`~repro.store.ArtifactStore`."""

    def __init__(self, root) -> None:
        self.store = root if isinstance(root, ArtifactStore) \
            else ArtifactStore(root)

    # -- write --------------------------------------------------------------

    def add(self, case: FuzzCase, config: OracleConfig,
            expect: Sequence[str], note: str = "",
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> str:
        entry = _entry(case, config, expect, note, semantics=semantics)
        self.store.put(_PREFIX + case.case_id, entry)
        return case.case_id

    def import_file(self, path) -> str:
        entry = entry_from_json(Path(path).read_text(encoding="utf-8"))
        self.store.put(_PREFIX + entry["id"], entry)
        return entry["id"]

    # -- read ---------------------------------------------------------------

    def ids(self) -> List[str]:
        return sorted(key[len(_PREFIX):] for key in self.store.keys()
                      if key.startswith(_PREFIX))

    def get(self, case_id: str) -> Dict[str, Any]:
        entry = self.store.get(_PREFIX + case_id)
        if entry is None:
            raise KeyError(f"no corpus entry {case_id!r}")
        return entry

    def export_file(self, case_id: str, path) -> None:
        Path(path).write_text(entry_to_json(self.get(case_id)) + "\n",
                              encoding="utf-8")

    def __len__(self) -> int:
        return len(self.ids())

    # -- replay -------------------------------------------------------------

    def replay(self, case_id: str,
               oracle: Optional[DifferentialOracle] = None
               ) -> ReplayOutcome:
        """Re-run one entry under its recorded oracle config."""
        return replay_entry(self.get(case_id), oracle=oracle)


def replay_entry(entry: Dict[str, Any],
                 oracle: Optional[DifferentialOracle] = None
                 ) -> ReplayOutcome:
    """Replay a corpus entry dict (from a store or a JSON fixture)
    under its recorded oracle config *and* semantics."""
    case = FuzzCase.from_dict(entry["case"])
    config = OracleConfig.from_dict(entry["oracle"])
    semantics = semantics_from_dict(entry.get("semantics"))
    engine = oracle.engine if oracle is not None else None
    oracle = DifferentialOracle(engine=engine, config=config,
                                semantics=semantics)
    return ReplayOutcome(entry, oracle.run_case(case))
