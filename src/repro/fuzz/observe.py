"""Observations: what one executor did with one stimulus.

The differential oracle never compares traces directly — it compares
:class:`Observation` values, a small, picklable, executor-neutral
summary of one run:

* the **observable payloads** (external calls with argument values,
  context-attribute assignments, events emitted to self) exactly as
  :func:`repro.semantics.trace.observable_equal` defines them, with
  :class:`~repro.semantics.trace.TraceKind` flattened to its string
  value so observations survive the on-disk cache;
* whether the run ended **in the final state**;
* the set of trace-record **kinds** seen (internal ones included) — not
  compared, but fed to the runner's coverage map;
* an **error** string when the executor raised instead of finishing
  (``unsupported: ...`` when a codegen pattern rejects the machine's
  shape — skipped by the oracle, because a documented feature gap is
  not a semantic divergence).

Two helpers produce them: :func:`observe_interpreter_many` runs the
reference semantics, :func:`observe_vm_many` compiles once and runs
every stimulus on a fresh simulator boot.  Both are pure functions of
their arguments — which is what lets the engine cache them by content
fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..codegen.base import CodegenError
from ..compiler.driver import OptLevel
from ..semantics.runtime import ExecutionError, MachineInstance
from ..semantics.trace import Trace
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from ..vm.encoding import EncodingError
from ..vm.machine import VMError

__all__ = ["Observation", "observe_interpreter_many", "observe_vm_many",
           "observe_fleet_many", "cached_interp_observations",
           "cached_vm_observations", "cached_fleet_observations",
           "UNSUPPORTED_PREFIX"]

#: Error prefix marking "this executor rejects the machine's shape"
#: (e.g. nested-switch refusing cross-region transitions).
UNSUPPORTED_PREFIX = "unsupported: "

PlainStimulus = Sequence[Tuple[str, int]]


@dataclass(frozen=True)
class Observation:
    """One executor's externally-visible behavior on one stimulus."""

    payloads: Tuple[Tuple[str, Tuple], ...] = ()
    final: bool = False
    terminated: bool = False
    kinds: Tuple[str, ...] = ()
    error: Optional[str] = None
    #: Event-pool high-water mark (reference runs only).  The generated
    #: runtimes hold a single pending event, so the oracle rejects
    #: references that queue more than one at a time.
    pool_depth: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def unsupported(self) -> bool:
        return self.error is not None and \
            self.error.startswith(UNSUPPORTED_PREFIX)

    def matches(self, other: "Observation") -> bool:
        """Observable agreement (payloads + end-state verdicts)."""
        return (self.payloads == other.payloads
                and self.final == other.final
                and self.terminated == other.terminated)

    def first_difference(self, other: "Observation") -> str:
        """Human-readable description of the first disagreement."""
        if self.error or other.error:
            return f"errors: {self.error!r} vs {other.error!r}"
        for i, (a, b) in enumerate(zip(self.payloads, other.payloads)):
            if a != b:
                return f"record {i}: {a} vs {b}"
        if len(self.payloads) != len(other.payloads):
            shorter = min(len(self.payloads), len(other.payloads))
            longer = (self.payloads if len(self.payloads) > shorter
                      else other.payloads)
            return (f"record {shorter}: one side ends, other has "
                    f"{longer[shorter]}")
        if self.final != other.final:
            return f"final-state: {self.final} vs {other.final}"
        if self.terminated != other.terminated:
            return f"termination: {self.terminated} vs {other.terminated}"
        return "no difference"

    def max_assigned_magnitude(self) -> int:
        """Largest |value| this run assigned to a context attribute
        (the runner's word-width screen uses it)."""
        worst = 0
        for kind, detail in self.payloads:
            if kind == "assign" and len(detail) == 2:
                worst = max(worst, abs(int(detail[1])))
        return worst


def _trace_payloads(trace: Trace) -> Tuple[Tuple[str, Tuple], ...]:
    return tuple((r.kind.value, r.detail) for r in trace.records
                 if r.is_observable)


def _trace_kinds(trace: Trace) -> Tuple[str, ...]:
    return tuple(sorted({r.kind.value for r in trace.records}))


def cached_interp_observations(engine, machine: StateMachine, stimuli,
                               semantics: SemanticsConfig =
                               UML_DEFAULT_SEMANTICS
                               ) -> Tuple[Observation, ...]:
    """:func:`observe_interpreter_many` through an
    :class:`~repro.engine.ExperimentEngine`'s content-addressed cache.

    The fuzz layer wraps the engine's generic ``get_or_compute``
    surface rather than the engine knowing about fuzz types — the
    engine stays the infrastructure layer.  *stimuli* is plain data (a
    sequence of event sequences of ``(name, payload)`` pairs), so keys
    are stable across processes and a corpus replay can be served from
    a warm disk cache."""
    from ..engine.fingerprint import interp_observation_fingerprint
    key = interp_observation_fingerprint(machine, stimuli, semantics)
    return engine.cache.get_or_compute(
        key, lambda: observe_interpreter_many(machine, stimuli,
                                              semantics))


def cached_vm_observations(engine, machine: StateMachine, stimuli,
                           pattern: str = "flat-switch",
                           level: OptLevel = OptLevel.OS,
                           target=None) -> Tuple[Observation, ...]:
    """:func:`observe_vm_many` through the engine cache: one generate +
    compile + assemble, one fresh simulator boot per stimulus.  The
    fixed-code runtimes implement the UML-default semantics, so there
    is no semantics parameter to vary.

    When the engine runs in delta mode (the default) the compile under
    a cache miss goes through the per-unit tier: a fuzz campaign's
    mutant chains differ from their parents by one edit, so most units
    come back cache-hot even though every mutant's whole-observation
    fingerprint is new."""
    from ..engine.fingerprint import vm_observation_fingerprint
    key = vm_observation_fingerprint(machine, stimuli, pattern, level,
                                     target)
    unit_cache = engine.units if getattr(engine, "delta", False) else None
    return engine.cache.get_or_compute(
        key, lambda: observe_vm_many(machine, stimuli, pattern=pattern,
                                     level=level, target=target,
                                     unit_cache=unit_cache))


def observe_interpreter_many(machine: StateMachine,
                             stimuli: Sequence[PlainStimulus],
                             semantics: SemanticsConfig =
                             UML_DEFAULT_SEMANTICS,
                             ) -> Tuple[Observation, ...]:
    """Run every stimulus on the reference interpreter."""
    out = []
    for stimulus in stimuli:
        instance = MachineInstance(machine, config=semantics)
        try:
            instance.start()
            for name, payload in stimulus:
                if instance.is_terminated:
                    break
                instance.dispatch(name, priority=payload)
        except ExecutionError as exc:
            out.append(Observation(
                payloads=_trace_payloads(instance.trace),
                kinds=_trace_kinds(instance.trace),
                error=f"ExecutionError: {exc}",
                pool_depth=instance.max_pool_depth))
            continue
        out.append(Observation(
            payloads=_trace_payloads(instance.trace),
            final=instance.in_final,
            terminated=instance.is_terminated,
            kinds=_trace_kinds(instance.trace),
            pool_depth=instance.max_pool_depth))
    return tuple(out)


def cached_fleet_observations(engine, machine: StateMachine, stimuli,
                              semantics: SemanticsConfig =
                              UML_DEFAULT_SEMANTICS
                              ) -> Tuple[Observation, ...]:
    """:func:`observe_fleet_many` through the engine cache (one table
    compile, one traced width-1 fleet per stimulus)."""
    from ..engine.fingerprint import fleet_observation_fingerprint
    key = fleet_observation_fingerprint(machine, stimuli, semantics)
    return engine.cache.get_or_compute(
        key, lambda: observe_fleet_many(machine, stimuli, semantics))


def observe_fleet_many(machine: StateMachine,
                       stimuli: Sequence[PlainStimulus],
                       semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                       ) -> Tuple[Observation, ...]:
    """Compile the dispatch table once, run every stimulus on a traced
    width-1 fleet through the Executor protocol.

    Shapes outside the table engine's subset
    (:class:`~repro.fleet.table.FleetUnsupported`) observe as
    ``unsupported:`` for every stimulus — a documented feature gap, not
    a divergence — mirroring how a codegen pattern rejection is
    reported by :func:`observe_vm_many`."""
    from ..exec.adapters import FleetExecutor
    from ..fleet.table import FleetExecutionError, FleetUnsupported
    executor = FleetExecutor(semantics)
    try:
        executor.table_for(machine)
    except FleetUnsupported as exc:
        failure = Observation(error=f"{UNSUPPORTED_PREFIX}{exc}")
        return tuple(failure for _ in stimuli)
    out = []
    for stimulus in stimuli:
        instance = executor.load(machine)
        try:
            instance.start()
            for name, _payload in stimulus:
                instance.dispatch(name)
        except FleetExecutionError as exc:
            out.append(Observation(
                payloads=_trace_payloads(instance.trace),
                kinds=_trace_kinds(instance.trace),
                error=f"FleetExecutionError: {exc}"))
            continue
        out.append(Observation(
            payloads=_trace_payloads(instance.trace),
            final=instance.in_final,
            kinds=_trace_kinds(instance.trace)))
    return tuple(out)


def observe_vm_many(machine: StateMachine,
                    stimuli: Sequence[PlainStimulus],
                    pattern: str = "flat-switch",
                    level: OptLevel = OptLevel.OS,
                    target=None, unit_cache=None) -> Tuple[Observation, ...]:
    """Compile once, then run every stimulus on a fresh simulator.

    *unit_cache* routes the compile through the structure-sharing
    delta path (:mod:`repro.compiler.units`) — byte-identical output,
    shared units served from cache."""
    from ..vm.harness import CompiledProgram
    try:
        program = CompiledProgram(machine, pattern, level=level,
                                  target=target, unit_cache=unit_cache)
    except CodegenError as exc:
        failure = Observation(error=f"{UNSUPPORTED_PREFIX}{exc}")
        return tuple(failure for _ in stimuli)
    except Exception as exc:
        failure = Observation(
            error=f"compile/assemble {type(exc).__name__}: {exc}")
        return tuple(failure for _ in stimuli)
    out = []
    for stimulus in stimuli:
        try:
            vm = program.boot()
            for name, _payload in stimulus:
                vm.dispatch(name)
            out.append(Observation(
                payloads=_trace_payloads(vm.trace),
                final=vm.is_final(),
                kinds=_trace_kinds(vm.trace)))
        except (VMError, EncodingError) as exc:
            out.append(Observation(
                error=f"{type(exc).__name__}: {exc}"))
    return tuple(out)
