"""Deliberately unsound model passes — the fuzzer's planted bugs.

A differential fuzzer that has never caught anything proves nothing:
these passes exist to *validate the oracle and the shrinker* (and the
CI smoke job) by giving them a bug with a known ground truth.  Each is
a :class:`~repro.optim.pass_base.ModelPass` whose name carries the
``inject-`` prefix so it can never be mistaken for a real optimization;
:func:`buggy_pass_manager` yields a pass manager whose catalog contains
them alongside the real passes, and :data:`INJECTED_PIPELINE` is the
default pipeline with the planted bug running first (before
guard simplification can hide the evidence).

``--inject-bug`` on the fuzz CLI switches the oracle's model-optimizer
executor to this manager: generated machines whose guarded transitions
actually fire then diverge from the reference, the shrinker minimizes
the witness, and the corpus ends up holding a small deterministic
repro — the acceptance path for the whole find→shrink→replay loop.
"""

from __future__ import annotations

from typing import Tuple

from ..optim.manager import DEFAULT_PIPELINE, PassManager, \
    default_pass_catalog
from ..optim.pass_base import ModelPass, PassResult
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine

__all__ = ["DropGuardedTransitions", "INJECTED_PIPELINE",
           "buggy_pass_manager"]


class DropGuardedTransitions(ModelPass):
    """DELIBERATELY UNSOUND: delete every guarded event transition.

    The "reasoning" this pass pretends to apply — a guard might be
    false, so the transition might never fire, so it is dead — is the
    classic may/must confusion.  Any machine where a guarded transition
    fires observably becomes a differential witness.
    """

    name = "inject-drop-guarded-transitions"
    description = ("UNSOUND (fuzz oracle validation): treats 'guard may "
                   "be false' as 'transition never fires' and deletes "
                   "every guarded event transition")

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
            ) -> PassResult:
        result = PassResult(self.name)
        for region in list(machine.all_regions()):
            for tr in list(region.transitions):
                if tr.guard is not None and tr.triggers:
                    region.remove_transition(tr)
                    result.record_transition(tr.describe())
        return result


#: The default pipeline with the planted bug up front.
INJECTED_PIPELINE: Tuple[str, ...] = (
    DropGuardedTransitions.name,) + tuple(DEFAULT_PIPELINE)


def buggy_pass_manager(semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
                       ) -> PassManager:
    """A pass manager whose catalog includes the injected bugs."""
    catalog = default_pass_catalog()
    bug = DropGuardedTransitions()
    catalog[bug.name] = bug
    return PassManager(passes=catalog.values(), semantics=semantics)
