"""The coverage-guided fuzz loop.

:class:`FuzzRunner` drives the whole subsystem: it schedules generation
profiles, generates cases, runs them through the
:class:`~repro.fuzz.oracle.DifferentialOracle`, shrinks whatever
diverges and persists the minimized repros to the
:class:`~repro.fuzz.corpus.Corpus`.

**Coverage guidance** is AFL-style energy scheduling over the profile
fleet: every case yields a set of coverage items (machine-shape
buckets, generator feature tags, trace-record kinds, observable-count
buckets — see the oracle's signature helpers), the runner keeps the
union of everything seen, and a profile earns energy proportional to
the *new* items its cases contribute.  Profiles are drawn by energy, so
strategies that stopped producing new behavior fade and the ones still
finding fresh territory are sampled more — all deterministically from
the run seed.

**Pattern rotation**: the oracle grid is targets × levels × patterns;
running all four codegen patterns on every case would quadruple the
(dominant) compile cost for little marginal coverage, so by default
each case is judged under one pattern, rotated round-robin — the run as
a whole still exercises every pattern.  ``patterns=...`` pins the grid
instead (the rotation is recorded per case, so corpus replays are
exact either way).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..codegen import ALL_PATTERNS
from ..engine import ExperimentEngine
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from .case import FuzzCase
from .corpus import Corpus
from .generate import DEFAULT_PROFILES, FuzzProfile, generate_case
from .oracle import CaseResult, DifferentialOracle, OracleConfig
from .shrink import ShrinkReport, shrink_case

__all__ = ["CoverageMap", "FuzzStats", "FuzzReport", "FuzzRunner"]

_PATTERN_NAMES = tuple(g.name for g in ALL_PATTERNS)


class CoverageMap:
    """The union of coverage items seen so far."""

    def __init__(self) -> None:
        self._items: Set[str] = set()

    def add(self, items: Sequence[str]) -> int:
        """Merge *items*; returns how many were new."""
        new = 0
        for item in items:
            if item not in self._items:
                self._items.add(item)
                new += 1
        return new

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[str, ...]:
        return tuple(sorted(self._items))


@dataclass
class FuzzStats:
    """Counters of one fuzz run."""

    cases: int = 0
    executed: int = 0
    rejected: int = 0
    diverged: int = 0
    shrunk: int = 0
    executors_run: int = 0
    cells_skipped: int = 0
    new_coverage: int = 0

    def summary(self) -> str:
        return (f"{self.cases} case(s): {self.executed} executed, "
                f"{self.rejected} rejected, {self.diverged} diverged "
                f"({self.shrunk} shrunk); {self.executors_run} executor "
                f"run(s), {self.cells_skipped} unsupported cell(s) "
                f"skipped")


@dataclass
class FuzzReport:
    """Everything a fuzz run produced."""

    seed: int
    stats: FuzzStats = field(default_factory=FuzzStats)
    coverage: int = 0
    divergent: List[CaseResult] = field(default_factory=list)
    shrink_reports: List[ShrinkReport] = field(default_factory=list)
    corpus_ids: List[str] = field(default_factory=list)
    profile_energy: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.divergent

    def summary(self) -> str:
        lines = [f"fuzz(seed={self.seed}): {self.stats.summary()}",
                 f"coverage: {self.coverage} item(s); profile energy: "
                 + ", ".join(f"{name}={energy:.0f}" for name, energy
                             in sorted(self.profile_energy.items()))]
        for result in self.divergent:
            lines.append("  DIVERGENCE " + result.summary())
        for report in self.shrink_reports:
            lines.append("  " + report.summary())
        if self.corpus_ids:
            lines.append("  corpus: " + ", ".join(self.corpus_ids))
        return "\n".join(lines)


class FuzzRunner:
    """Generate → judge → shrink → persist, *cases* times."""

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 config: OracleConfig = OracleConfig(),
                 profiles: Sequence[FuzzProfile] = DEFAULT_PROFILES,
                 corpus: Optional[Corpus] = None,
                 semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 rotate_patterns: Optional[bool] = None,
                 shrink_limit: int = 5,
                 on_progress=None) -> None:
        self.engine = engine if engine is not None else ExperimentEngine()
        self.config = config
        self.profiles = tuple(profiles)
        self.corpus = corpus
        self.semantics = semantics
        # Rotate only while the pattern grid is unpinned — an explicit
        # pattern tuple in the config always pins it.
        self.rotate_patterns = (rotate_patterns
                                if rotate_patterns is not None
                                else config.patterns is None)
        self.shrink_limit = shrink_limit
        self.coverage = CoverageMap()
        self.energy: Dict[str, float] = {p.name: 1.0
                                         for p in self.profiles}
        self.on_progress = on_progress

    # -- scheduling ---------------------------------------------------------

    def _pick_profile(self, rng: random.Random) -> FuzzProfile:
        weights = [self.energy[p.name] for p in self.profiles]
        return rng.choices(list(self.profiles), weights=weights, k=1)[0]

    def _case_config(self, index: int) -> OracleConfig:
        if not self.rotate_patterns:
            return self.config
        pattern = _PATTERN_NAMES[index % len(_PATTERN_NAMES)]
        return replace(self.config, patterns=(pattern,))

    # -- the loop -----------------------------------------------------------

    def run(self, cases: int, seed: int = 0) -> FuzzReport:
        rng = random.Random(seed)
        report = FuzzReport(seed=seed)
        for index in range(cases):
            case_seed = rng.getrandbits(48)
            profile = self._pick_profile(rng)
            case = generate_case(case_seed, profile)
            config = self._case_config(index)
            oracle = DifferentialOracle(engine=self.engine, config=config,
                                        semantics=self.semantics)
            result = oracle.run_case(case)
            self._account(report, profile, result)
            if result.diverged:
                self._handle_divergence(report, case, result, oracle)
            if self.on_progress is not None:
                self.on_progress(index + 1, cases, report)
        report.coverage = len(self.coverage)
        report.profile_energy = dict(self.energy)
        return report

    def _account(self, report: FuzzReport, profile: FuzzProfile,
                 result: CaseResult) -> None:
        stats = report.stats
        stats.cases += 1
        stats.executors_run += result.executors_run
        stats.cells_skipped += result.cells_skipped
        if result.status == "rejected":
            stats.rejected += 1
        else:
            stats.executed += 1
        if result.diverged:
            stats.diverged += 1
        new = self.coverage.add(result.coverage)
        stats.new_coverage += new
        # Energy decays toward the baseline and spikes on new coverage:
        # a profile that was productive early but dried up stops
        # dominating the draw after a few barren cases.
        self.energy[profile.name] = \
            1.0 + 0.8 * (self.energy[profile.name] - 1.0) + new

    def _handle_divergence(self, report: FuzzReport, case: FuzzCase,
                           result: CaseResult,
                           oracle: DifferentialOracle) -> None:
        report.divergent.append(result)
        if len(report.shrink_reports) >= self.shrink_limit:
            return
        shrink = shrink_case(case, result, oracle)
        report.shrink_reports.append(shrink)
        report.stats.shrunk += 1
        if self.corpus is not None:
            # The shrinker judged candidates under a *narrowed* oracle;
            # the minimized machine may diverge in more cells of the
            # full grid than the one it was minimized against.  The
            # persisted expectation must match what a replay of the
            # stored (full) config will observe.
            final = oracle.run_case(shrink.minimized)
            case_id = self.corpus.add(
                shrink.minimized, oracle.config,
                expect=final.divergent_executors(),
                note=(f"seed={case.seed} profile={case.profile} "
                      f"shrunk from {case.case_id}"),
                semantics=self.semantics)
            report.corpus_ids.append(case_id)
