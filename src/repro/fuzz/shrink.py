"""Case minimization: delta-debugging for diverging fuzz cases.

Given a case the oracle flagged, the shrinker searches for the smallest
case that *still* diverges, by greedy edit-and-recheck to fixpoint:

1. **stimulus reduction** — keep only the first diverging stimulus,
   then drop its events one at a time (back to front, so the failing
   prefix survives);
2. **machine reduction** — try, in order of expected payoff: removing
   whole states (incident transitions included, nested regions taken
   along), removing individual transitions, erasing guards, erasing
   transition effects, erasing entry/exit behaviors, and sweeping
   now-unused events.

Every candidate is a *clone* (cases are immutable), must still
validate, and is re-judged by the oracle **narrowed to the executors
that originally diverged** — the single cell that disagreed, not the
whole grid — which keeps a shrink run to a few dozen cheap checks.  A
candidate whose reference run becomes undefined is simply not taken
(the oracle rejects it, so it no longer counts as diverging).

The result is deterministic: edits are enumerated in model document
order and the first improving candidate is taken, so a given
(case, oracle) pair always shrinks to the same minimized repro — the
property that lets tests replay corpus fixtures byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..optim.pass_base import PassResult, remove_vertex_with_transitions
from ..optim.passes.remove_unused_events import RemoveUnusedEvents
from ..uml import Behavior, ValidationError, clone_machine
from ..uml.elements import ModelError
from ..uml.statemachine import State, StateMachine
from ..uml.validate import validate_machine
from .case import FuzzCase, Stimulus
from .oracle import CaseResult, DifferentialOracle, OracleConfig

__all__ = ["ShrinkReport", "shrink_case"]


@dataclass
class ShrinkReport:
    """Outcome of one shrink run."""

    original: FuzzCase
    minimized: FuzzCase
    result: CaseResult           # oracle verdict on the minimized case
    attempts: int = 0
    accepted: int = 0

    def summary(self) -> str:
        def cost(case: FuzzCase) -> str:
            states = sum(1 for _ in case.machine.all_states())
            trans = sum(1 for _ in case.machine.all_transitions())
            events = sum(len(s) for s in case.stimuli)
            return f"{states}st/{trans}tr/{events}ev"
        return (f"shrink {self.original.case_id} -> "
                f"{self.minimized.case_id}: {cost(self.original)} -> "
                f"{cost(self.minimized)} in {self.attempts} attempt(s) "
                f"({self.accepted} accepted)")


def _case_cost(case: FuzzCase) -> Tuple[int, int, int, int, int, int]:
    """Lexicographic size of a case.  Every edit kind must decrease a
    component (all else equal) or the greedy loop can never accept it:
    guards and declared events get their own components exactly so
    that erase_guard / sweep_events candidates register as progress."""
    machine = case.machine
    n_states = sum(1 for _ in machine.all_states())
    n_trans = sum(1 for _ in machine.all_transitions())
    n_stmts = sum(len(s.entry.statements) + len(s.exit.statements)
                  for s in machine.all_states())
    n_stmts += sum(len(t.effect.statements)
                   for t in machine.all_transitions())
    n_guards = sum(1 for t in machine.all_transitions()
                   if t.guard is not None)
    n_decl_events = len(machine.events)
    n_events = sum(len(s) for s in case.stimuli)
    return (n_states, n_trans, n_events, n_stmts, n_guards,
            n_decl_events)


def _valid(machine: StateMachine) -> bool:
    try:
        validate_machine(machine)
    except (ValidationError, ModelError):
        return False
    return True


# -- machine edits ----------------------------------------------------------
# Each edit factory yields callables that mutate a *clone* in place and
# return True when they changed something.  Addressing is by document
# order (state names are unique machine-wide by generator construction;
# transitions go by index), which survives cloning.

def _machine_edits(machine: StateMachine) -> List[Callable]:
    edits: List[Callable] = []
    state_names = [s.qualified_name for s in machine.all_states()]
    n_transitions = sum(1 for _ in machine.all_transitions())

    def remove_state(qname: str):
        def apply(clone: StateMachine) -> bool:
            for state in clone.all_states():
                if state.qualified_name == qname:
                    remove_vertex_with_transitions(
                        state, PassResult("shrink"))
                    return True
            return False
        return apply

    def remove_transition(index: int):
        def apply(clone: StateMachine) -> bool:
            for i, tr in enumerate(clone.all_transitions()):
                if i == index:
                    # The transition may live in any region; find it.
                    for region in clone.all_regions():
                        if tr in region.transitions:
                            region.remove_transition(tr)
                            return True
                    return False
            return False
        return apply

    def erase_guard(index: int):
        def apply(clone: StateMachine) -> bool:
            for i, tr in enumerate(clone.all_transitions()):
                if i == index:
                    if tr.guard is None:
                        return False
                    tr.guard = None
                    return True
            return False
        return apply

    def erase_effect(index: int):
        def apply(clone: StateMachine) -> bool:
            for i, tr in enumerate(clone.all_transitions()):
                if i == index:
                    if not tr.effect.statements:
                        return False
                    tr.effect = Behavior()
                    return True
            return False
        return apply

    def erase_behaviors(qname: str):
        def apply(clone: StateMachine) -> bool:
            for state in clone.all_states():
                if state.qualified_name == qname:
                    if not state.entry.statements and \
                            not state.exit.statements:
                        return False
                    state.entry = Behavior()
                    state.exit = Behavior()
                    return True
            return False
        return apply

    def sweep_events():
        def apply(clone: StateMachine) -> bool:
            return RemoveUnusedEvents().run(clone).changed
        return apply

    for qname in state_names:
        edits.append(remove_state(qname))
    for index in range(n_transitions):
        edits.append(remove_transition(index))
    for index in range(n_transitions):
        edits.append(erase_guard(index))
    for index in range(n_transitions):
        edits.append(erase_effect(index))
    for qname in state_names:
        edits.append(erase_behaviors(qname))
    edits.append(sweep_events())
    return edits


# -- stimulus edits ---------------------------------------------------------

def _stimulus_candidates(case: FuzzCase,
                         result: CaseResult) -> List[FuzzCase]:
    candidates: List[FuzzCase] = []
    if len(case.stimuli) > 1 and result.divergences:
        index = min(d.stimulus_index for d in result.divergences)
        candidates.append(case.with_stimuli([case.stimuli[index]]))
    for s_index, stimulus in enumerate(case.stimuli):
        for e_index in reversed(range(len(stimulus))):
            shorter = Stimulus(stimulus.events[:e_index]
                               + stimulus.events[e_index + 1:])
            new = list(case.stimuli)
            new[s_index] = shorter
            candidates.append(case.with_stimuli(new))
    return candidates


def shrink_case(case: FuzzCase, result: CaseResult,
                oracle: DifferentialOracle,
                max_attempts: int = 600) -> ShrinkReport:
    """Minimize *case* while the (narrowed) oracle still flags it."""
    narrowed = DifferentialOracle(
        engine=oracle.engine,
        config=oracle.config.narrowed_to(result.divergent_executors()),
        semantics=oracle.semantics)
    report = ShrinkReport(original=case, minimized=case, result=result)

    def still_diverges(candidate: FuzzCase
                       ) -> Optional[CaseResult]:
        report.attempts += 1
        verdict = narrowed.run_case(candidate)
        return verdict if verdict.diverged else None

    best, best_result = case, result
    improved = True
    while improved and report.attempts < max_attempts:
        improved = False
        # 1. stimuli first: dropping events is the cheapest win.
        for candidate in _stimulus_candidates(best, best_result):
            if _case_cost(candidate) >= _case_cost(best):
                continue
            verdict = still_diverges(candidate)
            if verdict is not None:
                best, best_result = candidate, verdict
                report.accepted += 1
                improved = True
                break
        if improved:
            continue
        # 2. machine edits in document order, first improvement wins.
        for edit in _machine_edits(best.machine):
            if report.attempts >= max_attempts:
                break
            clone = clone_machine(best.machine)
            try:
                if not edit(clone):
                    continue
            except (ValidationError, ModelError, ValueError):
                continue
            if not _valid(clone):
                continue
            candidate = best.with_machine(clone)
            if _case_cost(candidate) >= _case_cost(best):
                continue
            verdict = still_diverges(candidate)
            if verdict is not None:
                best, best_result = candidate, verdict
                report.accepted += 1
                improved = True
                break
    report.minimized = best
    report.result = best_result
    return report
