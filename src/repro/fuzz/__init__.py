"""Coverage-guided differential fuzzing of the whole pipeline.

The curated workloads check semantic preservation on a handful of
machines; this package checks it on *generated* ones, Csmith-style, end
to end: a seeded random *machine generator* richer than
:mod:`repro.experiments.workload` (:mod:`.generate`), a random
*stimulus generator* with payloads, an N-way *differential oracle*
(:mod:`.oracle`) comparing the reference interpreter, the model
optimizer's output and every compiled target × level × pattern VM run
through the cached :class:`~repro.engine.ExperimentEngine`, a
delta-debugging *shrinker* (:mod:`.shrink`), and a persistent repro
*corpus* over :class:`~repro.store.ArtifactStore` (:mod:`.corpus`) —
driven by the coverage-guided :class:`~repro.fuzz.runner.FuzzRunner`
and the ``python -m repro.fuzz`` CLI (:mod:`.__main__`).

Main names: :func:`generate_case`, :class:`FuzzCase`,
:class:`OracleConfig`, :class:`DifferentialOracle`, :func:`shrink_case`,
:class:`Corpus`, :class:`FuzzRunner`.
"""

from .case import FuzzCase, Stimulus
from .corpus import Corpus, ReplayOutcome, entry_from_json, entry_to_json
from .generate import (DEFAULT_PROFILES, FuzzProfile, generate_case,
                       random_machine, random_stimulus)
from .observe import (Observation, observe_interpreter_many,
                      observe_vm_many)
from .oracle import (CaseResult, DifferentialOracle, Divergence,
                     MODEL_OPT_EXECUTOR, OracleConfig)
from .runner import CoverageMap, FuzzReport, FuzzRunner, FuzzStats
from .shrink import ShrinkReport, shrink_case

__all__ = [
    "FuzzCase", "Stimulus",
    "Corpus", "ReplayOutcome", "entry_from_json", "entry_to_json",
    "DEFAULT_PROFILES", "FuzzProfile", "generate_case", "random_machine",
    "random_stimulus",
    "Observation", "observe_interpreter_many", "observe_vm_many",
    "CaseResult", "DifferentialOracle", "Divergence",
    "MODEL_OPT_EXECUTOR", "OracleConfig",
    "CoverageMap", "FuzzReport", "FuzzRunner", "FuzzStats",
    "ShrinkReport", "shrink_case",
]
