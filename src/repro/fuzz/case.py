"""Fuzz cases: one machine plus the stimuli driven through it.

A :class:`FuzzCase` is the unit the whole fuzz subsystem passes around:
the generator produces one, the differential oracle executes one, the
shrinker minimizes one, and the corpus persists one.  Cases are
**content-addressed** (the id is a digest of the canonical serialized
form), so a case regenerated from the same seed, a case replayed from
the corpus and a case imported from a JSON file all agree on identity.

A :class:`Stimulus` is an event sequence with integer payloads.  Under
the fixed UML-default semantics the payload is only meaningful as an
event-pool priority (the generated runtimes implement the FIFO pool,
where it is ignored), but the payload travels with the case so the same
corpus replays under priority-pool semantics configurations too.
Stimulus events may name signals **outside the machine's alphabet** —
receiving an event nothing can consume is part of the behavior under
test (the reference semantics discards it; compiled dispatch loops must
charge through their no-match paths).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

from ..uml.serialize import machine_from_dict, machine_to_dict
from ..uml.statemachine import StateMachine
from ..uml.validate import validate_machine

__all__ = ["Stimulus", "FuzzCase"]

#: One dispatched event: (signal name, integer payload).
EventTuple = Tuple[str, int]


@dataclass(frozen=True)
class Stimulus:
    """One event sequence fed to every executor of a case."""

    events: Tuple[EventTuple, ...] = ()

    @staticmethod
    def of(*names: str) -> "Stimulus":
        """Build a payload-less stimulus from event names (tests/docs)."""
        return Stimulus(tuple((name, 0) for name in names))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.events)

    def to_list(self) -> list:
        return [[name, payload] for name, payload in self.events]

    @staticmethod
    def from_list(data: Sequence) -> "Stimulus":
        return Stimulus(tuple((str(n), int(p)) for n, p in data))

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class FuzzCase:
    """One (machine, stimuli) differential-testing case."""

    machine: StateMachine
    stimuli: Tuple[Stimulus, ...]
    seed: int = 0
    profile: str = ""
    features: Tuple[str, ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def case_id(self) -> str:
        """Content digest of the canonical serialized case (stable
        across processes, rebuilds and corpus round-trips).  Computed
        once per instance — cases are immutable by convention (the
        shrinker always edits a fresh clone), and the digest
        re-serializes the whole machine."""
        cached = self.__dict__.get("_case_id")
        if cached is None:
            payload = json.dumps(
                {"machine": machine_to_dict(self.machine),
                 "stimuli": [s.to_list() for s in self.stimuli]},
                sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(
                payload.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_case_id", cached)
        return cached

    def plain_stimuli(self) -> Tuple[Tuple[EventTuple, ...], ...]:
        """The stimuli as plain nested tuples (the engine's cache keys
        and the observation layer take data, not fuzz types)."""
        return tuple(s.events for s in self.stimuli)

    def with_machine(self, machine: StateMachine) -> "FuzzCase":
        return FuzzCase(machine=machine, stimuli=self.stimuli,
                        seed=self.seed, profile=self.profile,
                        features=self.features, meta=dict(self.meta))

    def with_stimuli(self, stimuli: Sequence[Stimulus]) -> "FuzzCase":
        return FuzzCase(machine=self.machine, stimuli=tuple(stimuli),
                        seed=self.seed, profile=self.profile,
                        features=self.features, meta=dict(self.meta))

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "machine": machine_to_dict(self.machine),
            "stimuli": [s.to_list() for s in self.stimuli],
            "seed": self.seed,
            "profile": self.profile,
            "features": list(self.features),
            "meta": dict(self.meta),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FuzzCase":
        machine = machine_from_dict(data["machine"])
        validate_machine(machine)   # normalizes auto-declared operations
        return FuzzCase(
            machine=machine,
            stimuli=tuple(Stimulus.from_list(s) for s in data["stimuli"]),
            seed=int(data.get("seed", 0)),
            profile=str(data.get("profile", "")),
            features=tuple(data.get("features", ())),
            meta=dict(data.get("meta", {})),
        )

    def describe(self) -> str:
        n_states = sum(1 for _ in self.machine.all_states())
        n_trans = sum(1 for _ in self.machine.all_transitions())
        return (f"case {self.case_id} [{self.profile or 'custom'}]: "
                f"{n_states} state(s), {n_trans} transition(s), "
                f"{len(self.stimuli)} stimul{'us' if len(self.stimuli) == 1 else 'i'}")
