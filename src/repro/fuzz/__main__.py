"""Fuzz the pipeline: ``python -m repro.fuzz <command>``.

Commands
--------

``run``
    Generate and judge N cases (``--cases``, ``--seed``), shrink and
    persist whatever diverges.  Exit status: 0 when every executed case
    agreed, 1 when any divergence was found, 2 on usage errors — so CI
    can smoke-run the fuzzer and also assert that ``--inject-bug``
    *does* get caught.
``replay``
    Re-run corpus entries (ids, or ``--file`` JSON exports) under their
    recorded oracle configs and check they still diverge exactly as
    recorded.  Exit 0 when everything reproduces.
``shrink``
    Re-shrink an existing corpus entry (useful after oracle changes).
``corpus``
    List entries, ``--show`` one as JSON, or ``--export`` it to a file.

``--cache-dir`` gives the engine a persistent artifact store, so a
re-run (or a CI job with a restored cache) is served from disk;
``--corpus-dir`` (default ``.repro-fuzz``) is where minimized repros
land.  All randomness derives from ``--seed``: the same invocation
regenerates the same cases, byte for byte.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..codegen import ALL_PATTERNS
from ..compiler.driver import OptLevel
from ..compiler.target import UnknownTargetError, get_target
from ..engine import ExperimentEngine
from .corpus import Corpus, entry_from_json, entry_to_json, replay_entry
from .generate import DEFAULT_PROFILES
from .oracle import DifferentialOracle, OracleConfig
from .runner import FuzzRunner
from .shrink import shrink_case

_DEFAULT_CORPUS = ".repro-fuzz"
_LEVEL_CHOICES = tuple(level.value for level in OptLevel)
_PATTERN_CHOICES = tuple(g.name for g in ALL_PATTERNS)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="engine worker-pool width (default: 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist engine artifacts (repro.store "
                             "directory); warm reruns are served from "
                             "disk")
    parser.add_argument("--corpus-dir", default=_DEFAULT_CORPUS,
                        metavar="DIR",
                        help="repro corpus directory "
                             "(default: %(default)s)")


def _add_oracle(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--patterns", nargs="+", metavar="NAME",
                        choices=_PATTERN_CHOICES, default=None,
                        help="pin the codegen pattern grid (default: "
                             "rotate one pattern per case)")
    parser.add_argument("--targets", nargs="+", metavar="NAME",
                        default=["rt32", "rt16"],
                        help="backend ISAs to execute on "
                             "(default: %(default)s)")
    parser.add_argument("--levels", nargs="+", metavar="LVL",
                        choices=_LEVEL_CHOICES,
                        default=list(_LEVEL_CHOICES),
                        help="optimization levels (default: all)")
    parser.add_argument("--no-model-opt", action="store_true",
                        help="skip the model-optimizer executor")
    parser.add_argument("--inject-bug", action="store_true",
                        help="run the model optimizer with a "
                             "deliberately broken pass (oracle/shrinker "
                             "validation: divergences are expected)")


def _engine(args) -> ExperimentEngine:
    return ExperimentEngine(jobs=max(1, args.jobs),
                            cache_dir=args.cache_dir)


def _oracle_config(args) -> OracleConfig:
    return OracleConfig(
        patterns=tuple(args.patterns) if args.patterns else None,
        targets=tuple(args.targets),
        levels=tuple(args.levels),
        check_optimized=not args.no_model_opt,
        inject_bug=args.inject_bug)


def _check_targets(args) -> Optional[str]:
    for name in args.targets:
        try:
            get_target(name)
        except UnknownTargetError as exc:
            return str(exc)
    return None


def cmd_run(args) -> int:
    error = _check_targets(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.trace_out:
        from ..obs.trace import configure
        configure(sample_ratio=1.0, process="fuzz")
    engine = _engine(args)
    corpus = Corpus(args.corpus_dir)
    config = _oracle_config(args)

    def progress(done: int, total: int, report) -> None:
        if done % args.progress_every == 0 or done == total:
            print(f"[{done}/{total}] {report.stats.summary()}; "
                  f"coverage {len(runner.coverage)}", file=sys.stderr)

    runner = FuzzRunner(engine=engine, config=config,
                        profiles=DEFAULT_PROFILES, corpus=corpus,
                        shrink_limit=args.max_shrink,
                        on_progress=progress)
    try:
        report = runner.run(args.cases, seed=args.seed)
    finally:
        if args.trace_out:
            from ..obs.export import write_chrome_trace
            from ..obs.trace import get_tracer
            count = write_chrome_trace(
                args.trace_out, get_tracer().drain(),
                metadata={"mode": "fuzz", "cases": args.cases})
            print(f"wrote {count} span(s) to {args.trace_out}",
                  file=sys.stderr)
    print(report.summary())
    if args.cache_stats:
        print(engine.describe(), file=sys.stderr)
    return 0 if report.clean else 1


def cmd_replay(args) -> int:
    engine = _engine(args)
    corpus = Corpus(args.corpus_dir)
    oracle = DifferentialOracle(engine=engine)
    entries = []
    for path in args.file or []:
        with open(path, "r", encoding="utf-8") as fh:
            entries.append(entry_from_json(fh.read()))
    for case_id in args.ids:
        entries.append(corpus.get(case_id))
    if not entries:
        entries = [corpus.get(case_id) for case_id in corpus.ids()]
    if not entries:
        print("corpus is empty; nothing to replay", file=sys.stderr)
        return 2
    failures = 0
    for entry in entries:
        outcome = replay_entry(entry, oracle=oracle)
        print(outcome.summary())
        if not outcome.reproduces:
            failures += 1
    return 0 if failures == 0 else 1


def cmd_shrink(args) -> int:
    engine = _engine(args)
    corpus = Corpus(args.corpus_dir)
    entry = corpus.get(args.id)
    from .case import FuzzCase
    from .corpus import semantics_from_dict
    case = FuzzCase.from_dict(entry["case"])
    config = OracleConfig.from_dict(entry["oracle"])
    semantics = semantics_from_dict(entry.get("semantics"))
    oracle = DifferentialOracle(engine=engine, config=config,
                                semantics=semantics)
    result = oracle.run_case(case)
    if not result.diverged:
        print(f"{args.id}: case no longer diverges; nothing to shrink")
        return 1
    report = shrink_case(case, result, oracle)
    print(report.summary())
    # Re-judge the minimized case under the full stored config: replay
    # must observe exactly what we record.
    final = oracle.run_case(report.minimized)
    corpus.add(report.minimized, config,
               expect=final.divergent_executors(),
               note=f"re-shrunk from {args.id}",
               semantics=semantics)
    print(f"stored {report.minimized.case_id}")
    return 0


def cmd_corpus(args) -> int:
    corpus = Corpus(args.corpus_dir)
    if args.show:
        print(entry_to_json(corpus.get(args.show)))
        return 0
    if args.export:
        case_id, path = args.export
        corpus.export_file(case_id, path)
        print(f"exported {case_id} -> {path}")
        return 0
    ids = corpus.ids()
    if not ids:
        print("corpus is empty")
        return 0
    for case_id in ids:
        entry = corpus.get(case_id)
        expect = entry.get("expect", [])
        print(f"{case_id}  expect={','.join(expect) or '(clean)'}  "
              f"{entry.get('note', '')}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided differential fuzzing of the "
                    "model -> passes -> targets -> VM pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="generate and judge N cases")
    p_run.add_argument("--cases", type=int, default=100, metavar="N")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--max-shrink", type=int, default=5, metavar="N",
                       help="shrink at most N divergent cases "
                            "(default: %(default)s)")
    p_run.add_argument("--progress-every", type=int, default=50,
                       metavar="N",
                       help="progress line to stderr every N cases")
    p_run.add_argument("--trace-out", default=None,
                       metavar="TRACE.json",
                       help="sample every compile and write the run's "
                            "spans as Chrome trace JSON")
    p_run.add_argument("--cache-stats", action="store_true",
                       help="print engine cache statistics to stderr")
    _add_common(p_run)
    _add_oracle(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_replay = sub.add_parser("replay",
                              help="re-run corpus entries / JSON files")
    p_replay.add_argument("ids", nargs="*", metavar="CASE_ID")
    p_replay.add_argument("--file", action="append", metavar="PATH",
                          help="replay an exported JSON entry")
    _add_common(p_replay)
    p_replay.set_defaults(fn=cmd_replay)

    p_shrink = sub.add_parser("shrink",
                              help="re-shrink a corpus entry")
    p_shrink.add_argument("id", metavar="CASE_ID")
    _add_common(p_shrink)
    p_shrink.set_defaults(fn=cmd_shrink)

    p_corpus = sub.add_parser("corpus", help="inspect the corpus")
    p_corpus.add_argument("--show", metavar="CASE_ID")
    p_corpus.add_argument("--export", nargs=2,
                          metavar=("CASE_ID", "PATH"))
    _add_common(p_corpus)
    p_corpus.set_defaults(fn=cmd_corpus)

    args = parser.parse_args(argv)
    if getattr(args, "cases", 1) < 0 or getattr(args, "jobs", 1) < 1 \
            or getattr(args, "progress_every", 1) < 1:
        print("error: --cases must be >= 0, --jobs and "
              "--progress-every >= 1", file=sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
