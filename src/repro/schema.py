"""The repro serialization schema stamp.

Persistent artifacts (the on-disk store of :mod:`repro.store`, and any
cache key that may outlive a process) embed a *schema stamp* naming the
generation of repro's serialized forms.  Two independent version axes
feed it:

* :data:`SCHEMA_VERSION` — the generation of the *result* objects the
  engine caches (``CompileResult``, ``OptimizationReport``,
  ``EquivalenceReport``, VM conformance reports).  Bump it whenever a
  change to those classes — or to anything reachable from them — would
  make an old pickled artifact deserialize into something subtly wrong;
* :data:`repro.uml.serialize.FORMAT_VERSION` — the machine JSON format,
  which keys fingerprints through ``machine_to_dict``.

Because :func:`schema_stamp` is folded into every
:mod:`repro.engine.fingerprint` digest, bumping either version changes
every cache key: entries written by older code become *misses* instead
of being deserialized wrongly.  The stamp is additionally stored inside
every on-disk entry header, so even a stale store laid out by an older
scheme self-invalidates entry by entry.
"""

from __future__ import annotations

from .uml.serialize import FORMAT_VERSION

__all__ = ["SCHEMA_VERSION", "schema_stamp"]

#: Generation counter of the engine's cached result schemas.  Bump on
#: any change that alters what a cached artifact deserializes to.
#: Generation 2: fuzz Observations (pool_depth field) + expression-call
#: tracing in interpreter traces.
SCHEMA_VERSION = 2


def schema_stamp() -> str:
    """Canonical stamp naming the current serialization generation."""
    return f"repro.schema/{SCHEMA_VERSION}+uml.format/{FORMAT_VERSION}"
