"""Behaviour-preservation checking for model optimizations.

The paper positions model optimization as *refactoring*: a transformation
"that guarantees the transition from non optimized model to an optimized
one by keeping unchanged its behavior" (§V).  This module checks that
property empirically: it executes the original and the optimized machine
side by side on event scenarios (exhaustive short sequences over the
alphabet plus pseudo-random long ones) and compares the *observable*
traces — external calls, attribute assignments and emitted events.
State entries/exits are internal and may legitimately differ (that is the
point of removing dead states).

This is a bounded check, not a proof; with exhaustive depth-k scenarios
it is exact for machines whose guards only depend on event history, which
covers every model in the paper and the generated workloads.

Two behaviour-preservation questions live here:

* **model vs. model** (:func:`check_equivalence`) — did a model
  optimization change observable behavior?
* **model vs. compiled code** (:func:`check_codegen_conformance`) — does
  the generated code, compiled to a target and *executed on the ISA
  simulator*, behave like the reference interpreter?  This delegates to
  :mod:`repro.vm.conformance` and extends the refactoring guarantee down
  through the whole toolchain.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..semantics.runtime import ExecutionError
from ..semantics.trace import observable_equal
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine

__all__ = ["EquivalenceReport", "check_equivalence", "make_scenarios",
           "check_codegen_conformance"]


@dataclass
class EquivalenceReport:
    """Result of comparing two machines over a scenario set."""

    scenarios_run: int = 0
    mismatches: List[Tuple[Tuple[str, ...], str]] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.equivalent:
            return (f"observationally equivalent on {self.scenarios_run} "
                    "scenario(s)")
        first = self.mismatches[0]
        return (f"{len(self.mismatches)} mismatching scenario(s) out of "
                f"{self.scenarios_run}; first: events={list(first[0])} "
                f"({first[1]})")


def make_scenarios(machine: StateMachine, exhaustive_depth: int = 3,
                   n_random: int = 25, random_length: int = 12,
                   seed: int = 0xC0DE) -> List[Tuple[str, ...]]:
    """Build the scenario set: all event sequences up to
    ``exhaustive_depth`` plus ``n_random`` longer random sequences."""
    alphabet = sorted({e.name for e in machine.events.values()})
    scenarios: List[Tuple[str, ...]] = [()]
    for depth in range(1, exhaustive_depth + 1):
        # Cap the exhaustive enumeration so huge alphabets stay tractable.
        if alphabet and len(alphabet) ** depth > 4096:
            break
        scenarios.extend(itertools.product(alphabet, repeat=depth))
    rng = random.Random(seed)
    for _ in range(n_random if alphabet else 0):
        scenarios.append(tuple(rng.choice(alphabet)
                               for _ in range(random_length)))
    return scenarios


def check_equivalence(original: StateMachine, optimized: StateMachine,
                      scenarios: Optional[Sequence[Tuple[str, ...]]] = None,
                      semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                      exhaustive_depth: int = 3, n_random: int = 25,
                      random_length: int = 12,
                      seed: int = 0xC0DE) -> EquivalenceReport:
    """Compare the two machines' observable behavior over scenarios built
    from the **original** machine's alphabet (the optimized machine may
    have dropped unused events — it must still *react* identically, i.e.
    ignore them)."""
    if scenarios is None:
        scenarios = make_scenarios(original, exhaustive_depth=exhaustive_depth,
                                   n_random=n_random,
                                   random_length=random_length, seed=seed)
    from ..exec.adapters import InterpreterExecutor
    from ..exec.protocol import run_scenario
    interp = InterpreterExecutor(semantics)
    report = EquivalenceReport()
    for events in scenarios:
        report.scenarios_run += 1
        try:
            a = run_scenario(interp, original, events).inner
        except ExecutionError as exc:
            report.mismatches.append((tuple(events),
                                      f"original raised: {exc}"))
            continue
        try:
            b = run_scenario(interp, optimized, events).inner
        except ExecutionError as exc:
            report.mismatches.append((tuple(events),
                                      f"optimized raised: {exc}"))
            continue
        if not observable_equal(a.trace, b.trace):
            report.mismatches.append((tuple(events), "trace mismatch"))
        elif a.in_final != b.in_final or a.is_terminated != b.is_terminated:
            report.mismatches.append((tuple(events),
                                      "termination status mismatch"))
    return report


def check_codegen_conformance(machine: StateMachine,
                              pattern: str = "nested-switch",
                              level=None, target=None,
                              semantics: SemanticsConfig =
                              UML_DEFAULT_SEMANTICS,
                              scenarios: Optional[Sequence[Tuple[str, ...]]]
                              = None):
    """Check that *machine*'s generated+compiled code, executed on the
    ISA simulator, is observationally equivalent to the interpreter.

    Thin entry point over :func:`repro.vm.check_vm_conformance` (the
    import is deferred so the optimizer does not pull in the compiler
    stack unless conformance is actually requested).  *level* defaults
    to ``-Os``, the paper's measurement level.  Returns a
    :class:`repro.vm.ConformanceReport`.
    """
    from ..compiler.driver import OptLevel
    from ..vm.conformance import check_vm_conformance
    return check_vm_conformance(
        machine, pattern=pattern,
        level=OptLevel.OS if level is None else level,
        target=target, semantics=semantics, scenarios=scenarios)
