"""Model-level optimization framework (the paper's contribution).

Behaviour-preserving transformations applied *before* code generation.
Main public names: :func:`optimize` / :class:`PassManager` /
:data:`DEFAULT_PIPELINE` (-> :class:`OptimizationReport` with the
optimized clone), the pass classes (:class:`RemoveUnreachableStates`,
:class:`RemoveShadowedTransitions`, :class:`RemoveDeadComposites`, …),
:func:`suggest_optimizations` / :func:`auto_optimize` (the advisor),
and the preservation checks: :func:`check_equivalence` (model vs.
model, on the interpreter) and :func:`check_codegen_conformance`
(model vs. generated code *executed* on the :mod:`repro.vm`
simulator).
"""

from .advisor import Suggestion, auto_optimize, suggest_optimizations
from .equivalence import (EquivalenceReport, check_codegen_conformance,
                          check_equivalence, make_scenarios)
from .manager import (DEFAULT_PIPELINE, OptimizationReport, PassManager,
                      default_pass_catalog, optimize)
from .pass_base import ModelPass, PassResult
from .passes import (FlattenTrivialComposites, MergeFinalStates,
                     RemoveDeadComposites, RemoveShadowedTransitions,
                     RemoveUnreachableStates, RemoveUnusedEvents,
                     SimplifyGuards)

__all__ = [
    "Suggestion", "auto_optimize", "suggest_optimizations",
    "EquivalenceReport", "check_codegen_conformance", "check_equivalence",
    "make_scenarios",
    "DEFAULT_PIPELINE", "OptimizationReport", "PassManager",
    "default_pass_catalog", "optimize",
    "ModelPass", "PassResult",
    "FlattenTrivialComposites", "MergeFinalStates", "RemoveDeadComposites",
    "RemoveShadowedTransitions", "RemoveUnreachableStates",
    "RemoveUnusedEvents", "SimplifyGuards",
]
