"""Model-level optimization framework (the paper's contribution)."""

from .advisor import Suggestion, auto_optimize, suggest_optimizations
from .equivalence import EquivalenceReport, check_equivalence, make_scenarios
from .manager import (DEFAULT_PIPELINE, OptimizationReport, PassManager,
                      default_pass_catalog, optimize)
from .pass_base import ModelPass, PassResult
from .passes import (FlattenTrivialComposites, MergeFinalStates,
                     RemoveDeadComposites, RemoveShadowedTransitions,
                     RemoveUnreachableStates, RemoveUnusedEvents,
                     SimplifyGuards)

__all__ = [
    "Suggestion", "auto_optimize", "suggest_optimizations",
    "EquivalenceReport", "check_equivalence", "make_scenarios",
    "DEFAULT_PIPELINE", "OptimizationReport", "PassManager",
    "default_pass_catalog", "optimize",
    "ModelPass", "PassResult",
    "FlattenTrivialComposites", "MergeFinalStates", "RemoveDeadComposites",
    "RemoveShadowedTransitions", "RemoveUnreachableStates",
    "RemoveUnusedEvents", "SimplifyGuards",
]
