"""Model-optimization pass framework.

The paper's tool (§III.C) "gives the user the ability to choose the
optimization that he would perform" and "generates the optimized model
after running the selected optimization".  This module defines the pass
interface; :mod:`repro.optim.manager` provides selection, ordering and
fixpoint iteration; the passes themselves live in
:mod:`repro.optim.passes`.

A pass mutates the machine it is given **in place** and reports what it
changed.  The manager is responsible for cloning the input model first so
the user's original model is never touched (model optimization is a
refactoring: it produces a new, behaviorally-equivalent model).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Tuple

from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import Region, State, StateMachine, Vertex
from ..uml.transitions import Transition

__all__ = ["PassResult", "ModelPass", "remove_vertex_with_transitions"]


@dataclass
class PassResult:
    """What one pass application changed."""

    pass_name: str
    changed: bool = False
    removed_states: List[str] = field(default_factory=list)
    removed_transitions: List[str] = field(default_factory=list)
    removed_events: List[str] = field(default_factory=list)
    simplified_guards: int = 0
    notes: List[str] = field(default_factory=list)

    def record_state(self, name: str) -> None:
        self.removed_states.append(name)
        self.changed = True

    def record_transition(self, description: str) -> None:
        self.removed_transitions.append(description)
        self.changed = True

    def record_event(self, name: str) -> None:
        self.removed_events.append(name)
        self.changed = True

    def note(self, message: str) -> None:
        self.notes.append(message)

    def merge(self, other: "PassResult") -> None:
        self.changed = self.changed or other.changed
        self.removed_states.extend(other.removed_states)
        self.removed_transitions.extend(other.removed_transitions)
        self.removed_events.extend(other.removed_events)
        self.simplified_guards += other.simplified_guards
        self.notes.extend(other.notes)

    def summary(self) -> str:
        bits = []
        if self.removed_states:
            bits.append(f"{len(self.removed_states)} state(s)")
        if self.removed_transitions:
            bits.append(f"{len(self.removed_transitions)} transition(s)")
        if self.removed_events:
            bits.append(f"{len(self.removed_events)} event(s)")
        if self.simplified_guards:
            bits.append(f"{self.simplified_guards} guard(s) simplified")
        what = ", ".join(bits) if bits else "no changes"
        return f"{self.pass_name}: {what}"


class ModelPass(abc.ABC):
    """One behaviour-preserving model transformation.

    Subclasses set:

    * ``name`` — stable identifier used for user selection;
    * ``description`` — one-line explanation shown in catalogs;
    * ``requires_completion_priority`` — True when the transformation is
      only sound under the UML rule that completion events outrank pooled
      events (the paper's fixed semantics).  The manager refuses to apply
      such passes under a semantics configuration that drops the rule.
    """

    name: str = "abstract"
    description: str = ""
    requires_completion_priority: bool = False

    @abc.abstractmethod
    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        """Apply the transformation to *machine* (mutating it)."""

    def applicable(self, semantics: SemanticsConfig) -> bool:
        """True when the pass is sound under *semantics*."""
        if self.requires_completion_priority:
            return semantics.completion_priority
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModelPass {self.name}>"


def remove_vertex_with_transitions(vertex: Vertex,
                                   result: PassResult) -> None:
    """Remove *vertex* and every transition incident to it or to anything
    nested inside it (composite states take their whole submachine along,
    which is what produces the paper's 45-52 % hierarchical gains)."""
    machine = vertex.machine
    if machine is None:
        raise ValueError(f"vertex {vertex.label!r} is not part of a machine")
    doomed_vertices = {vertex.element_id}
    if isinstance(vertex, State):
        for region in vertex.regions:
            for nested in region.all_vertices():
                doomed_vertices.add(nested.element_id)
    for region in list(machine.all_regions()):
        for tr in list(region.transitions):
            if tr.source.element_id in doomed_vertices or \
                    tr.target.element_id in doomed_vertices:
                region.remove_transition(tr)
                result.record_transition(tr.describe())
    container = vertex.container
    if container is None:
        raise ValueError(f"vertex {vertex.label!r} has no containing region")
    if isinstance(vertex, State):
        for nested_region in vertex.regions:
            for nested in nested_region.all_vertices():
                if isinstance(nested, State):
                    result.record_state(nested.qualified_name)
    container.remove_vertex(vertex)
    if isinstance(vertex, State):
        result.record_state(vertex.qualified_name)
    else:
        result.changed = True
        result.note(f"removed vertex {vertex.label}")
