"""Pass: remove never-active composite states.

A focused variant of unreachable-state elimination that the paper calls
out separately because its payoff is disproportionate: *"each composite
state has a reference to a C++ class that implements the submachine.
When we optimize the model, the whole class is removed"* (§III.C).

The pass combines the shadowing and reachability analyses but deletes
**only composite states**, leaving flat dead states alone.  It exists for
ablation studies (how much of the gain comes from composites vs. flat
states); the full pipeline subsumes it.
"""

from __future__ import annotations

from ...analysis.reachability import analyze_reachability
from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.statemachine import StateMachine
from ..pass_base import ModelPass, PassResult, remove_vertex_with_transitions

__all__ = ["RemoveDeadComposites"]


class RemoveDeadComposites(ModelPass):
    """Delete composite states that can never become active (their whole
    submachine class disappears from the generated code)."""

    name = "remove-dead-composites"
    description = ("delete never-active composite states together with "
                   "their submachines (paper: the whole submachine class "
                   "is removed)")
    requires_completion_priority = True

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        while True:
            info = analyze_reachability(machine,
                                        respect_completion_shadowing=True)
            doomed = [s for s in machine.all_states()
                      if s.is_composite and not info.is_reachable(s)
                      and not any(not info.is_reachable(a)
                                  for a in s.ancestors())]
            if not doomed:
                break
            for state in doomed:
                remove_vertex_with_transitions(state, result)
        return result
