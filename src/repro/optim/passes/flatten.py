"""Pass: flatten trivial composite states.

A composite whose region holds exactly one simple substate (entered via
the region's initial transition, with no other vertices and no internal
transitions beyond that initial arc) adds a full submachine class to the
generated code while contributing nothing behaviourally beyond
concatenated entry/exit actions.  The pass inlines the substate:

* the composite's entry behavior is extended with the initial transition's
  effect and the substate's entry behavior (preserving execution order
  *outer entry, initial effect, inner entry*);
* the substate's exit behavior is prepended to the composite's exit;
* transitions from the substate are re-sourced to the composite;
* the nested region disappears, turning the composite into a simple state.

Conditions are deliberately conservative — any history pseudostate, final
state, sibling vertex or completion subtlety disables the rewrite — so the
transformation is observationally sound under every semantics
configuration.
"""

from __future__ import annotations

from typing import Optional

from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.actions import Behavior
from ...uml.statemachine import (Pseudostate, Region, State, StateMachine)
from ..pass_base import ModelPass, PassResult

__all__ = ["FlattenTrivialComposites"]


def _concat(*behaviors: Behavior) -> Behavior:
    statements = tuple(s for b in behaviors for s in b.statements)
    name = next((b.name for b in behaviors if b.name), "")
    return Behavior(name=name, statements=statements)


def _trivial_substate(composite: State) -> Optional[State]:
    """Return the single inlinable substate, or None if not flattenable."""
    if len(composite.regions) != 1:
        return None
    region = composite.regions[0]
    initial = region.initial
    if initial is None:
        return None
    states = region.states()
    if len(states) != 1 or states[0].is_composite:
        return None
    substate = states[0]
    # No finals, no extra pseudostates, no history.
    non_initial = [v for v in region.vertices
                   if v is not initial and v is not substate]
    if non_initial:
        return None
    # The only internal transition is the initial arc to the substate.
    internal = list(region.transitions)
    if len(internal) != 1 or internal[0].source is not initial or \
            internal[0].target is not substate:
        return None
    # External transitions may leave the substate, but none may target it
    # directly (a direct entry would bypass the composite's default entry
    # and is not expressible after flattening).
    for tr in substate.incoming():
        if tr is not internal[0]:
            return None
    # The substate must not defer completion: if the composite has
    # completion transitions their trigger condition changes (region never
    # completes -> after flattening the simple state completes on entry).
    if composite.completion_transitions():
        return None
    if substate.do_activity:
        return None
    return substate


class FlattenTrivialComposites(ModelPass):
    """Inline single-substate composites into simple states."""

    name = "flatten-trivial-composites"
    description = ("inline composites whose region holds a single simple "
                   "substate - the submachine class disappears")

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        changed = True
        while changed:
            changed = False
            for composite in list(machine.all_states()):
                if not composite.is_composite:
                    continue
                substate = _trivial_substate(composite)
                if substate is None:
                    continue
                self._flatten(machine, composite, substate, result)
                changed = True
        return result

    @staticmethod
    def _flatten(machine: StateMachine, composite: State, substate: State,
                 result: PassResult) -> None:
        region = composite.regions[0]
        initial_arc = region.transitions[0]
        # Entry order: outer entry already first; append initial effect and
        # inner entry.  Exit order: inner exit first, then outer exit.
        composite.entry = _concat(composite.entry, initial_arc.effect,
                                  substate.entry)
        composite.exit = _concat(substate.exit, composite.exit)
        # Re-source transitions leaving the substate onto the composite.
        for tr in list(substate.outgoing()):
            if tr is initial_arc:
                continue
            tr.source = composite
        # Drop the nested region; transitions it still owns (cross-boundary
        # arcs created inside the sub-builder) move to the parent region so
        # they stay part of the machine.
        region.remove_transition(initial_arc)
        parent_region = composite.container
        assert parent_region is not None
        for tr in list(region.transitions):
            region.remove_transition(tr)
            parent_region.add_transition(tr)
        for vertex in region.vertices:
            vertex.owner = None
        region.vertices.clear()
        composite.regions.clear()
        region.owner = None
        result.changed = True
        result.record_state(substate.qualified_name or substate.label)
        result.note(f"flattened composite {composite.name}: inlined "
                    f"substate {substate.name}")
