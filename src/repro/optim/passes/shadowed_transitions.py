"""Pass: remove transitions shadowed by completion transitions.

Paper Figure 1, second row: state ``S2`` has an event-triggered transition
to composite ``S3`` *and* an unguarded completion transition to the final
state.  UML dispatches the completion event before any pooled event, so
the ``e2`` transition can never fire; removing it (and then the now
unreachable ``S3``) is what yields the paper's 45-52 % code-size gains.

This pass removes only the shadowed transitions; run
``remove-unreachable-states`` afterwards (the default pipeline does) to
collect the states they were keeping alive.
"""

from __future__ import annotations

from ...analysis.completion import analyze_completion
from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.statemachine import StateMachine
from ..pass_base import ModelPass, PassResult

__all__ = ["RemoveShadowedTransitions"]


class RemoveShadowedTransitions(ModelPass):
    """Delete event transitions that lose to an unguarded completion
    transition on the same source state."""

    name = "remove-shadowed-transitions"
    description = ("delete event-triggered transitions that an unguarded "
                   "completion transition always preempts (paper Fig. 1, "
                   "hierarchical example)")
    requires_completion_priority = True

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        info = analyze_completion(machine)
        doomed = set(info.shadowed_transitions)
        if not doomed:
            return result
        for region in machine.all_regions():
            for tr in list(region.transitions):
                if tr in doomed:
                    region.remove_transition(tr)
                    result.record_transition(tr.describe())
        for state_name in sorted(info.always_completing):
            result.note(f"state {state_name} always exits via its "
                        "completion transition")
        return result
