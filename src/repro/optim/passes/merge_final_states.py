"""Pass: merge duplicate final states within a region.

Hand-drawn diagrams (and generated workloads) often contain several final
states in one region for layout reasons.  They are semantically identical
— entering any of them completes the region — so all incoming transitions
can be retargeted to a single final state and the duplicates dropped.
Each removed vertex removes one dispatch entry from the generated code.
"""

from __future__ import annotations

from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.statemachine import StateMachine
from ..pass_base import ModelPass, PassResult

__all__ = ["MergeFinalStates"]


class MergeFinalStates(ModelPass):
    """Keep one final state per region; retarget and drop the rest."""

    name = "merge-final-states"
    description = ("merge duplicate final states of a region into one "
                   "(they are observationally identical)")

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        for region in machine.all_regions():
            finals = region.final_states()
            if len(finals) <= 1:
                continue
            keeper, duplicates = finals[0], finals[1:]
            for dup in duplicates:
                for tr in dup.incoming():
                    tr.target = keeper
                region.remove_vertex(dup)
                result.changed = True
                result.note(f"merged final state {dup.label} into "
                            f"{keeper.label} in region {region.label}")
        return result
