"""Built-in model optimization passes."""

from .dead_composites import RemoveDeadComposites
from .flatten import FlattenTrivialComposites
from .guard_simplify import SimplifyGuards
from .merge_final_states import MergeFinalStates
from .remove_unused_events import RemoveUnusedEvents
from .shadowed_transitions import RemoveShadowedTransitions
from .unreachable_states import RemoveUnreachableStates

__all__ = [
    "RemoveDeadComposites",
    "FlattenTrivialComposites",
    "SimplifyGuards",
    "MergeFinalStates",
    "RemoveUnusedEvents",
    "RemoveShadowedTransitions",
    "RemoveUnreachableStates",
]
