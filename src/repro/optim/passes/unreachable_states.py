"""Pass: remove unreachable states.

The paper's headline example (Figure 1, top row): state ``S2`` has no
incoming transition, GCC's dead-code elimination keeps its generated code,
the model level removes it trivially.  The pass deletes every state the
reachability analysis proves dead, together with incident transitions and
— for composites — the entire nested submachine.

Orphaned pseudostates and final states (left without any incident
transition inside an otherwise live region) are swept as well, since code
generators emit dispatch entries for them.
"""

from __future__ import annotations

from ...analysis.reachability import analyze_reachability
from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.statemachine import (FinalState, Pseudostate, State, StateMachine)
from ..pass_base import ModelPass, PassResult, remove_vertex_with_transitions

__all__ = ["RemoveUnreachableStates"]


class RemoveUnreachableStates(ModelPass):
    """Delete states not reachable from the initial configuration."""

    name = "remove-unreachable-states"
    description = ("delete states with no path from the initial state "
                   "(paper Fig. 1: state S2 with no incoming transition)")

    def __init__(self, respect_completion_shadowing: bool = True) -> None:
        # When shadowing is respected the analysis is only sound under the
        # UML completion-priority rule, so soundness becomes conditional.
        self.respect_completion_shadowing = respect_completion_shadowing

    @property
    def requires_completion_priority(self) -> bool:  # type: ignore[override]
        return self.respect_completion_shadowing

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        shadow = (self.respect_completion_shadowing
                  and semantics.completion_priority)
        # Iterate: removing a state can orphan others (chains of dead
        # states); recompute reachability until stable.
        while True:
            info = analyze_reachability(
                machine, respect_completion_shadowing=shadow)
            doomed = [s for s in machine.all_states()
                      if not info.is_reachable(s)
                      # skip states nested inside a doomed composite: the
                      # composite removal takes them along
                      and not any(not info.is_reachable(a)
                                  for a in s.ancestors())]
            if not doomed:
                break
            for state in doomed:
                remove_vertex_with_transitions(state, result)
        self._sweep_orphans(machine, result)
        return result

    @staticmethod
    def _sweep_orphans(machine: StateMachine, result: PassResult) -> None:
        """Remove final states / non-initial pseudostates left with no
        incident transitions."""
        for region in list(machine.all_regions()):
            for vertex in list(region.vertices):
                if isinstance(vertex, FinalState) or (
                        isinstance(vertex, Pseudostate)
                        and not vertex.is_initial):
                    if not vertex.incoming() and not vertex.outgoing():
                        region.remove_vertex(vertex)
                        result.changed = True
                        result.note(f"swept orphan vertex {vertex.label}")
