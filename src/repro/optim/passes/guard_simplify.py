"""Pass: simplify guards and prune statically-false transitions.

Model-level constant folding over guard expressions:

* a guard that folds to ``true`` is dropped (the transition becomes
  unguarded — which can *strengthen* completion shadowing and unlock the
  hierarchical optimizations);
* a transition whose guard folds to ``false`` can never fire and is
  removed;
* any other guard is replaced by its folded form (smaller generated
  condition code).

This mirrors what GCC's CCP does at SSA level, but, done on the model, its
effects compound with the structural passes — the compiler never gets the
chance because the guard feeds a runtime event dispatch it cannot see
through (paper §III.D).
"""

from __future__ import annotations

from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.actions import BoolLit, const_fold
from ...uml.statemachine import StateMachine
from ..pass_base import ModelPass, PassResult

__all__ = ["SimplifyGuards"]


class SimplifyGuards(ModelPass):
    """Constant-fold guards; drop true guards; prune false transitions."""

    name = "simplify-guards"
    description = ("constant-fold guard expressions, drop tautological "
                   "guards and delete transitions that can never fire")

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        for region in machine.all_regions():
            for tr in list(region.transitions):
                if tr.guard is None:
                    continue
                folded = const_fold(tr.guard)
                if isinstance(folded, BoolLit):
                    if folded.value:
                        tr.guard = None
                        result.simplified_guards += 1
                        result.changed = True
                    else:
                        region.remove_transition(tr)
                        result.record_transition(tr.describe())
                elif folded != tr.guard:
                    tr.guard = folded
                    result.simplified_guards += 1
                    result.changed = True
        return result
