"""Pass: drop events that no live transition is triggered by.

Code generators emit one event enumerator (and, for the state-table
pattern, one table column / dispatch row family) per declared event.
After dead transitions are removed, events that trigger nothing remain in
the machine's alphabet and keep generating dispatch plumbing; this pass
prunes them.
"""

from __future__ import annotations

from ...semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ...uml.actions import EmitStmt
from ...uml.statemachine import StateMachine
from ..pass_base import ModelPass, PassResult

__all__ = ["RemoveUnusedEvents"]


class RemoveUnusedEvents(ModelPass):
    """Remove alphabet events that trigger no transition and are never
    emitted by a behavior."""

    name = "remove-unused-events"
    description = ("drop declared events no transition is triggered by "
                   "(shrinks event enums and dispatch tables)")

    def run(self, machine: StateMachine,
            semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> PassResult:
        result = PassResult(self.name)
        used = set()
        for tr in machine.all_transitions():
            for trig in tr.triggers:
                used.add(trig.key())
        emitted = set()
        behaviors = []
        for state in machine.all_states():
            behaviors.extend([state.entry, state.exit, state.do_activity])
        for tr in machine.all_transitions():
            behaviors.append(tr.effect)
        for behavior in behaviors:
            for stmt in behavior.statements:
                if isinstance(stmt, EmitStmt):
                    emitted.add(stmt.event_name)
        for key, event in list(machine.events.items()):
            if key not in used and event.name not in emitted:
                del machine.events[key]
                result.record_event(event.name)
        return result
