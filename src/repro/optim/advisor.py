"""Automatic optimization selection (the paper's §VI perspective).

"In the current version of our optimization tool, the users choose
manually the optimizations to perform.  We plan to improve our tool in a
way that it automatically executes optimizations that correspond to the
UML model."

The advisor inspects a machine with the :mod:`repro.analysis` passes and
returns exactly the optimizations that will change it, each with the
reason it applies — so a user (or CI bot) can run a minimal, explained
pipeline instead of the full fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.completion import analyze_completion
from ..analysis.reachability import analyze_reachability
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.actions import BoolLit, const_fold
from ..uml.statemachine import StateMachine
from .manager import OptimizationReport, optimize
from .passes.flatten import _trivial_substate

__all__ = ["Suggestion", "suggest_optimizations", "auto_optimize"]


@dataclass(frozen=True)
class Suggestion:
    """One recommended pass with its model-specific justification."""

    pass_name: str
    reason: str

    def __str__(self) -> str:
        return f"{self.pass_name}: {self.reason}"


def suggest_optimizations(machine: StateMachine,
                          semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                          ) -> List[Suggestion]:
    """Return the passes that will actually change *machine*, in the
    order the default pipeline would run them.

    **Ordering contract:** the suggested pass names are always a
    subsequence of :data:`repro.optim.manager.DEFAULT_PIPELINE`, each
    name at most once.  The autotuner (:mod:`repro.tune`) depends on
    this: it uses the suggestion list as the *static prior* that
    prunes its pass-subset lattice, and enumerating subsets of an
    already-pipeline-ordered list is what makes every subset a valid
    ``optimize(selection=...)`` as-is.  A contract test pins this.
    """
    suggestions: List[Suggestion] = []

    foldable = 0
    false_guards = 0
    for tr in machine.all_transitions():
        if tr.guard is None:
            continue
        folded = const_fold(tr.guard)
        if folded != tr.guard:
            foldable += 1
        if isinstance(folded, BoolLit) and folded.value is False:
            false_guards += 1
    if foldable:
        suggestions.append(Suggestion(
            "simplify-guards",
            f"{foldable} guard(s) fold to simpler forms"
            + (f", {false_guards} to false" if false_guards else "")))

    if semantics.completion_priority:
        info = analyze_completion(machine)
        if info.shadowed_transitions:
            states = ", ".join(sorted(info.always_completing))
            suggestions.append(Suggestion(
                "remove-shadowed-transitions",
                f"{len(info.shadowed_transitions)} event transition(s) "
                f"preempted by completion transitions of: {states}"))

    reach = analyze_reachability(
        machine,
        respect_completion_shadowing=semantics.completion_priority)
    if reach.unreachable_states:
        suggestions.append(Suggestion(
            "remove-unreachable-states",
            f"unreachable state(s): "
            f"{', '.join(reach.unreachable_states)}"))

    for region in machine.all_regions():
        if len(region.final_states()) > 1:
            suggestions.append(Suggestion(
                "merge-final-states",
                f"region {region.label!r} has "
                f"{len(region.final_states())} final states"))
            break

    for state in machine.all_states():
        if state.is_composite and _trivial_substate(state) is not None:
            suggestions.append(Suggestion(
                "flatten-trivial-composites",
                f"composite {state.name!r} wraps a single simple state"))
            break

    used = {trig.key() for tr in machine.all_transitions()
            for trig in tr.triggers}
    orphans = [e.name for k, e in machine.events.items() if k not in used]
    # Events may still be needed by transitions the structural passes
    # remove - suggest the cleanup pass whenever the pipeline contains a
    # structural pass or an orphan already exists.
    structural = {"remove-shadowed-transitions", "remove-unreachable-states"}
    if orphans or any(s.pass_name in structural for s in suggestions):
        reason = (f"declared-but-unused event(s): {', '.join(orphans)}"
                  if orphans else
                  "structural passes will orphan trigger events")
        suggestions.append(Suggestion("remove-unused-events", reason))
    return suggestions


def auto_optimize(machine: StateMachine,
                  semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                  ) -> OptimizationReport:
    """§VI realized: analyze, select, run — no manual pass choice.

    (An empty suggestion list simply yields an empty selection — the
    no-change optimize run — so there is no special case.)
    """
    suggestions = suggest_optimizations(machine, semantics)
    return optimize(machine,
                    selection=[s.pass_name for s in suggestions],
                    semantics=semantics)
