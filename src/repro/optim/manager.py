"""Pass manager: selection, ordering, fixpoint, reporting.

Mirrors the workflow of the paper's Java tool: the user picks the
optimizations to perform, the tool runs them and *generates the optimized
model* (the input is never mutated).  ``optimize()`` is the high-level
entry point; ``PassManager`` gives full control.

The default pipeline runs, to fixpoint:

1. ``simplify-guards``        — may expose unguarded completion transitions
2. ``remove-shadowed-transitions`` — the hierarchical killer (UML priority)
3. ``remove-unreachable-states``   — Fig. 1 flat example + collected corpses
4. ``merge-final-states``
5. ``flatten-trivial-composites``
6. ``remove-unused-events``

Passes whose soundness depends on the UML completion-priority rule are
skipped automatically (with a note) when the chosen
:class:`~repro.semantics.variation.SemanticsConfig` disables that rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml import clone_machine
from ..uml.statemachine import StateMachine
from .pass_base import ModelPass, PassResult
from .passes.dead_composites import RemoveDeadComposites
from .passes.flatten import FlattenTrivialComposites
from .passes.guard_simplify import SimplifyGuards
from .passes.merge_final_states import MergeFinalStates
from .passes.remove_unused_events import RemoveUnusedEvents
from .passes.shadowed_transitions import RemoveShadowedTransitions
from .passes.unreachable_states import RemoveUnreachableStates

__all__ = ["OptimizationReport", "PassManager", "optimize",
           "default_pass_catalog", "DEFAULT_PIPELINE"]

#: Names of the default pipeline, in application order.
DEFAULT_PIPELINE: Sequence[str] = (
    "simplify-guards",
    "remove-shadowed-transitions",
    "remove-unreachable-states",
    "merge-final-states",
    "flatten-trivial-composites",
    "remove-unused-events",
)


def default_pass_catalog() -> Dict[str, ModelPass]:
    """Fresh instances of every built-in pass, keyed by name."""
    passes: List[ModelPass] = [
        SimplifyGuards(),
        RemoveShadowedTransitions(),
        RemoveUnreachableStates(),
        RemoveDeadComposites(),
        MergeFinalStates(),
        FlattenTrivialComposites(),
        RemoveUnusedEvents(),
    ]
    return {p.name: p for p in passes}


@dataclass
class OptimizationReport:
    """The outcome of one optimization run."""

    machine_name: str
    optimized: StateMachine
    pass_results: List[PassResult] = field(default_factory=list)
    skipped_passes: List[str] = field(default_factory=list)
    iterations: int = 0

    @property
    def changed(self) -> bool:
        return any(r.changed for r in self.pass_results)

    @property
    def removed_states(self) -> List[str]:
        return [s for r in self.pass_results for s in r.removed_states]

    @property
    def removed_transitions(self) -> List[str]:
        return [t for r in self.pass_results for t in r.removed_transitions]

    @property
    def removed_events(self) -> List[str]:
        return [e for r in self.pass_results for e in r.removed_events]

    def summary(self) -> str:
        lines = [f"optimization report for {self.machine_name!r} "
                 f"({self.iterations} iteration(s)):"]
        effective = [r for r in self.pass_results if r.changed]
        if not effective:
            lines.append("  no optimization opportunities found")
        for r in effective:
            lines.append("  " + r.summary())
        for name in self.skipped_passes:
            lines.append(f"  skipped {name} (unsound under the chosen "
                         "semantics)")
        return "\n".join(lines)


class PassManager:
    """Runs a selected sequence of passes over a *copy* of the model."""

    def __init__(self, passes: Optional[Iterable[ModelPass]] = None,
                 semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS) -> None:
        self.catalog = default_pass_catalog()
        if passes is not None:
            self.catalog = {p.name: p for p in passes}
        self.semantics = semantics

    def available_passes(self) -> List[str]:
        return list(self.catalog)

    def describe_catalog(self) -> str:
        width = max(len(n) for n in self.catalog)
        return "\n".join(f"{name:<{width}}  {p.description}"
                         for name, p in self.catalog.items())

    def run(self, machine: StateMachine,
            selection: Optional[Sequence[str]] = None,
            fixpoint: bool = True,
            max_iterations: int = 25) -> OptimizationReport:
        """Apply the selected passes (default: the standard pipeline).

        Passes run in the given order; with ``fixpoint=True`` the whole
        sequence repeats until no pass reports a change (each pass can
        expose opportunities for the others, e.g. removing a shadowed
        transition strands a composite for unreachable-state removal).
        """
        names = list(selection if selection is not None
                     else [n for n in DEFAULT_PIPELINE if n in self.catalog])
        unknown = [n for n in names if n not in self.catalog]
        if unknown:
            raise KeyError(f"unknown optimization pass(es): {unknown}; "
                           f"available: {sorted(self.catalog)}")
        optimized = clone_machine(machine)
        report = OptimizationReport(machine_name=machine.name,
                                    optimized=optimized)
        runnable: List[ModelPass] = []
        for name in names:
            pass_ = self.catalog[name]
            if pass_.applicable(self.semantics):
                runnable.append(pass_)
            else:
                report.skipped_passes.append(name)
        while report.iterations < max_iterations:
            report.iterations += 1
            changed = False
            for pass_ in runnable:
                result = pass_.run(optimized, self.semantics)
                report.pass_results.append(result)
                changed = changed or result.changed
            if not (fixpoint and changed):
                break
        return report


def optimize(machine: StateMachine,
             selection: Optional[Sequence[str]] = None,
             semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
             ) -> OptimizationReport:
    """One-call interface: run the (selected) pipeline on *machine*."""
    return PassManager(semantics=semantics).run(machine, selection=selection)
