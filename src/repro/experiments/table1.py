"""Table 1 reproduction: optimization gain for three patterns.

Paper Table 1 (hierarchical machine, GCC 4.3.2 ``-Os``):

=============  ==================  ==============  =========
pattern        non-optimized (B)   optimized (B)   rate
=============  ==================  ==============  =========
STT            13 885               9 607          30.81 %
Nested Switch  48 764              26 379          45.90 %
State Pattern  49 863              23 663          52.54 %
=============  ==================  ==============  =========

Shapes to check on the reproduction (RT32 bytes):

* every pattern shows a *significant* gain on the hierarchical machine
  ("whatever the pattern is, we obtain a significant gain when dealing
  with hierarchical state machine");
* gains are ordered STT < Nested Switch <= State Pattern;
* the STT pattern's gain is the smallest because its per-transition cost
  is table data while its fixed engine survives optimization.

Run as ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..codegen import ALL_GENERATORS
from ..compiler import OptLevel
from ..compiler.target import TargetDescription, resolve_target
from ..engine import CompareJob, ExperimentEngine
from ..uml.statemachine import StateMachine
from .models import hierarchical_machine_with_shadowed_composite
from .report import render_table

__all__ = ["Table1Row", "run_table1", "main", "PAPER_TABLE1"]

#: The paper's measurements: pattern -> (before, after, rate%).
PAPER_TABLE1 = {
    "state-table": (13885, 9607, 30.81),
    "nested-switch": (48764, 26379, 45.90),
    "state-pattern": (49863, 23663, 52.54),
}


@dataclass(frozen=True)
class Table1Row:
    pattern: str
    display_name: str
    size_before: int
    size_after: int
    gain_percent: float
    behavior_preserved: bool


def run_table1(machine: Optional[StateMachine] = None,
               level: OptLevel = OptLevel.OS,
               target: Union[TargetDescription, str, None] = None,
               engine: Optional[ExperimentEngine] = None,
               jobs: int = 1,
               ) -> List[Table1Row]:
    """Regenerate Table 1 (defaults to the paper's hierarchical model).

    All patterns run as one engine batch: the model optimization is
    shared across the grid and ``jobs`` (or a passed *engine*'s pool)
    compiles the patterns in parallel.
    """
    if machine is None:
        machine = hierarchical_machine_with_shadowed_composite()
    eng = engine if engine is not None else ExperimentEngine(jobs=jobs)
    cmps = eng.compare_batch([CompareJob(machine, gen_cls.name, level,
                                         target=target)
                              for gen_cls in ALL_GENERATORS])
    rows: List[Table1Row] = []
    for gen_cls, cmp in zip(ALL_GENERATORS, cmps):
        rows.append(Table1Row(
            pattern=gen_cls.name,
            display_name=gen_cls.display_name,
            size_before=cmp.size_before,
            size_after=cmp.size_after,
            gain_percent=cmp.gain_percent,
            behavior_preserved=cmp.equivalence.equivalent,
        ))
    return rows


def main(target: Union[TargetDescription, str, None] = None,
         engine: Optional[ExperimentEngine] = None, jobs: int = 1) -> str:
    tgt = resolve_target(target)
    rows = run_table1(target=tgt, engine=engine, jobs=jobs)
    measured = render_table(
        "Table 1 - optimization gain for three different patterns "
        f"(MGCC -Os, {tgt.name.upper()} bytes)",
        ["pattern", "non-optimized (B)", "optimized (B)", "rate",
         "behavior preserved"],
        [[r.display_name, r.size_before, r.size_after,
          f"{r.gain_percent:.2f}%", r.behavior_preserved] for r in rows])
    paper = render_table(
        "paper reference (GCC 4.3.2 -Os, x86 bytes)",
        ["pattern", "non-optimized (B)", "optimized (B)", "rate"],
        [["STT", 13885, 9607, "30.81%"],
         ["Nested Switch", 48764, 26379, "45.90%"],
         ["State Pattern", 49863, 23663, "52.54%"]])
    return measured + "\n\n" + paper


if __name__ == "__main__":
    print(main())
