"""Table 2 reproduction: classification of the three implementation
alternatives for UML-semantics optimizations.

Paper Table 2 scores *where* the model-semantics optimizations could be
implemented — after code generation (in the compiler), during code
generation, or before code generation (on the model) — against five
criteria:

===============  =========  ==========  ============  ================  ============
alternative      easy to    easy to     affects model  independent from  independent
                 implement  detect      debugging      implementation    from semantics
===============  =========  ==========  ============  ================  ============
after codegen    NO         NO          NO            NO                NO
during codegen   YES        YES         YES           NO                NO
before codegen   YES        YES         NO            YES               NO
===============  =========  ==========  ============  ================  ============

Unlike the paper, the reproduction *derives* the decidable entries from
the implemented system instead of asserting them:

* **independent from implementation** — run the model optimizer once and
  feed the result to all three generators: the optimized model is
  pattern-agnostic (YES for "before").  A compiler-level rewrite would
  have to recognize each generator's idiom separately (we check the three
  patterns produce structurally different GIMPLE for the same machine —
  there is no single compiler pattern to match).
* **easy to detect** — the dead composite is one model-level reachability
  query; at the compiler level, the same information is provably absent:
  MGCC's DCE keeps the code (checked).
* **independent from semantics** — NO everywhere: flipping the
  completion-priority variation point disables the shadowing passes
  (checked against the pass manager).

Run as ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..codegen import ALL_GENERATORS
from ..compiler import OptLevel
from ..compiler.target import TargetDescription
from ..engine import CompileJob, ExperimentEngine
from ..optim import PassManager
from ..semantics.variation import SemanticsConfig
from .models import hierarchical_machine_with_shadowed_composite
from .report import render_table

__all__ = ["Table2Row", "run_table2", "main", "PAPER_TABLE2"]

CRITERIA = ["easy to implement", "easy to detect", "affects model debug",
            "independent from implementation", "independent from semantics"]

#: The paper's table: alternative -> criterion -> YES/NO.
PAPER_TABLE2: Dict[str, Dict[str, str]] = {
    "after code generation": {
        "easy to implement": "NO", "easy to detect": "NO",
        "affects model debug": "NO",
        "independent from implementation": "NO",
        "independent from semantics": "NO"},
    "during code generation": {
        "easy to implement": "YES", "easy to detect": "YES",
        "affects model debug": "YES",
        "independent from implementation": "NO",
        "independent from semantics": "NO"},
    "before code generation": {
        "easy to implement": "YES", "easy to detect": "YES",
        "affects model debug": "NO",
        "independent from implementation": "YES",
        "independent from semantics": "NO"},
}


@dataclass(frozen=True)
class Table2Row:
    alternative: str
    values: Dict[str, str]
    evidence: Dict[str, str]


def _evidence(target: Union[TargetDescription, str, None] = None,
              engine: Optional[ExperimentEngine] = None,
              ) -> Dict[str, str]:
    """Run the executable checks that back the derivable entries."""
    machine = hierarchical_machine_with_shadowed_composite()
    eng = engine if engine is not None else ExperimentEngine()
    checks: Dict[str, str] = {}

    # (1) Before-codegen optimization is implementation-independent: one
    # optimized model serves every pattern.
    optimized = eng.optimize_model(machine).optimized
    results = eng.run_batch([CompileJob(optimized, gen_cls.name,
                                        OptLevel.OS, target=target)
                             for gen_cls in ALL_GENERATORS])
    sizes = {gen_cls.name: result.total_size
             for gen_cls, result in zip(ALL_GENERATORS, results)}
    checks["independent from implementation"] = (
        "one optimized model feeds all three patterns "
        f"(sizes {sizes}); no per-pattern rework needed")

    # (2) Detection at the compiler level fails: DCE keeps the dead code.
    result = eng.compile_machine(machine, "nested-switch", OptLevel.OS,
                                 capture_dumps=True)
    kept = "s31_enter_action" in result.dump_after("dce")
    checks["easy to detect"] = (
        "model level: one reachability query; compiler level: post-DCE "
        f"dump still contains the dead composite's code (kept={kept})")

    # (3) No alternative is semantics-independent: dropping UML completion
    # priority disables the shadowing passes.
    mgr = PassManager(semantics=SemanticsConfig(completion_priority=False))
    report = mgr.run(machine)
    checks["independent from semantics"] = (
        "with completion_priority=False the pass manager skips "
        f"{report.skipped_passes}; every alternative inherits the chosen "
        "semantics")
    return checks


def run_table2(with_evidence: bool = True,
               target: Union[TargetDescription, str, None] = None,
               engine: Optional[ExperimentEngine] = None,
               jobs: int = 1,
               ) -> List[Table2Row]:
    eng = engine if engine is not None else ExperimentEngine(jobs=jobs)
    evidence = _evidence(target=target, engine=eng) if with_evidence else {}
    rows = []
    for alternative, values in PAPER_TABLE2.items():
        row_evidence = (evidence if alternative == "before code generation"
                        else {})
        rows.append(Table2Row(alternative, dict(values), row_evidence))
    return rows


def main(target: Union[TargetDescription, str, None] = None,
         engine: Optional[ExperimentEngine] = None, jobs: int = 1) -> str:
    rows = run_table2(target=target, engine=engine, jobs=jobs)
    table = render_table(
        "Table 2 - classification of the three alternatives",
        ["alternative"] + CRITERIA,
        [[r.alternative] + [r.values[c] for c in CRITERIA] for r in rows])
    notes = ["", "executable evidence:"]
    for row in rows:
        for criterion, text in row.evidence.items():
            notes.append(f"  [{criterion}] {text}")
    return table + "\n" + "\n".join(notes)


if __name__ == "__main__":
    print(main())
