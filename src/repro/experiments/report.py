"""Plain-text table rendering for experiment output.

Every experiment harness prints through these helpers so the benches and
the ``python -m repro.experiments.*`` entry points produce the same rows
the paper reports, in the same layout.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "format_gain"]


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with a title line."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title,
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             sep]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_gain(before: int, after: int) -> str:
    """``"45.90%"``-style gain figure (paper Table 1 convention)."""
    if before == 0:
        return "0.00%"
    return f"{100.0 * (before - after) / before:.2f}%"
