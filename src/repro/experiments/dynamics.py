"""Dynamic cost of the generated code, measured on the ISA simulator.

The paper's tables are static: bytes of assembly.  Its motivating claim
is dynamic — model-level optimization changes what the *running* code
costs (dispatch work, footprint touched per event).  This harness
measures that on the :mod:`repro.vm` simulator: for every codegen
pattern x optimization level it executes the paper's hierarchical
machine, before and after model optimization, over the conformance
scenario set, and reports

* **cycles/event** — mean simulated cycles per dispatched event;
* **peak** — worst single dispatch latency (the RTES-relevant number);
* **conformant** — whether the executed trace matched the reference
  interpreter on every scenario (the measurement is only meaningful if
  the code is correct);
* the **dynamic gain** of model optimization, the runtime analogue of
  Table 1's size gain.

All quantities are simulated and therefore deterministic: the same
table is produced on any host, serial or parallel — unlike wall-clock
benchmarks, which live in ``benchmarks/`` instead.

Run as ``python -m repro.experiments.dynamics`` (or through
``python -m repro.experiments``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..codegen import ALL_PATTERNS
from ..compiler import OptLevel
from ..compiler.target import TargetDescription, resolve_target
from ..engine import ExperimentEngine
from ..uml.statemachine import StateMachine
from .models import hierarchical_machine_with_shadowed_composite
from .report import render_table

__all__ = ["DynamicsRow", "run_dynamics", "main",
           "FleetThroughputRow", "run_fleet_throughput", "throughput_main"]

#: Levels the dynamics table sweeps: unoptimized vs. the paper's -Os.
LEVELS = (OptLevel.O0, OptLevel.OS)


@dataclass(frozen=True)
class DynamicsRow:
    """One pattern x level cell, before and after model optimization."""

    pattern: str
    display_name: str
    level: OptLevel
    text_before: int
    text_after: int
    cycles_per_event_before: float
    cycles_per_event_after: float
    peak_dispatch_before: int
    peak_dispatch_after: int
    conformant_before: bool
    conformant_after: bool

    @property
    def dynamic_gain_percent(self) -> float:
        if self.cycles_per_event_before == 0:
            return 0.0
        return (100.0 * (self.cycles_per_event_before
                         - self.cycles_per_event_after)
                / self.cycles_per_event_before)


def run_dynamics(machine: Optional[StateMachine] = None,
                 target: Union[TargetDescription, str, None] = None,
                 engine: Optional[ExperimentEngine] = None,
                 jobs: int = 1) -> List[DynamicsRow]:
    """Measure every pattern x level cell on the simulator.

    The model optimization is computed once through the engine's cache
    and feeds every cell; the per-cell conformance runs execute on the
    engine's worker pool.
    """
    if machine is None:
        machine = hierarchical_machine_with_shadowed_composite()
    eng = engine if engine is not None else ExperimentEngine(jobs=jobs)
    tgt = resolve_target(target)
    optimized = eng.optimize_model(machine).optimized
    cells = [(gen_cls, level) for gen_cls in ALL_PATTERNS
             for level in LEVELS]

    def run_cell(cell) -> DynamicsRow:
        gen_cls, level = cell
        before = eng.vm_conformance(machine, pattern=gen_cls.name,
                                    level=level, target=tgt)
        # The optimized clone replays the ORIGINAL machine's scenarios
        # (it may have dropped events; it must ignore them), so both
        # cells measure the same workload and the gain is attributable
        # to the model optimization, not to a changed scenario set.
        after = eng.vm_conformance(optimized, pattern=gen_cls.name,
                                   level=level, target=tgt,
                                   scenario_machine=machine)
        return DynamicsRow(
            pattern=gen_cls.name,
            display_name=gen_cls.display_name,
            level=level,
            text_before=before.text_bytes,
            text_after=after.text_bytes,
            cycles_per_event_before=before.cycles_per_event,
            cycles_per_event_after=after.cycles_per_event,
            peak_dispatch_before=before.peak_dispatch_cycles,
            peak_dispatch_after=after.peak_dispatch_cycles,
            conformant_before=before.conformant,
            conformant_after=after.conformant)

    return eng.map(run_cell, cells)


@dataclass(frozen=True)
class FleetThroughputRow:
    """One machine's fleet-vs-interpreter throughput measurement.

    ``events_per_sec``/``speedup`` are wall-clock and therefore
    non-deterministic; ``lane_events``/``fast_fraction`` are exact.
    """

    machine_name: str
    instances: int
    shards: int
    stream_events: int
    lane_events: int
    fast_fraction: float
    events_per_sec: float
    interp_events_per_sec: float

    @property
    def speedup(self) -> Optional[float]:
        """Fleet-vs-interpreter ratio, ``None`` when the interpreter
        baseline rate is 0 (nothing to divide by — "infinitely faster"
        was a measurement artifact, not a result)."""
        if self.interp_events_per_sec == 0:
            return None
        return self.events_per_sec / self.interp_events_per_sec

    @property
    def speedup_display(self) -> str:
        """``"12.3x"``, or ``"n/a"`` without a usable baseline."""
        return "n/a" if self.speedup is None else f"{self.speedup:.1f}x"


def run_fleet_throughput(machine: Optional[StateMachine] = None,
                         n_instances: int = 10_000,
                         n_events: int = 200,
                         n_shards: int = 4,
                         batch_size: int = 32,
                         seed: int = 0,
                         interp_sample: int = 25) -> FleetThroughputRow:
    """Broadcast one event stream to an ``n_instances``-wide fleet and
    to a small per-instance interpreter sample of the same workload.

    Wall-clock by construction, so this axis never feeds the
    deterministic experiment tables — it is opt-in via
    ``python -m repro.experiments --throughput``.

    The interpreter baseline times **dispatch only**
    (:func:`repro.fleet.baseline.interpreter_dispatch_rate`): instance
    construction and ``start()`` happen outside the timed region,
    matching what the fleet side's report times, so the speedup
    compares steady-state dispatch against steady-state dispatch.
    """
    import random as _random

    from ..fleet.baseline import interpreter_dispatch_rate
    from ..fleet.harness import FleetHarness
    from ..fleet.table import compile_table
    if machine is None:
        machine = hierarchical_machine_with_shadowed_composite()
    table = compile_table(machine)
    alphabet = [e.name for e in machine.signal_alphabet()]
    rng = _random.Random(seed)
    events = [rng.choice(alphabet) for _ in range(n_events)]

    harness = FleetHarness(table, n_instances=n_instances,
                           n_shards=n_shards, batch_size=batch_size,
                           routing="broadcast")
    harness.start()
    report = harness.run(events)

    sample = min(interp_sample, n_instances)
    interp_eps = interpreter_dispatch_rate(machine, events, sample)

    fast = sum(s.fast_fraction * s.lane_events for s in report.shards)
    total = sum(s.lane_events for s in report.shards)
    return FleetThroughputRow(
        machine_name=machine.name,
        instances=harness.n_lanes,
        shards=harness.n_shards,
        stream_events=len(events),
        lane_events=report.lane_events,
        fast_fraction=fast / total if total else 0.0,
        events_per_sec=report.events_per_sec,
        interp_events_per_sec=interp_eps)


def throughput_main(target: Union[TargetDescription, str, None] = None,
                    engine: Optional[ExperimentEngine] = None,
                    jobs: int = 1) -> str:
    """The opt-in wall-clock throughput table (``--throughput``)."""
    from .workload import WorkloadSpec, generate_machine
    machines = [
        hierarchical_machine_with_shadowed_composite(),
        generate_machine(WorkloadSpec(
            n_live=8, n_dead=2, n_shadowed_composites=1,
            composite_width=3, entry_calls=2, exit_calls=1,
            events_per_state=2, guarded_fraction=0.25, seed=7,
            name="ThroughputWorkload")),
    ]
    rows = [run_fleet_throughput(machine) for machine in machines]
    table = render_table(
        "Fleet throughput - vectorized table engine vs. per-instance "
        "interpretation (wall-clock; excluded from deterministic output)",
        ["machine", "instances", "shards", "lane events", "fast %",
         "events/sec", "interp ev/s", "speedup"],
        [[r.machine_name, r.instances, r.shards, r.lane_events,
          f"{r.fast_fraction:.0%}", f"{r.events_per_sec:,.0f}",
          f"{r.interp_events_per_sec:,.0f}", r.speedup_display]
         for r in rows])
    note = ("events/sec and speedup are wall-clock (vary per host/run); "
            "lane events and fast % are deterministic")
    return table + "\n" + note


def main(target: Union[TargetDescription, str, None] = None,
         engine: Optional[ExperimentEngine] = None, jobs: int = 1) -> str:
    tgt = resolve_target(target)
    rows = run_dynamics(target=tgt, engine=engine, jobs=jobs)
    table = render_table(
        "Dynamics - simulated cost per dispatched event, before/after "
        f"model optimization (hierarchical machine, {tgt.name.upper()})",
        ["pattern", "level", "text B", "cyc/ev", "opt cyc/ev", "dyn gain",
         "peak", "opt peak", "conformant"],
        [[r.display_name, r.level.value, r.text_before,
          f"{r.cycles_per_event_before:.1f}",
          f"{r.cycles_per_event_after:.1f}",
          f"{r.dynamic_gain_percent:.2f}%",
          r.peak_dispatch_before, r.peak_dispatch_after,
          "yes" if (r.conformant_before and r.conformant_after) else "NO"]
         for r in rows])
    note = ("cycles are simulated (deterministic); conformance = "
            "VM-executed trace equals interpreter trace on every scenario")
    return table + "\n" + note


if __name__ == "__main__":
    print(main())
