"""Parameter sweeps beyond the paper's two examples.

The paper asserts (§III.C) that the gain "is proportional to the number
of removed states/transitions" and "depends also on the kind of state
machine".  These sweeps chart both claims and add the ablations
DESIGN.md calls out:

* :func:`unreachable_sweep` — flat machines with a growing number of
  dead states: gain vs. removed states (the proportionality claim);
* :func:`composite_sweep` — machines with growing shadowed-composite
  payloads: the hierarchical amplification;
* :func:`pattern_scaling_sweep` — absolute size of each pattern as the
  live machine grows (where the table pattern's data-driven encoding
  overtakes the code-driven patterns);
* :func:`pass_ablation` — per-model-pass contribution to the final size;
* :func:`opt_level_sweep` — the compiler's own ``-O`` levels on the
  *non*-optimized model: how much of the problem the compiler alone can
  and cannot recover;
* :func:`target_sweep` — every pattern compiled for every registered
  target: the cross-ISA code-size comparison the multi-backend
  architecture exists for.

Run as ``python -m repro.experiments.sweeps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..compiler import OptLevel, available_targets
from ..compiler.target import TargetDescription, resolve_target
from ..engine import CompareJob, CompileJob, ExperimentEngine
from ..optim import DEFAULT_PIPELINE
from .models import hierarchical_machine_with_shadowed_composite
from .report import render_table
from .workload import WorkloadSpec, generate_machine

__all__ = ["SweepPoint", "unreachable_sweep", "composite_sweep",
           "pattern_scaling_sweep", "pass_ablation", "opt_level_sweep",
           "target_sweep", "TargetSweepRow", "main"]


@dataclass(frozen=True)
class SweepPoint:
    """One measurement of a sweep."""

    x: int
    label: str
    size_before: int
    size_after: int

    @property
    def gain_percent(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 100.0 * (self.size_before - self.size_after) / \
            self.size_before


def _engine(engine: Optional[ExperimentEngine], jobs: int
            ) -> ExperimentEngine:
    return engine if engine is not None else ExperimentEngine(jobs=jobs)


def unreachable_sweep(dead_counts: Sequence[int] = (0, 1, 2, 4, 8),
                      pattern: str = "nested-switch",
                      n_live: int = 5,
                      target: Union[TargetDescription, str, None] = None,
                      engine: Optional[ExperimentEngine] = None,
                      jobs: int = 1,
                      ) -> List[SweepPoint]:
    """Gain as a function of the number of removed (dead) states."""
    eng = _engine(engine, jobs)
    machines = [generate_machine(WorkloadSpec(n_live=n_live, n_dead=n_dead))
                for n_dead in dead_counts]
    cmps = eng.compare_batch([CompareJob(machine, pattern,
                                         check_behavior=False,
                                         target=target)
                              for machine in machines])
    return [SweepPoint(n_dead, f"{n_dead} dead states",
                       cmp.size_before, cmp.size_after)
            for n_dead, cmp in zip(dead_counts, cmps)]


def composite_sweep(widths: Sequence[int] = (1, 2, 4, 8),
                    pattern: str = "nested-switch",
                    target: Union[TargetDescription, str, None] = None,
                    engine: Optional[ExperimentEngine] = None,
                    jobs: int = 1,
                    ) -> List[SweepPoint]:
    """Gain as the shadowed composite's submachine grows."""
    eng = _engine(engine, jobs)
    machines = [generate_machine(WorkloadSpec(
        n_live=4, n_shadowed_composites=1, composite_width=width))
        for width in widths]
    cmps = eng.compare_batch([CompareJob(machine, pattern,
                                         check_behavior=False,
                                         target=target)
                              for machine in machines])
    return [SweepPoint(width, f"width {width}",
                       cmp.size_before, cmp.size_after)
            for width, cmp in zip(widths, cmps)]


def pattern_scaling_sweep(sizes: Sequence[int] = (4, 8, 16, 24),
                          target: Union[TargetDescription, str, None] = None,
                          engine: Optional[ExperimentEngine] = None,
                          jobs: int = 1,
                          ) -> Dict[str, List[SweepPoint]]:
    """Absolute size per pattern as the (live) machine grows."""
    from ..codegen import ALL_GENERATORS
    eng = _engine(engine, jobs)
    machines = {n: generate_machine(WorkloadSpec(n_live=n)) for n in sizes}
    grid = [(n, gen_cls) for n in sizes for gen_cls in ALL_GENERATORS]
    results = eng.run_batch([CompileJob(machines[n], gen_cls.name,
                                        OptLevel.OS, target=target)
                             for n, gen_cls in grid])
    curves: Dict[str, List[SweepPoint]] = {g.name: [] for g in
                                           ALL_GENERATORS}
    for (n, gen_cls), result in zip(grid, results):
        size = result.total_size
        curves[gen_cls.name].append(SweepPoint(n, f"{n} states",
                                               size, size))
    return curves


def pass_ablation(pattern: str = "nested-switch",
                  target: Union[TargetDescription, str, None] = None,
                  engine: Optional[ExperimentEngine] = None,
                  jobs: int = 1,
                  ) -> List[SweepPoint]:
    """Size after enabling the pipeline one pass at a time (cumulative)."""
    eng = _engine(engine, jobs)
    machine = hierarchical_machine_with_shadowed_composite()
    baseline = eng.compile_machine(machine, pattern, OptLevel.OS,
                                   target=target).total_size
    prefixes = [list(DEFAULT_PIPELINE[:i])
                for i in range(1, len(DEFAULT_PIPELINE) + 1)]
    optimized = eng.map(
        lambda selection: eng.optimize_model(
            machine, selection=selection).optimized, prefixes)
    results = eng.run_batch([CompileJob(opt, pattern, OptLevel.OS,
                                        target=target)
                             for opt in optimized])
    points = [SweepPoint(0, "no model optimization", baseline, baseline)]
    for i, result in enumerate(results, start=1):
        points.append(SweepPoint(i, "+" + DEFAULT_PIPELINE[i - 1],
                                 baseline, result.total_size))
    return points


def opt_level_sweep(pattern: str = "nested-switch",
                    target: Union[TargetDescription, str, None] = None,
                    engine: Optional[ExperimentEngine] = None,
                    jobs: int = 1,
                    ) -> List[SweepPoint]:
    """Compiler-only optimization (non-optimized model) per -O level.

    The ``-O0`` reference compile and the loop's ``-O0`` cell are the
    same cache entry — the engine's dedup at work.
    """
    eng = _engine(engine, jobs)
    machine = hierarchical_machine_with_shadowed_composite()
    o0 = eng.compile_machine(machine, pattern, OptLevel.O0,
                             target=target).total_size
    levels = list(OptLevel)
    results = eng.run_batch([CompileJob(machine, pattern, level,
                                        target=target)
                             for level in levels])
    return [SweepPoint(i, level.value, o0, result.total_size)
            for i, (level, result) in enumerate(zip(levels, results))]


@dataclass(frozen=True)
class TargetSweepRow:
    """One (pattern, target) code-size measurement."""

    pattern: str
    target: str
    text_size: int
    rodata_size: int
    total_size: int


def target_sweep(level: OptLevel = OptLevel.OS,
                 targets: Optional[Sequence[str]] = None,
                 engine: Optional[ExperimentEngine] = None,
                 jobs: int = 1,
                 ) -> List[TargetSweepRow]:
    """Compile every pattern for every registered target — the cross-ISA
    comparison the pluggable backend enables (paper's "size of the
    generated assembly code", per target)."""
    from ..codegen import ALL_PATTERNS
    eng = _engine(engine, jobs)
    machine = hierarchical_machine_with_shadowed_composite()
    grid = [(target_name, gen_cls)
            for target_name in (targets or available_targets())
            for gen_cls in ALL_PATTERNS]
    results = eng.run_batch([CompileJob(machine, gen_cls.name, level,
                                        target=target_name)
                             for target_name, gen_cls in grid])
    rows: List[TargetSweepRow] = []
    for (target_name, gen_cls), result in zip(grid, results):
        module = result.module
        rows.append(TargetSweepRow(
            pattern=gen_cls.name, target=target_name,
            text_size=module.text_size, rodata_size=module.rodata_size,
            total_size=module.total_size))
    return rows


def main(target: Union[TargetDescription, str, None] = None,
         engine: Optional[ExperimentEngine] = None, jobs: int = 1) -> str:
    eng = _engine(engine, jobs)
    tgt = resolve_target(target)
    suffix = f" [{tgt.name}]"
    parts: List[str] = []
    parts.append(render_table(
        "gain vs removed states (nested-switch, -Os)" + suffix,
        ["dead states", "before (B)", "after (B)", "gain"],
        [[p.x, p.size_before, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in unreachable_sweep(target=tgt, engine=eng)]))
    parts.append(render_table(
        "gain vs shadowed composite width (nested-switch, -Os)" + suffix,
        ["substates", "before (B)", "after (B)", "gain"],
        [[p.x, p.size_before, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in composite_sweep(target=tgt, engine=eng)]))
    curves = pattern_scaling_sweep(target=tgt, engine=eng)
    sizes = sorted({p.x for pts in curves.values() for p in pts})
    parts.append(render_table(
        "absolute size vs live machine size (-Os)" + suffix,
        ["live states"] + list(curves),
        [[n] + [next(p.size_after for p in curves[name] if p.x == n)
                for name in curves] for n in sizes]))
    parts.append(render_table(
        "model-pass ablation (hierarchical model, nested-switch, -Os)"
        + suffix,
        ["step", "pipeline prefix", "size (B)", "gain vs baseline"],
        [[p.x, p.label, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in pass_ablation(target=tgt, engine=eng)]))
    parts.append(render_table(
        "compiler-only -O levels (non-optimized hierarchical model)"
        + suffix,
        ["level", "size (B)", "vs -O0"],
        [[p.label, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in opt_level_sweep(target=tgt, engine=eng)]))
    parts.append(render_table(
        "cross-target code size (hierarchical model, -Os, all patterns)",
        ["pattern", "target", "text (B)", "rodata (B)", "total (B)"],
        [[r.pattern, r.target, r.text_size, r.rodata_size, r.total_size]
         for r in target_sweep(engine=eng)]))
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
