"""Parameter sweeps beyond the paper's two examples.

The paper asserts (§III.C) that the gain "is proportional to the number
of removed states/transitions" and "depends also on the kind of state
machine".  These sweeps chart both claims and add the ablations
DESIGN.md calls out:

* :func:`unreachable_sweep` — flat machines with a growing number of
  dead states: gain vs. removed states (the proportionality claim);
* :func:`composite_sweep` — machines with growing shadowed-composite
  payloads: the hierarchical amplification;
* :func:`pattern_scaling_sweep` — absolute size of each pattern as the
  live machine grows (where the table pattern's data-driven encoding
  overtakes the code-driven patterns);
* :func:`pass_ablation` — per-model-pass contribution to the final size;
* :func:`opt_level_sweep` — the compiler's own ``-O`` levels on the
  *non*-optimized model: how much of the problem the compiler alone can
  and cannot recover;
* :func:`target_sweep` — every pattern compiled for every registered
  target: the cross-ISA code-size comparison the multi-backend
  architecture exists for.

Run as ``python -m repro.experiments.sweeps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..compiler import OptLevel, available_targets
from ..compiler.target import TargetDescription, resolve_target
from ..optim import DEFAULT_PIPELINE, optimize
from ..pipeline import compile_machine, optimize_and_compare
from .models import hierarchical_machine_with_shadowed_composite
from .report import render_table
from .workload import WorkloadSpec, generate_machine

__all__ = ["SweepPoint", "unreachable_sweep", "composite_sweep",
           "pattern_scaling_sweep", "pass_ablation", "opt_level_sweep",
           "target_sweep", "TargetSweepRow", "main"]


@dataclass(frozen=True)
class SweepPoint:
    """One measurement of a sweep."""

    x: int
    label: str
    size_before: int
    size_after: int

    @property
    def gain_percent(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 100.0 * (self.size_before - self.size_after) / \
            self.size_before


def unreachable_sweep(dead_counts: Sequence[int] = (0, 1, 2, 4, 8),
                      pattern: str = "nested-switch",
                      n_live: int = 5,
                      target: Union[TargetDescription, str, None] = None,
                      ) -> List[SweepPoint]:
    """Gain as a function of the number of removed (dead) states."""
    points = []
    for n_dead in dead_counts:
        machine = generate_machine(WorkloadSpec(n_live=n_live,
                                                n_dead=n_dead))
        cmp = optimize_and_compare(machine, pattern, check_behavior=False,
                                   target=target)
        points.append(SweepPoint(n_dead, f"{n_dead} dead states",
                                 cmp.size_before, cmp.size_after))
    return points


def composite_sweep(widths: Sequence[int] = (1, 2, 4, 8),
                    pattern: str = "nested-switch",
                    target: Union[TargetDescription, str, None] = None,
                    ) -> List[SweepPoint]:
    """Gain as the shadowed composite's submachine grows."""
    points = []
    for width in widths:
        machine = generate_machine(WorkloadSpec(
            n_live=4, n_shadowed_composites=1, composite_width=width))
        cmp = optimize_and_compare(machine, pattern, check_behavior=False,
                                   target=target)
        points.append(SweepPoint(width, f"width {width}",
                                 cmp.size_before, cmp.size_after))
    return points


def pattern_scaling_sweep(sizes: Sequence[int] = (4, 8, 16, 24),
                          target: Union[TargetDescription, str, None] = None,
                          ) -> Dict[str, List[SweepPoint]]:
    """Absolute size per pattern as the (live) machine grows."""
    from ..codegen import ALL_GENERATORS
    curves: Dict[str, List[SweepPoint]] = {g.name: [] for g in
                                           ALL_GENERATORS}
    for n in sizes:
        machine = generate_machine(WorkloadSpec(n_live=n))
        for gen_cls in ALL_GENERATORS:
            size = compile_machine(machine, gen_cls.name, OptLevel.OS,
                                   target=target).total_size
            curves[gen_cls.name].append(
                SweepPoint(n, f"{n} states", size, size))
    return curves


def pass_ablation(pattern: str = "nested-switch",
                  target: Union[TargetDescription, str, None] = None,
                  ) -> List[SweepPoint]:
    """Size after enabling the pipeline one pass at a time (cumulative)."""
    machine = hierarchical_machine_with_shadowed_composite()
    baseline = compile_machine(machine, pattern, OptLevel.OS,
                               target=target).total_size
    points = [SweepPoint(0, "no model optimization", baseline, baseline)]
    for i in range(1, len(DEFAULT_PIPELINE) + 1):
        selection = list(DEFAULT_PIPELINE[:i])
        optimized = optimize(machine, selection=selection).optimized
        size = compile_machine(optimized, pattern, OptLevel.OS,
                               target=target).total_size
        points.append(SweepPoint(i, "+" + DEFAULT_PIPELINE[i - 1],
                                 baseline, size))
    return points


def opt_level_sweep(pattern: str = "nested-switch",
                    target: Union[TargetDescription, str, None] = None,
                    ) -> List[SweepPoint]:
    """Compiler-only optimization (non-optimized model) per -O level."""
    machine = hierarchical_machine_with_shadowed_composite()
    o0 = compile_machine(machine, pattern, OptLevel.O0,
                         target=target).total_size
    points = []
    for i, level in enumerate(OptLevel):
        size = compile_machine(machine, pattern, level,
                               target=target).total_size
        points.append(SweepPoint(i, level.value, o0, size))
    return points


@dataclass(frozen=True)
class TargetSweepRow:
    """One (pattern, target) code-size measurement."""

    pattern: str
    target: str
    text_size: int
    rodata_size: int
    total_size: int


def target_sweep(level: OptLevel = OptLevel.OS,
                 targets: Optional[Sequence[str]] = None,
                 ) -> List[TargetSweepRow]:
    """Compile every pattern for every registered target — the cross-ISA
    comparison the pluggable backend enables (paper's "size of the
    generated assembly code", per target)."""
    from ..codegen import ALL_PATTERNS
    machine = hierarchical_machine_with_shadowed_composite()
    rows: List[TargetSweepRow] = []
    for target_name in (targets or available_targets()):
        for gen_cls in ALL_PATTERNS:
            module = compile_machine(machine, gen_cls.name, level,
                                     target=target_name).module
            rows.append(TargetSweepRow(
                pattern=gen_cls.name, target=target_name,
                text_size=module.text_size, rodata_size=module.rodata_size,
                total_size=module.total_size))
    return rows


def main(target: Union[TargetDescription, str, None] = None) -> str:
    tgt = resolve_target(target)
    suffix = f" [{tgt.name}]"
    parts: List[str] = []
    parts.append(render_table(
        "gain vs removed states (nested-switch, -Os)" + suffix,
        ["dead states", "before (B)", "after (B)", "gain"],
        [[p.x, p.size_before, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in unreachable_sweep(target=tgt)]))
    parts.append(render_table(
        "gain vs shadowed composite width (nested-switch, -Os)" + suffix,
        ["substates", "before (B)", "after (B)", "gain"],
        [[p.x, p.size_before, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in composite_sweep(target=tgt)]))
    curves = pattern_scaling_sweep(target=tgt)
    sizes = sorted({p.x for pts in curves.values() for p in pts})
    parts.append(render_table(
        "absolute size vs live machine size (-Os)" + suffix,
        ["live states"] + list(curves),
        [[n] + [next(p.size_after for p in curves[name] if p.x == n)
                for name in curves] for n in sizes]))
    parts.append(render_table(
        "model-pass ablation (hierarchical model, nested-switch, -Os)"
        + suffix,
        ["step", "pipeline prefix", "size (B)", "gain vs baseline"],
        [[p.x, p.label, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in pass_ablation(target=tgt)]))
    parts.append(render_table(
        "compiler-only -O levels (non-optimized hierarchical model)"
        + suffix,
        ["level", "size (B)", "vs -O0"],
        [[p.label, p.size_after, f"{p.gain_percent:.2f}%"]
         for p in opt_level_sweep(target=tgt)]))
    parts.append(render_table(
        "cross-target code size (hierarchical model, -Os, all patterns)",
        ["pattern", "target", "text (B)", "rodata (B)", "total (B)"],
        [[r.pattern, r.target, r.text_size, r.rodata_size, r.total_size]
         for r in target_sweep()]))
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
