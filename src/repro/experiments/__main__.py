"""Run every experiment harness: ``python -m repro.experiments``.

``--target`` selects the backend ISA (any name in the target registry;
see ``repro.compiler.target``).  Unknown names exit with status 2 and
the list of registered targets on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..compiler.target import (UnknownTargetError, available_targets,
                               get_target)
from . import figure1, sweeps, table1, table2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures and the "
                    "reproduction's extra sweeps.")
    parser.add_argument(
        "--target", default="rt32", metavar="NAME",
        help="backend ISA to compile for (registered targets: "
             f"{', '.join(available_targets())}; default: %(default)s)")
    args = parser.parse_args(argv)
    try:
        target = get_target(args.target)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for title, module in (("FIGURE 1", figure1), ("TABLE 1", table1),
                          ("TABLE 2", table2), ("SWEEPS", sweeps)):
        print("#" * 72)
        print(f"# {title}  (target: {target.name})")
        print("#" * 72)
        print(module.main(target=target))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
