"""Run every experiment harness: ``python -m repro.experiments``."""

from . import figure1, sweeps, table1, table2


def main() -> None:
    for title, module in (("FIGURE 1", figure1), ("TABLE 1", table1),
                          ("TABLE 2", table2), ("SWEEPS", sweeps)):
        print("#" * 72)
        print(f"# {title}")
        print("#" * 72)
        print(module.main())
        print()


if __name__ == "__main__":
    main()
