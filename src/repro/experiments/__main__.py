"""Run every experiment harness: ``python -m repro.experiments``.

``--target`` selects the backend ISA (any name in the target registry;
see ``repro.compiler.target``).  Unknown names exit with status 2 and
the list of registered targets on stderr.

``--jobs N`` runs each experiment's job grid on an N-wide worker pool;
one engine (and so one compile cache) is shared by every harness, so
work repeated across tables — baseline compiles, the shared model
optimization — is computed once.  Table output is byte-identical for
every ``--jobs`` value.  ``--cache-stats`` prints the engine's hit/miss
statistics to stderr after the run.

``--cache-dir DIR`` makes the cache persistent: artifacts live in a
:mod:`repro.store` directory (tiered memory-over-disk backend), so a
second run of the suite — in a new process, a CI job, another machine
sharing the directory — is served from disk instead of recompiling.
Output is byte-identical between cold and warm runs;
``scripts/check_warm_cache.py`` asserts exactly that plus a >=90 %
disk-hit rate.

``--trace-out TRACE.json`` samples every compile and writes the run's
spans (engine, cache, per-stage compiler timings) as Chrome trace
JSON — load it in Perfetto or ``python -m repro.obs view``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..compiler.target import (UnknownTargetError, available_targets,
                               get_target)
from ..engine import ExperimentEngine
from . import dynamics, figure1, sweeps, table1, table2, tuning


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures and the "
                    "reproduction's extra sweeps.")
    parser.add_argument(
        "--target", default="rt32", metavar="NAME",
        help="backend ISA to compile for (registered targets: "
             f"{', '.join(available_targets())}; default: %(default)s)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker-pool width for experiment job grids "
             "(default: %(default)s = serial; output is byte-identical "
             "either way; threads are GIL-bound, so expect dedup/cache "
             "wins rather than linear speedup)")
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print the shared engine's cache statistics to stderr")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist compiled artifacts in a repro.store directory "
             "(tiered memory-over-disk cache); warm reruns are served "
             "from disk")
    parser.add_argument(
        "--throughput", action="store_true",
        help="append the fleet throughput table (wall-clock, "
             "non-deterministic; never part of the default output, "
             "which CI diffs byte-for-byte across --jobs values)")
    parser.add_argument(
        "--tune", action="store_true",
        help="append the autotuner table (pattern x level x model-pass "
             "lattice measured on the simulator; deterministic but "
             "opt-in — it searches ~100 cells instead of 8)")
    parser.add_argument(
        "--trace-out", default=None, metavar="TRACE.json",
        help="sample every compile and write the run's spans as "
             "Chrome trace JSON (Perfetto / python -m repro.obs view)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        target = get_target(args.target)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace_out:
        from ..obs.trace import configure
        configure(sample_ratio=1.0, process="experiments")

    engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir)
    try:
        for title, module in (("FIGURE 1", figure1), ("TABLE 1", table1),
                              ("TABLE 2", table2), ("SWEEPS", sweeps),
                              ("DYNAMICS", dynamics)):
            print("#" * 72)
            print(f"# {title}  (target: {target.name})")
            print("#" * 72)
            print(module.main(target=target, engine=engine))
            print()
        if args.tune:
            print("#" * 72)
            print(f"# AUTOTUNER  (target: {target.name})")
            print("#" * 72)
            print(tuning.main(target=target, engine=engine))
            print()
        if args.throughput:
            print("#" * 72)
            print(f"# FLEET THROUGHPUT  (target: {target.name})")
            print("#" * 72)
            print(dynamics.throughput_main(target=target, engine=engine))
            print()
    finally:
        if args.trace_out:
            from ..obs.export import write_chrome_trace
            from ..obs.trace import get_tracer
            count = write_chrome_trace(
                args.trace_out, get_tracer().drain(),
                metadata={"mode": "experiments", "target": target.name})
            print(f"wrote {count} span(s) to {args.trace_out}",
                  file=sys.stderr)
    if args.cache_stats:
        print(engine.describe(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
