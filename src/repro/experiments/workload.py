"""Random state-machine workload generator.

The paper notes that the optimization gain "is proportional to the number
of removed states/transitions" and "depends also on the kind of state
machine" (§III.C).  To chart that beyond the two hand-drawn examples, the
sweep benchmarks need families of machines with controlled amounts of
dead structure.  This generator produces valid, deterministic (seeded)
machines with:

* ``n_live`` reachable simple states in a connected transition graph;
* ``n_dead`` unreachable states (no incoming transitions) — the Fig. 1
  flat pathology, at scale;
* ``n_shadowed_composites`` composite states reachable only through an
  event transition shadowed by an unguarded completion transition — the
  Fig. 1 hierarchical pathology — each carrying ``composite_width``
  substates;
* entry/exit behaviors with a configurable number of opaque calls, and a
  configurable fraction of guarded transitions — applied uniformly to
  every *event* transition (live core, dead states, composites);
  completion transitions stay unguarded because the shadowing pathology
  depends on an unguarded completion winning.

Ring chords never self-loop and prefer targets the source has no edge
to yet; when ``events_per_state`` exceeds the available fanout they
reuse targets on distinct events rather than silently emitting fewer
transitions than the spec asked for.

All machines validate and are executable by the interpreter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..uml import (Assign, Behavior, StateMachineBuilder, StateMachine,
                   calls, parse_expr)

__all__ = ["WorkloadSpec", "generate_machine", "mutate_one_transition"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated machine."""

    n_live: int = 6
    n_dead: int = 0
    n_shadowed_composites: int = 0
    composite_width: int = 3
    entry_calls: int = 2
    exit_calls: int = 1
    events_per_state: int = 2
    guarded_fraction: float = 0.0
    seed: int = 0xBEEF
    name: str = ""

    def machine_name(self) -> str:
        if self.name:
            return self.name
        return (f"W{self.n_live}L{self.n_dead}D"
                f"{self.n_shadowed_composites}C")


def _behavior(prefix: str, count: int) -> Behavior:
    return calls(*[f"{prefix}_op{i}" for i in range(count)])


def generate_machine(spec: WorkloadSpec) -> StateMachine:
    """Build the machine described by *spec* (deterministic in the seed)."""
    rng = random.Random(spec.seed)
    b = StateMachineBuilder(spec.machine_name())
    b.attribute("guard_var", 1)

    live_names = [f"L{i}" for i in range(spec.n_live)]
    for name in live_names:
        b.state(name,
                entry=_behavior(f"{name.lower()}_entry", spec.entry_calls),
                exit=_behavior(f"{name.lower()}_exit", spec.exit_calls))
    b.initial_to(live_names[0])

    # Connected live core: a ring plus random chords, one event per edge.
    event_counter = 0

    def next_event() -> str:
        nonlocal event_counter
        event_counter += 1
        return f"ev{event_counter}"

    def maybe_guard() -> "str | None":
        # One rng draw per *event* transition, everywhere in the machine,
        # so guarded_fraction is honored uniformly (completion transitions
        # stay unguarded: the shadowing pathology requires it).
        return ("guard_var > 0"
                if rng.random() < spec.guarded_fraction else None)

    for i, name in enumerate(live_names):
        target = live_names[(i + 1) % spec.n_live]
        b.transition(name, target, on=next_event(), guard=maybe_guard(),
                     effect=_behavior(f"t{i}_effect", 1))
        # Chord targets exclude the source (no self-loops) and prefer
        # fresh targets; once the fanout is exhausted they reuse targets
        # (distinct events keep the edges legal) so events_per_state is
        # honored even for tiny live cores.
        used = {target}
        others = [s for s in live_names if s != name]
        for _ in range(max(spec.events_per_state - 1, 0)):
            if not others:
                break  # n_live == 1: no non-self target exists
            candidates = [s for s in others if s not in used] or others
            chord = rng.choice(candidates)
            used.add(chord)
            b.transition(name, chord, on=next_event(), guard=maybe_guard())
    b.transition(live_names[0], "final", on=next_event(),
                 guard=maybe_guard())

    # Dead flat states: transitions out (into the live core), none in.
    for i in range(spec.n_dead):
        name = f"D{i}"
        b.state(name,
                entry=_behavior(f"{name.lower()}_entry", spec.entry_calls),
                exit=_behavior(f"{name.lower()}_exit", spec.exit_calls))
        b.transition(name, rng.choice(live_names), on=next_event(),
                     guard=maybe_guard())

    # Shadowed composites: host state with an unguarded completion
    # transition + an event transition into the composite (dead by UML
    # completion priority).
    for i in range(spec.n_shadowed_composites):
        host = f"H{i}"
        b.state(host, entry=_behavior(f"{host.lower()}_entry",
                                      spec.entry_calls))
        b.transition(live_names[-1], host, on=next_event(),
                     guard=maybe_guard())
        comp = b.composite(f"C{i}",
                           entry=_behavior(f"c{i}_entry", spec.entry_calls),
                           exit=_behavior(f"c{i}_exit", spec.exit_calls))
        inner_names = [f"C{i}S{j}" for j in range(spec.composite_width)]
        for inner in inner_names:
            comp.state(inner,
                       entry=_behavior(f"{inner.lower()}_entry",
                                       spec.entry_calls),
                       exit=_behavior(f"{inner.lower()}_exit",
                                      spec.exit_calls))
        comp.initial_to(inner_names[0])
        for j in range(len(inner_names) - 1):
            comp.transition(inner_names[j], inner_names[j + 1],
                            on=next_event(), guard=maybe_guard())
        comp.transition(inner_names[-1], "final", on=next_event(),
                        guard=maybe_guard())
        b.transition(host, f"C{i}", on=next_event(),
                     guard=maybe_guard())              # shadowed
        b.completion(host, live_names[0])              # always wins:
        # the completion transition is deliberately unguarded — UML
        # completion priority over a guard-free completion is exactly the
        # shadowing pathology this family exists to exhibit.
        b.transition(f"C{i}", live_names[0], on=next_event(),
                     guard=maybe_guard())
    return b.build()


def mutate_one_transition(machine: StateMachine,
                          index: int = 0) -> StateMachine:
    """A copy of *machine* with exactly one event transition retargeted
    into a self-loop — the canonical "edit one transition" step the
    delta-compile gates replay.

    The edit is semantic (the handler of that (state, event) pair
    changes) but minimal: it touches one transition of one region, so a
    structure-sharing recompile should reuse every unit the edit
    doesn't reach.  *index* selects among the eligible transitions
    (external, triggered, not already a self-loop), wrapping around, so
    a corpus sweep can spread edits across a machine.  The copy
    round-trips through the serializer and re-validates — mutants are
    exactly as valid as their parents.
    """
    from ..uml.serialize import machine_from_dict, machine_to_dict
    from ..uml.validate import validate_machine
    data = machine_to_dict(machine)
    eligible = [t for t in data["transitions"]
                if t["triggers"] and t["kind"] == "external"
                and t["source"] != t["target"]]
    if not eligible:
        raise ValueError(f"{machine.name} has no event transition "
                         "to mutate")
    chosen = eligible[index % len(eligible)]
    chosen["target"] = chosen["source"]
    mutant = machine_from_dict(data)
    validate_machine(mutant)
    return mutant
