"""The autotuner's table: the measured frontier made prescriptive.

Where :mod:`repro.experiments.dynamics` *describes* what every
pattern x level costs, this harness *prescribes*: it runs the
:mod:`repro.tune` search over the paper's hierarchical machine
(pattern x opt level x advisor-pruned model-pass subsets, each cell
measured on the simulator and conformance-checked) and prints the
Pareto frontier plus the elected winner.

All quantities are simulated, so the table is deterministic and safe
for the byte-identity CI diffs — it is opt-in
(``python -m repro.experiments --tune``) only because the search
measures a lattice rather than a handful of cells.
"""

from __future__ import annotations

from typing import Optional, Union

from ..compiler.target import TargetDescription, resolve_target
from ..engine import ExperimentEngine
from .models import hierarchical_machine_with_shadowed_composite
from .report import render_table

__all__ = ["main"]


def main(target: Union[TargetDescription, str, None] = None,
         engine: Optional[ExperimentEngine] = None, jobs: int = 1) -> str:
    tgt = resolve_target(target)
    eng = engine if engine is not None else ExperimentEngine(jobs=jobs)
    machine = hierarchical_machine_with_shadowed_composite()
    record = eng.tune(machine, target=tgt)
    frontier = record.frontier()
    rows = [["*" if cell == record.winner else "",
             cell.pattern, cell.level,
             "+".join(cell.passes) or "(none)",
             f"{cell.cycles_per_event:.1f}", cell.text_bytes,
             cell.peak_dispatch_cycles, f"{cell.score:.1f}"]
            for cell in frontier]
    table = render_table(
        f"Autotuner - Pareto frontier of measured configurations "
        f"({record.machine_name}, {tgt.name.upper()}; * = winner)",
        ["", "pattern", "level", "model passes", "cyc/ev", "text B",
         "peak", "score"], rows)
    prior = "+".join(record.prior) or "(none)"
    note = (f"searched {len(record.cells)} cells "
            f"({len(record.conformant_cells)} conformant, "
            f"{len(record.rejected_cells)} rejected); static prior: "
            f"{prior}\nall cells simulated over the original machine's "
            f"event profile; non-conformant cells can never win")
    return table + "\n" + note


if __name__ == "__main__":
    print(main())
