"""Experiment harnesses regenerating the paper's tables and figures.

One module per artifact, each with a ``main(target=..., engine=...)``
that renders the table the CLI prints: :mod:`.figure1`, :mod:`.table1`,
:mod:`.table2`, :mod:`.sweeps` (the size side), and :mod:`.dynamics`
(simulated cycles/event and peak dispatch latency on the
:mod:`repro.vm` simulator, with conformance verdicts).  :mod:`.models`
holds the paper's Figure 1 machines (re-exported here);
:mod:`.workload` generates seeded machines with controlled dead
structure; :mod:`.report` renders the ASCII tables.  Run everything
with ``python -m repro.experiments``.
"""

from .models import (flat_machine_with_unreachable_state,
                     flat_machine_optimized_by_hand,
                     hierarchical_machine_with_shadowed_composite,
                     hierarchical_machine_optimized_by_hand)
from .workload import WorkloadSpec, generate_machine

__all__ = [
    "flat_machine_with_unreachable_state",
    "flat_machine_optimized_by_hand",
    "hierarchical_machine_with_shadowed_composite",
    "hierarchical_machine_optimized_by_hand",
    "WorkloadSpec", "generate_machine",
]
