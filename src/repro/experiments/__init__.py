"""Experiment harnesses regenerating the paper's tables and figures."""

from .models import (flat_machine_with_unreachable_state,
                     flat_machine_optimized_by_hand,
                     hierarchical_machine_with_shadowed_composite,
                     hierarchical_machine_optimized_by_hand)
from .workload import WorkloadSpec, generate_machine

__all__ = [
    "flat_machine_with_unreachable_state",
    "flat_machine_optimized_by_hand",
    "hierarchical_machine_with_shadowed_composite",
    "hierarchical_machine_optimized_by_hand",
    "WorkloadSpec", "generate_machine",
]
