"""The paper's example models (Figure 1) and close variants.

Figure 1, top-left ("flat"): a diagram with *"3 states, 2 pseudo states
(initial and final states) and 5 transitions"* where *"S2 is an
unreachable state because it has no incoming transitions"* (§III.A).

Figure 1, second row ("hierarchical"): *"There are two outgoing
transitions from State S2.  To move from S2 to S3, event e2 is needed,
however we do not need a particular event to move from S2 to final state.
This particular transition is called a completion transition.  According
to the UML semantic, the completion transition is first fired whatever
the received event is.  It means that our composite state S3 is never
active."* (§III.C)

States carry entry/exit behaviors calling opaque platform operations so
the generated code has realistic bodies: the paper's states are RTES
control states, not empty shells — its flat 3-state machine compiles to
12 669 bytes under Nested Switch, which implies several actions per
state.  ``_state_behaviors`` gives every state a small bundle of platform
calls (actuator command, logging, watchdog kick), the archetypal RTES
control-state body.
"""

from __future__ import annotations

from typing import Tuple

from ..uml import Behavior, StateMachineBuilder, StateMachine, calls

__all__ = [
    "flat_machine_with_unreachable_state",
    "flat_machine_optimized_by_hand",
    "hierarchical_machine_with_shadowed_composite",
    "hierarchical_machine_optimized_by_hand",
]


def _state_behaviors(name: str) -> Tuple[Behavior, Behavior]:
    """(entry, exit) behavior bundle of one RTES control state."""
    entry = calls(f"{name}_enter_action", f"{name}_configure_io",
                  f"{name}_log_entry")
    exit_ = calls(f"{name}_exit_action", f"{name}_log_exit")
    return entry, exit_


def _rtes_state(builder, name: str):
    entry, exit_ = _state_behaviors(name.lower())
    return builder.state(name, entry=entry, exit=exit_)


def flat_machine_with_unreachable_state() -> StateMachine:
    """Figure 1, top row: flat machine whose state S2 is unreachable.

    Structure: 3 states, initial + final pseudostates, 5 transitions
    (initial->S1, S1-e1->S3, S3-e3->S1, S2-e2->S3, S3-e4->final).
    """
    b = StateMachineBuilder("Fig1Flat")
    _rtes_state(b, "S1")
    _rtes_state(b, "S2")
    _rtes_state(b, "S3")
    b.initial_to("S1")
    b.transition("S1", "S3", on="e1", effect=calls("t_s1_s3_effect"))
    b.transition("S3", "S1", on="e3", effect=calls("t_s3_s1_effect"))
    b.transition("S2", "S3", on="e2", effect=calls("t_s2_s3_effect"))
    b.transition("S3", "final", on="e4")
    return b.build()


def flat_machine_optimized_by_hand() -> StateMachine:
    """The flat machine after manually removing S2 (reference result the
    optimizer output is compared against in tests)."""
    b = StateMachineBuilder("Fig1FlatOpt")
    _rtes_state(b, "S1")
    _rtes_state(b, "S3")
    b.initial_to("S1")
    b.transition("S1", "S3", on="e1", effect=calls("t_s1_s3_effect"))
    b.transition("S3", "S1", on="e3", effect=calls("t_s3_s1_effect"))
    b.transition("S3", "final", on="e4")
    return b.build()


def hierarchical_machine_with_shadowed_composite() -> StateMachine:
    """Figure 1, second row: composite S3 is never active because S2's
    unguarded completion transition preempts the e2 trigger.

    The composite carries a three-state submachine so that — as in the
    paper — removing it deletes a whole generated class.
    """
    b = StateMachineBuilder("Fig1Hier")
    _rtes_state(b, "S1")
    _rtes_state(b, "S2")
    s3_entry, s3_exit = _state_behaviors("s3")
    sub = b.composite("S3", entry=s3_entry, exit=s3_exit)
    _rtes_state(sub, "S31")
    _rtes_state(sub, "S32")
    _rtes_state(sub, "S33")
    sub.initial_to("S31")
    sub.transition("S31", "S32", on="e5", effect=calls("t_s31_s32_effect"))
    sub.transition("S32", "S33", on="e6", effect=calls("t_s32_s33_effect"))
    sub.transition("S33", "final", on="e7")
    b.initial_to("S1")
    b.transition("S1", "S2", on="e1", effect=calls("t_s1_s2_effect"))
    b.transition("S2", "S3", on="e2", effect=calls("t_s2_s3_effect"))
    b.completion("S2", "final")   # shadows the e2 transition above
    b.transition("S3", "S1", on="e3", effect=calls("t_s3_s1_effect"))
    return b.build()


def hierarchical_machine_optimized_by_hand() -> StateMachine:
    """The hierarchical machine after removing the shadowed transition,
    the never-active composite S3 and its whole submachine."""
    b = StateMachineBuilder("Fig1HierOpt")
    _rtes_state(b, "S1")
    _rtes_state(b, "S2")
    b.initial_to("S1")
    b.transition("S1", "S2", on="e1", effect=calls("t_s1_s2_effect"))
    b.completion("S2", "final")
    return b.build()
