"""Figure 1 reproduction: model optimizations and their size impact.

Paper Figure 1 shows two model-optimization examples and the assembly
sizes before/after:

* flat machine, unreachable state S2 removed: 12 669 -> 11 393 bytes
  (10.07 % gain) under the Nested Switch pattern at ``-Os``;
* hierarchical machine, completion-shadowed composite S3 removed:
  "> 45 %" gain.

``run_figure1()`` regenerates both rows with MGCC/RT32 sizes; shapes to
check (absolute bytes are target-dependent):

* the flat gain is modest (around ten percent);
* the hierarchical gain is several times larger (tens of percent),
  because the whole submachine class disappears;
* compiler DCE alone achieves neither (the unreachable state's code
  survives in the post-DCE dump).

Run as ``python -m repro.experiments.figure1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..compiler import OptLevel
from ..compiler.target import TargetDescription, resolve_target
from ..engine import CompareJob, ExperimentEngine
from .models import (flat_machine_with_unreachable_state,
                     hierarchical_machine_with_shadowed_composite)
from .report import format_gain, render_table

__all__ = ["Figure1Row", "run_figure1", "main"]

PAPER_FLAT_BEFORE = 12669
PAPER_FLAT_AFTER = 11393
PAPER_FLAT_GAIN = 10.07
PAPER_HIER_GAIN_MIN = 45.0


@dataclass(frozen=True)
class Figure1Row:
    """One row of the reproduced figure."""

    example: str
    pattern: str
    size_before: int
    size_after: int
    gain_percent: float
    dce_kept_dead_code: bool
    behavior_preserved: bool


def _dce_keeps_code(engine: ExperimentEngine, machine, marker: str) -> bool:
    result = engine.compile_machine(machine, "nested-switch", OptLevel.OS,
                                    capture_dumps=True)
    return marker in result.dump_after("dce")


def run_figure1(pattern: str = "nested-switch",
                target: Union[TargetDescription, str, None] = None,
                engine: Optional[ExperimentEngine] = None,
                jobs: int = 1,
                ) -> List[Figure1Row]:
    """Regenerate both Figure 1 rows (one engine batch)."""
    eng = engine if engine is not None else ExperimentEngine(jobs=jobs)
    rows: List[Figure1Row] = []
    flat = flat_machine_with_unreachable_state()
    hier = hierarchical_machine_with_shadowed_composite()
    cmp_flat, cmp_hier = eng.compare_batch(
        [CompareJob(flat, pattern, target=target),
         CompareJob(hier, pattern, target=target)])
    rows.append(Figure1Row(
        example="flat (unreachable state S2)",
        pattern=pattern,
        size_before=cmp_flat.size_before,
        size_after=cmp_flat.size_after,
        gain_percent=cmp_flat.gain_percent,
        dce_kept_dead_code=_dce_keeps_code(eng, flat, "s2_exit_action"),
        behavior_preserved=cmp_flat.equivalence.equivalent,
    ))
    rows.append(Figure1Row(
        example="hierarchical (shadowed composite S3)",
        pattern=pattern,
        size_before=cmp_hier.size_before,
        size_after=cmp_hier.size_after,
        gain_percent=cmp_hier.gain_percent,
        dce_kept_dead_code=_dce_keeps_code(eng, hier, "s31_enter_action"),
        behavior_preserved=cmp_hier.equivalence.equivalent,
    ))
    return rows


def main(target: Union[TargetDescription, str, None] = None,
         engine: Optional[ExperimentEngine] = None, jobs: int = 1) -> str:
    tgt = resolve_target(target)
    rows = run_figure1(target=tgt, engine=engine, jobs=jobs)
    table = render_table(
        "Figure 1 - model optimization impact on assembly size "
        f"(MGCC -Os, {tgt.name.upper()} bytes; paper: GCC 4.3.2 -Os)",
        ["example", "before (B)", "after (B)", "gain",
         "DCE kept dead code", "behavior preserved"],
        [[r.example, r.size_before, r.size_after,
          f"{r.gain_percent:.2f}%", r.dce_kept_dead_code,
          r.behavior_preserved] for r in rows])
    paper = render_table(
        "paper reference points",
        ["example", "before (B)", "after (B)", "gain"],
        [["flat (Nested Switch)", PAPER_FLAT_BEFORE, PAPER_FLAT_AFTER,
          f"{PAPER_FLAT_GAIN:.2f}%"],
         ["hierarchical (Nested Switch)", "-", "-",
          f"> {PAPER_HIER_GAIN_MIN:.0f}%"]])
    return table + "\n\n" + paper


if __name__ == "__main__":
    print(main())
