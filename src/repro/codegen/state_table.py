"""State Transition Table generator (R.C. Martin, the paper's ref. [9]).

"The State Table Transition (STT) ... consists in building a 2 dimensions
table describing the relation between states and events" (§III.B).

Generated shape for machine ``M``:

* the hierarchy is **flattened** at generation time
  (:mod:`repro.codegen.flattening`) — the published STT pattern describes
  a flat FSM, and table implementations of hierarchical machines flatten;
* one ``const M_Row M_rows[]`` table: ``{state, event, guard_fn,
  action_start, action_count, target}`` — 24 bytes of *data* per
  transition, no per-transition code;
* the action sequence of each row (exits, effect, entries) is a slice of
  a shared function-pointer pool ``M_actions[]``; every distinct
  entry/exit/effect behavior becomes **one** shared function and rows
  reference it — the factoring that makes this pattern's absolute size
  by far the smallest in the paper's Table 1 (13 885 B vs ~49 000 B,
  where the other two patterns duplicate the action code into every
  transition arm) and its optimization rate the lowest (30.8 %): removing
  a state deletes rows and pool slices, but the generic engine remains;
* a single generic engine (``scan``) matches (state, event), evaluates
  the optional guard, runs the pool slice and retargets;
* completion rows use the reserved event id ``COMPLETION_EVENT`` and are
  scanned after every fired transition — the UML priority rule.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..cpp import ast as cpp
from ..cpp.types import (ArrayType, ClassRefType, FuncPtrType, INT,
                         PointerType, VOID)
from ..uml.actions import Behavior
from ..uml.statemachine import StateMachine
from .base import (COMPLETION_EVENT, CodeGenerator, CodegenError, GenConfig,
                   NO_EVENT, event_enumerator)
from .common import (attribute_fields, behavior_to_cpp, event_enum_decl,
                     event_index, extern_decls, guard_to_cpp)
from .flattening import FlatMachine, FlatTransition, flatten_machine

__all__ = ["StateTableGenerator"]


class StateTableGenerator(CodeGenerator):
    """Table-driven implementation over the flattened machine."""

    name = "state-table"
    display_name = "STT"

    def generate(self, machine: StateMachine) -> cpp.TranslationUnit:
        self.machine = machine
        self.flat: FlatMachine = flatten_machine(machine)
        cls_name = self.class_name(machine)
        self.cls_name = cls_name
        self.machine_ptr = PointerType(ClassRefType(cls_name))
        unit = cpp.TranslationUnit(f"{machine.name}_state_table")
        unit.enums.append(event_enum_decl(machine))
        unit.enums.append(self._state_enum())
        unit.externs.extend(extern_decls(machine))

        self._behavior_fns: Dict[Behavior, str] = {}
        self._behavior_decls: List[cpp.Function] = []
        self._guard_fns: List[cpp.Function] = []
        self._pool: List[str] = []          # function names, in pool order
        self._pool_slices: Dict[Tuple[str, ...], int] = {}

        rows = [self._build_row(i, tr)
                for i, tr in enumerate(self.flat.transitions)]
        self._init_slice = self._pool_slice(tuple(
            fn for fn in (self._behavior_fn(b)
                          for b in self.flat.initial_actions)
            if fn is not None))

        unit.classes.append(self._row_class())
        unit.classes.append(self._machine_class())
        unit.functions.extend(self._behavior_decls)
        unit.functions.extend(self._guard_fns)
        unit.globals.append(self._pool_global())
        unit.globals.append(self._table_global(rows))
        unit.globals.append(cpp.GlobalVar(
            f"g_{cls_name}", ClassRefType(cls_name)))
        return unit

    # ------------------------------------------------------------------
    # naming / shared pieces
    # ------------------------------------------------------------------
    def _state_enum(self) -> cpp.EnumDecl:
        enumerators = [self._leaf_enumerator(leaf.index)
                       for leaf in self.flat.leaves]
        return cpp.EnumDecl(f"{self.cls_name}_State", enumerators)

    def _leaf_enumerator(self, index: int) -> str:
        name = self.flat.leaves[index].name.replace(".", "_")
        return f"LS_{name}"

    def _holder(self) -> Callable[[], cpp.Expr]:
        return lambda: cpp.Var("m")

    def _emit_event(self) -> Callable[[int], cpp.Stmt]:
        return lambda index: cpp.Assign(
            cpp.FieldAccess(cpp.Var("m"), "pending"), cpp.IntLit(index))

    def _behavior_fn(self, behavior: Behavior) -> Optional[str]:
        """Shared function implementing one behavior (deduplicated)."""
        if not behavior:
            return None
        if behavior in self._behavior_fns:
            return self._behavior_fns[behavior]
        name = f"{self.cls_name}_beh_{len(self._behavior_fns)}"
        body = cpp.Block()
        for stmt in behavior_to_cpp(behavior, self._holder(),
                                    self._emit_event(), self.machine):
            body.add(stmt)
        self._behavior_fns[behavior] = name
        self._behavior_decls.append(cpp.Function(
            name, [cpp.Param("m", self.machine_ptr)], VOID, body))
        return name

    def _pool_slice(self, fns: Tuple[str, ...]) -> Tuple[int, int]:
        """Allocate (or reuse) a pool slice for an action sequence."""
        if not fns:
            return (0, 0)
        if fns in self._pool_slices:
            return (self._pool_slices[fns], len(fns))
        start = len(self._pool)
        self._pool_slices[fns] = start
        self._pool.extend(fns)
        return (start, len(fns))

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def _build_row(self, index: int, tr: FlatTransition
                   ) -> Tuple[int, int, Optional[str], int, int, int]:
        """Returns (state, event_id, guard_fn, start, count, target)."""
        event_id = (COMPLETION_EVENT if tr.trigger is None
                    else event_index(self.machine, tr.trigger))
        guard_name: Optional[str] = None
        if tr.guard is not None:
            guard_name = f"{self.cls_name}_grd_{index}"
            body = cpp.Block([cpp.Return(
                guard_to_cpp(tr.guard, self._holder()))])
            self._guard_fns.append(cpp.Function(
                guard_name, [cpp.Param("m", self.machine_ptr)], INT, body))
        fns = tuple(fn for fn in (self._behavior_fn(b) for b in tr.actions)
                    if fn is not None)
        start, count = self._pool_slice(fns)
        return (tr.source, event_id, guard_name, start, count, tr.target)

    def _row_class(self) -> cpp.ClassDecl:
        cls = cpp.ClassDecl(f"{self.cls_name}_Row")
        cls.fields.append(cpp.Field("state", INT))
        cls.fields.append(cpp.Field("event", INT))
        cls.fields.append(cpp.Field(
            "guard", FuncPtrType(INT, (self.machine_ptr,))))
        cls.fields.append(cpp.Field("action_start", INT))
        cls.fields.append(cpp.Field("action_count", INT))
        cls.fields.append(cpp.Field("target", INT))
        return cls

    def _pool_global(self) -> cpp.GlobalVar:
        pool_type = ArrayType(FuncPtrType(VOID, (self.machine_ptr,)),
                              max(len(self._pool), 1))
        elements: List[cpp.Expr] = [cpp.FuncRef(fn) for fn in self._pool]
        if not elements:
            elements = [cpp.NullPtr()]
        return cpp.GlobalVar(f"{self.cls_name}_actions", pool_type,
                             cpp.ArrayInit(elements), is_const=True)

    def _table_global(self, rows) -> cpp.GlobalVar:
        elements = []
        for state, event_id, guard_name, start, count, target in rows:
            values: List[cpp.Expr] = [
                cpp.IntLit(state), cpp.IntLit(event_id),
                cpp.FuncRef(guard_name) if guard_name else cpp.NullPtr(),
                cpp.IntLit(start), cpp.IntLit(count), cpp.IntLit(target),
            ]
            elements.append(cpp.StructInit(values))
        table_type = ArrayType(ClassRefType(f"{self.cls_name}_Row"),
                               max(len(rows), 1))
        if not elements:
            elements = [cpp.StructInit([cpp.IntLit(-1), cpp.IntLit(-1),
                                        cpp.NullPtr(), cpp.IntLit(0),
                                        cpp.IntLit(0), cpp.IntLit(0)])]
        return cpp.GlobalVar(f"{self.cls_name}_rows", table_type,
                             cpp.ArrayInit(elements), is_const=True)

    # ------------------------------------------------------------------
    # machine class + engine
    # ------------------------------------------------------------------
    def _machine_class(self) -> cpp.ClassDecl:
        cls = cpp.ClassDecl(self.cls_name)
        cls.fields.append(cpp.Field("state", INT))
        cls.fields.append(cpp.Field("pending", INT))
        cls.fields.extend(attribute_fields(self.machine))
        cls.methods.append(self._gen_init())
        cls.methods.append(self._gen_dispatch())
        cls.methods.append(self._gen_run_actions())
        cls.methods.append(self._gen_scan())
        cls.methods.append(self._gen_step())
        cls.methods.append(self._gen_completions())
        cls.methods.append(self._gen_is_final())
        return cls

    def _gen_init(self) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.IntLit(NO_EVENT)))
        for name, init in self.machine.context.attributes.items():
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), name),
                                cpp.IntLit(init)))
        start, count = self._init_slice
        if count:
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.ThisExpr(), self.cls_name, "run_actions",
                (cpp.IntLit(start), cpp.IntLit(count)))))
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "state"),
                            cpp.IntLit(self.flat.initial_leaf)))
        body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), self.cls_name, "completions")))
        return cpp.Method("init", [], VOID, body)

    def _gen_dispatch(self) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.Var("ev")))
        loop = cpp.While(cpp.Binary(
            "!=", cpp.FieldAccess(cpp.ThisExpr(), "pending"),
            cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.VarDecl("e", INT,
                                  cpp.FieldAccess(cpp.ThisExpr(), "pending")))
        loop.body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                                 cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), self.cls_name, "step", (cpp.Var("e"),))))
        body.add(loop)
        return cpp.Method("dispatch", [cpp.Param("ev", INT)], VOID, body)

    def _gen_run_actions(self) -> cpp.Method:
        """``run_actions(start, count)`` — call a pool slice in order."""
        body = cpp.Block()
        body.add(cpp.VarDecl("j", INT, cpp.Var("start")))
        body.add(cpp.VarDecl("end", INT, cpp.Binary(
            "+", cpp.Var("start"), cpp.Var("count"))))
        loop = cpp.While(cpp.Binary("<", cpp.Var("j"), cpp.Var("end")))
        loop.body.add(cpp.ExprStmt(cpp.IndirectCall(
            cpp.Index(cpp.Var(f"{self.cls_name}_actions"), cpp.Var("j")),
            (cpp.ThisExpr(),), FuncPtrType(VOID, (self.machine_ptr,)))))
        loop.body.add(cpp.Assign(cpp.Var("j"), cpp.Binary(
            "+", cpp.Var("j"), cpp.IntLit(1))))
        body.add(loop)
        return cpp.Method("run_actions",
                          [cpp.Param("start", INT), cpp.Param("count", INT)],
                          VOID, body)

    def _row_expr(self, field: str) -> cpp.Expr:
        return cpp.FieldAccess(
            cpp.Index(cpp.Var(f"{self.cls_name}_rows"), cpp.Var("i")), field)

    def _gen_scan(self) -> cpp.Method:
        """``scan(eventId) -> fired`` — the generic table engine."""
        n_rows = max(len(self.flat.transitions), 1)
        body = cpp.Block()
        body.add(cpp.VarDecl("i", INT, cpp.IntLit(0)))
        loop = cpp.While(cpp.Binary("<", cpp.Var("i"), cpp.IntLit(n_rows)))
        match = cpp.Binary(
            "&&",
            cpp.Binary("==", self._row_expr("state"),
                       cpp.FieldAccess(cpp.ThisExpr(), "state")),
            cpp.Binary("==", self._row_expr("event"), cpp.Var("eid")))
        guard_ok = cpp.Binary(
            "||",
            cpp.Binary("==", cpp.Cast(INT, self._row_expr("guard")),
                       cpp.IntLit(0)),
            cpp.IndirectCall(self._row_expr("guard"), (cpp.ThisExpr(),),
                             FuncPtrType(INT, (self.machine_ptr,))))
        fire = cpp.Block([
            cpp.ExprStmt(cpp.MethodCall(
                cpp.ThisExpr(), self.cls_name, "run_actions",
                (self._row_expr("action_start"),
                 self._row_expr("action_count")))),
            cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "state"),
                       self._row_expr("target")),
            cpp.Return(cpp.IntLit(1)),
        ])
        loop.body.add(cpp.If(match, cpp.Block([cpp.If(guard_ok, fire)])))
        loop.body.add(cpp.Assign(cpp.Var("i"),
                                 cpp.Binary("+", cpp.Var("i"), cpp.IntLit(1))))
        body.add(loop)
        body.add(cpp.Return(cpp.IntLit(0)))
        return cpp.Method("scan", [cpp.Param("eid", INT)], INT, body)

    def _gen_step(self) -> cpp.Method:
        body = cpp.Block()
        fired = cpp.MethodCall(cpp.ThisExpr(), self.cls_name, "scan",
                               (cpp.Var("ev"),))
        body.add(cpp.If(fired, cpp.Block([cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), self.cls_name, "completions"))])))
        body.add(cpp.Return())
        return cpp.Method("step", [cpp.Param("ev", INT)], VOID, body)

    def _gen_completions(self) -> cpp.Method:
        body = cpp.Block()
        loop = cpp.While(cpp.MethodCall(
            cpp.ThisExpr(), self.cls_name, "scan",
            (cpp.IntLit(COMPLETION_EVENT),)))
        loop.body = cpp.Block()
        body.add(loop)
        return cpp.Method("completions", [], VOID, body)

    def _gen_is_final(self) -> cpp.Method:
        if self.flat.top_final_leaf is None:
            return cpp.Method("is_final", [], INT,
                              cpp.Block([cpp.Return(cpp.IntLit(0))]))
        cmp = cpp.Binary("==", cpp.FieldAccess(cpp.ThisExpr(), "state"),
                         cpp.IntLit(self.flat.top_final_leaf))
        return cpp.Method("is_final", [], INT,
                          cpp.Block([cpp.Return(cmp)]))
