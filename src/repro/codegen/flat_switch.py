"""Flattened Switch generator: the fourth implementation pattern.

A hybrid of the STT and Nested Switch shapes the embedded literature
also uses: the hierarchy is **flattened at generation time** (the same
:mod:`repro.codegen.flattening` relation the table pattern consumes),
but instead of a data table with a generic scan engine, the generator
emits **one flat two-level switch** — outer case on the leaf
configuration, inner case on the event — with every resolved
transition's full exit/effect/entry sequence inlined into its arm.

Compared to the other patterns:

* unlike Nested Switch there are no submachine classes and no runtime
  hierarchy walk: one class, one state variable over leaf configs;
* unlike STT there is no rodata table and no engine: dispatch is pure
  code, so the compiler's switch lowering (jump table vs compare chain)
  sees the whole machine at once;
* the price is the same action duplication Nested Switch pays, amplified
  by flattening (a row per (leaf, trigger) resolution).

Generated shape for machine ``M``: ``enum M_State`` over leaf configs,
class ``M`` with the context attributes, ``init``/``dispatch``/``step``/
``completions``/``is_final``, and the global instance ``g_M``.
"""

from __future__ import annotations

from typing import Dict, List

from ..cpp import ast as cpp
from ..cpp.types import INT, VOID, ClassRefType
from ..uml.statemachine import StateMachine
from .base import CodeGenerator, GenConfig, NO_EVENT, event_enumerator
from .common import (attribute_fields, behavior_to_cpp, event_enum_decl,
                     extern_decls, guard_to_cpp)
from .flattening import FlatMachine, FlatTransition, flatten_machine

__all__ = ["FlatSwitchGenerator"]


class FlatSwitchGenerator(CodeGenerator):
    """Outer switch on leaf configuration, inner switch on event, all
    action sequences inlined."""

    name = "flat-switch"
    display_name = "Flattened Switch"

    def generate(self, machine: StateMachine) -> cpp.TranslationUnit:
        self.machine = machine
        self.flat: FlatMachine = flatten_machine(machine)
        self.cls_name = self.class_name(machine)
        self.enum_name = f"{self.cls_name}_State"
        unit = cpp.TranslationUnit(f"{machine.name}_flat_switch")
        unit.enums.append(event_enum_decl(machine))
        unit.enums.append(cpp.EnumDecl(
            self.enum_name, [self._leaf_enumerator(leaf.index)
                             for leaf in self.flat.leaves]))
        unit.externs.extend(extern_decls(machine))

        cls = cpp.ClassDecl(self.cls_name)
        cls.fields.append(cpp.Field("state", INT))
        cls.fields.append(cpp.Field("pending", INT))
        cls.fields.extend(attribute_fields(machine))
        cls.methods.append(self._gen_init())
        cls.methods.append(self._gen_dispatch())
        cls.methods.append(self._gen_step())
        cls.methods.append(self._gen_completions())
        cls.methods.append(self._gen_is_final())
        unit.classes.append(cls)
        unit.globals.append(cpp.GlobalVar(
            f"g_{self.cls_name}", ClassRefType(self.cls_name)))
        return unit

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def _leaf_enumerator(self, index: int) -> str:
        name = self.flat.leaves[index].name.replace(".", "_")
        return f"LS_{name}"

    def _leaf_ref(self, index: int) -> cpp.Expr:
        return cpp.EnumRef(self.enum_name, self._leaf_enumerator(index))

    def _emit_event(self, index: int) -> cpp.Stmt:
        return cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                          cpp.IntLit(index))

    def _fire_stmts(self, tr: FlatTransition, body: cpp.Block) -> None:
        """Inline one row: actions, then the state change (non-internal)."""
        for behavior in tr.actions:
            for stmt in behavior_to_cpp(behavior, cpp.ThisExpr,
                                        self._emit_event, self.machine):
                body.add(stmt)
        if not tr.internal:
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "state"),
                                self._leaf_ref(tr.target)))

    def _guarded(self, tr: FlatTransition, inner: cpp.Block) -> cpp.Stmt:
        if tr.guard is None:
            return inner
        return cpp.If(guard_to_cpp(tr.guard, cpp.ThisExpr), inner)

    # ------------------------------------------------------------------
    # methods
    # ------------------------------------------------------------------
    def _gen_init(self) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.IntLit(NO_EVENT)))
        for name, init in self.machine.context.attributes.items():
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), name),
                                cpp.IntLit(init)))
        for behavior in self.flat.initial_actions:
            for stmt in behavior_to_cpp(behavior, cpp.ThisExpr,
                                        self._emit_event, self.machine):
                body.add(stmt)
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "state"),
                            self._leaf_ref(self.flat.initial_leaf)))
        body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), self.cls_name, "completions")))
        return cpp.Method("init", [], VOID, body)

    def _gen_dispatch(self) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.Var("ev")))
        loop = cpp.While(cpp.Binary(
            "!=", cpp.FieldAccess(cpp.ThisExpr(), "pending"),
            cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.VarDecl("e", INT,
                                  cpp.FieldAccess(cpp.ThisExpr(), "pending")))
        loop.body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                                 cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), self.cls_name, "step", (cpp.Var("e"),))))
        body.add(loop)
        return cpp.Method("dispatch", [cpp.Param("ev", INT)], VOID, body)

    def _gen_step(self) -> cpp.Method:
        outer = cpp.Switch(cpp.FieldAccess(cpp.ThisExpr(), "state"))
        for leaf in self.flat.leaves:
            rows = [tr for tr in self.flat.transitions
                    if tr.source == leaf.index and tr.trigger is not None]
            if not rows:
                continue
            arm = cpp.SwitchCase([self._leaf_ref(leaf.index)])
            inner = cpp.Switch(cpp.Var("ev"))
            by_event: Dict[str, List[FlatTransition]] = {}
            for tr in rows:
                by_event.setdefault(tr.trigger, []).append(tr)
            for event_name, trs in by_event.items():
                case = cpp.SwitchCase([cpp.EnumRef(
                    "Event", event_enumerator(event_name))])
                for tr in trs:
                    fire = cpp.Block()
                    self._fire_stmts(tr, fire)
                    if not tr.internal:
                        fire.add(cpp.ExprStmt(cpp.MethodCall(
                            cpp.ThisExpr(), self.cls_name, "completions")))
                    fire.add(cpp.Return(cpp.IntLit(1)))
                    case.body.add(self._guarded(tr, fire))
                inner.cases.append(case)
            arm.body.add(inner)
            outer.cases.append(arm)
        body = cpp.Block([outer, cpp.Return(cpp.IntLit(0))])
        return cpp.Method("step", [cpp.Param("ev", INT)], INT, body)

    def _gen_completions(self) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.VarDecl("again", INT, cpp.IntLit(1)))
        loop = cpp.While(cpp.Var("again"))
        loop.body.add(cpp.Assign(cpp.Var("again"), cpp.IntLit(0)))
        sw = cpp.Switch(cpp.FieldAccess(cpp.ThisExpr(), "state"))
        for leaf in self.flat.leaves:
            rows = [tr for tr in self.flat.transitions
                    if tr.source == leaf.index and tr.trigger is None]
            if not rows:
                continue
            arm = cpp.SwitchCase([self._leaf_ref(leaf.index)])
            for tr in rows:
                fire = cpp.Block()
                self._fire_stmts(tr, fire)
                fire.add(cpp.Assign(cpp.Var("again"), cpp.IntLit(1)))
                arm.body.add(self._guarded(tr, fire))
            sw.cases.append(arm)
        if sw.cases:
            loop.body.add(sw)
            body.add(loop)
        return cpp.Method("completions", [], VOID, body)

    def _gen_is_final(self) -> cpp.Method:
        if self.flat.top_final_leaf is None:
            return cpp.Method("is_final", [], INT,
                              cpp.Block([cpp.Return(cpp.IntLit(0))]))
        cmp = cpp.Binary("==", cpp.FieldAccess(cpp.ThisExpr(), "state"),
                         self._leaf_ref(self.flat.top_final_leaf))
        return cpp.Method("is_final", [], INT,
                          cpp.Block([cpp.Return(cmp)]))
