"""Shared lowering of model behaviors/guards into C++ fragments.

Guards and behaviors reference context attributes (``VarRef``) and opaque
operations (``CallExpr``); the generated C++ stores the attributes as
fields of the machine object, so the translation rewrites attribute
references through an *attribute holder* expression (``this`` in machine
methods, ``m->owner`` in submachine methods, a parameter in table-pattern
thunks).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..cpp import ast as cpp
from ..uml import actions as uact
from ..uml.events import Event
from ..uml.statemachine import StateMachine
from .base import CodegenError, EVENT_ENUM, event_enumerator

__all__ = ["guard_to_cpp", "behavior_to_cpp", "event_enum_decl",
           "extern_decls", "attribute_fields", "event_index"]


def guard_to_cpp(expr: uact.Expr, holder: Callable[[], cpp.Expr]) -> cpp.Expr:
    """Translate a model guard expression to C++.

    *holder* produces a fresh pointer expression to the object carrying
    the context attributes (called per reference so shared AST nodes are
    never aliased).
    """
    if isinstance(expr, uact.IntLit):
        return cpp.IntLit(expr.value)
    if isinstance(expr, uact.BoolLit):
        return cpp.BoolLit(expr.value)
    if isinstance(expr, uact.VarRef):
        return cpp.FieldAccess(holder(), expr.name)
    if isinstance(expr, uact.UnaryOp):
        return cpp.Unary(expr.op, guard_to_cpp(expr.operand, holder))
    if isinstance(expr, uact.BinOp):
        return cpp.Binary(expr.op, guard_to_cpp(expr.lhs, holder),
                          guard_to_cpp(expr.rhs, holder))
    if isinstance(expr, uact.CallExpr):
        return cpp.Call(expr.func,
                        tuple(guard_to_cpp(a, holder) for a in expr.args))
    raise CodegenError(f"cannot translate guard expression {expr!r}")


def behavior_to_cpp(behavior: uact.Behavior, holder: Callable[[], cpp.Expr],
                    emit_event: Optional[Callable[[int], cpp.Stmt]] = None,
                    machine: Optional[StateMachine] = None,
                    ) -> List[cpp.Stmt]:
    """Translate a model behavior into C++ statements.

    ``emit_event(index)`` builds the statement posting an event to self;
    required only when the behavior contains :class:`~repro.uml.EmitStmt`.
    """
    statements: List[cpp.Stmt] = []
    for stmt in behavior.statements:
        if isinstance(stmt, uact.Assign):
            statements.append(cpp.Assign(
                cpp.FieldAccess(holder(), stmt.target),
                guard_to_cpp(stmt.value, holder)))
        elif isinstance(stmt, uact.CallStmt):
            statements.append(cpp.ExprStmt(
                guard_to_cpp(stmt.call, holder)))
        elif isinstance(stmt, uact.EmitStmt):
            if emit_event is None or machine is None:
                raise CodegenError(
                    "behavior emits an event but the pattern provided no "
                    "event-posting hook")
            statements.append(emit_event(event_index(machine,
                                                     stmt.event_name)))
        else:
            raise CodegenError(f"cannot translate statement {stmt!r}")
    return statements


def event_enum_decl(machine: StateMachine) -> cpp.EnumDecl:
    """The ``enum Event`` declaration, in alphabet declaration order."""
    return cpp.EnumDecl(EVENT_ENUM, [event_enumerator(e.name)
                                     for e in machine.events.values()])


def event_index(machine: StateMachine, event_name: str) -> int:
    for i, event in enumerate(machine.events.values()):
        if event.name == event_name:
            return i
    raise CodegenError(f"machine {machine.name!r} has no event "
                       f"{event_name!r}")


def extern_decls(machine: StateMachine) -> List[cpp.ExternFunction]:
    """``extern "C"`` declarations for every context operation."""
    from ..cpp.types import INT
    return [cpp.ExternFunction(op) for op in machine.context.operations]


def attribute_fields(machine: StateMachine) -> List[cpp.Field]:
    """One int field per context attribute (initial values are applied by
    the generated ``init()``)."""
    from ..cpp.types import INT
    return [cpp.Field(name, INT, cpp.IntLit(init))
            for name, init in machine.context.attributes.items()]
