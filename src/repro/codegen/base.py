"""Code generator interface and configuration.

Paper §III.B: "There are number of patterns that may be used to implement
a UML state machine.  Most popular ones are: the State Pattern, the State
Table Transition (STT), and the Nested Switch Case statements."  Each
pattern is one :class:`CodeGenerator` producing a
:class:`~repro.cpp.ast.TranslationUnit` for the same machine under the
same fixed execution semantics.

Shared conventions of all three generators:

* one ``enum Event`` over the machine's alphabet, in declaration order;
* context attributes become ``int`` fields of the machine class;
* opaque operations become ``extern "C"`` functions;
* the public entry points of the generated class are ``init()`` (take the
  initial transition) and ``dispatch(int ev)`` (run-to-completion step);
* ``is_final()`` reports top-region completion;
* completion transitions are evaluated eagerly after every state entry,
  with priority over pooled events — the UML rule the paper's
  optimization relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..cpp import ast as cpp
from ..uml.statemachine import StateMachine

__all__ = ["GenConfig", "CodeGenerator", "CodegenError", "EVENT_ENUM",
           "event_enumerator", "NO_EVENT", "COMPLETION_EVENT"]

EVENT_ENUM = "Event"
#: Sentinel used by generated runtimes for "no pending event".
NO_EVENT = -1
#: Sentinel row-event used by the table pattern for completion rows.
COMPLETION_EVENT = -2


class CodegenError(Exception):
    """Raised when a machine uses a feature the pattern cannot express."""


def event_enumerator(event_name: str) -> str:
    return f"EV_{event_name}"


@dataclass(frozen=True)
class GenConfig:
    """Generation options shared by all patterns."""

    class_prefix: str = ""       # prepended to every generated class name
    emit_is_final: bool = True   # generate the is_final() observer


class CodeGenerator(abc.ABC):
    """One implementation pattern."""

    #: stable identifier used by experiments/benchmarks ("nested-switch",
    #: "state-pattern", "state-table")
    name: str = "abstract"
    #: human-readable pattern name as the paper spells it
    display_name: str = ""

    def __init__(self, config: GenConfig = GenConfig()) -> None:
        self.config = config

    @abc.abstractmethod
    def generate(self, machine: StateMachine) -> cpp.TranslationUnit:
        """Generate the translation unit implementing *machine*."""

    def class_name(self, machine: StateMachine) -> str:
        """Name of the generated machine class."""
        return f"{self.config.class_prefix}{machine.name}"
