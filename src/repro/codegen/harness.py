"""Execution harness for generated machines.

Bridges the three worlds of the reproduction:

* generate C++ from a model (any pattern),
* lower/optimize it with MGCC (any ``-O`` level),
* execute it on the GIMPLE interpreter,

so tests can assert that *the generated, compiled code behaves exactly
like the UML model* — the refactoring guarantee the paper's optimization
claims rest on, extended down to the implementation.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from ..compiler.driver import OptLevel, compile_unit
from ..compiler.frontend.lower import lower_unit, mangle
from ..compiler.gimple.interp import GimpleInterpreter
from ..uml.statemachine import StateMachine
from .base import CodeGenerator
from .common import event_index

__all__ = ["GeneratedMachine", "observable_calls_of_model"]


class GeneratedMachine:
    """One generated machine instance running on the GIMPLE interpreter."""

    def __init__(self, machine: StateMachine, generator: CodeGenerator,
                 level: Optional[OptLevel] = None,
                 externals: Optional[Mapping[str, Callable]] = None) -> None:
        self.model = machine
        self.generator = generator
        self.unit = generator.generate(machine)
        self.cls_name = generator.class_name(machine)
        if level is None or level is OptLevel.O0:
            self.program = lower_unit(self.unit)
        else:
            result = compile_unit(self.unit, level)
            self.program = result.program
        self.interp = GimpleInterpreter(self.program, externals)
        self.instance = f"g_{self.cls_name}"
        self.this = self.interp.address_of(self.instance)
        self.interp.call(mangle(self.cls_name, "init"), (self.this,))

    # ------------------------------------------------------------------
    def dispatch(self, event_name: str) -> None:
        index = event_index(self.model, event_name)
        self.interp.call(mangle(self.cls_name, "dispatch"),
                         (self.this, index))

    def send_all(self, events: Sequence[str]) -> "GeneratedMachine":
        for event in events:
            self.dispatch(event)
        return self

    def is_final(self) -> bool:
        return bool(self.interp.call(mangle(self.cls_name, "is_final"),
                                     (self.this,)))

    @property
    def calls(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """External calls performed so far, in execution order."""
        return list(self.interp.call_log)

    def read_attribute(self, name: str) -> int:
        """Read a context attribute from the machine object's memory."""
        from ..compiler.frontend.lower import ClassLayout, _UnitContext
        ctx = _UnitContext(self.unit)
        layout = ctx.layout(self.cls_name)
        return self.interp.load_word(self.this + layout.offset_of(name))


def observable_calls_of_model(machine: StateMachine,
                              events: Sequence[str]
                              ) -> List[Tuple[str, Tuple[int, ...]]]:
    """Reference call sequence: run the model interpreter on *events* and
    return the opaque calls it performed."""
    from ..exec.adapters import InterpreterExecutor
    from ..exec.protocol import run_scenario
    instance = run_scenario(InterpreterExecutor(), machine, events).inner
    return [(name, args) for name, args in instance.trace.calls()]
