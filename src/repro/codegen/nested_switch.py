"""Nested Switch Case generator (the paper's main measurement pattern).

Paper §III.B: "the Nested Switch Case statements ... is the most commonly
used pattern.  The latter pattern consists in having an outer case
statement that selects the current state and an inner case statement that
selects the appropriate behavior given the type of the received event."

Generated shape for machine ``M``:

* ``enum M_State`` over the top region's states (+ ``ST_FINAL``);
* class ``M`` with the context attributes, the state variable, a pending
  event slot and the nested-switch ``step``; public ``init``/``dispatch``;
* **one submachine class per composite state** ("each composite state has
  a reference to a C++ class that implements the submachine", §III.C),
  generated recursively, holding its own state enum/variable, its nested
  switch, and an ``owner`` pointer back to the root machine for attribute
  access;
* exit/effect/entry sequences are **inlined into every transition arm**
  — the duplication characteristic of this pattern (and the reason the
  paper's nested-switch code is large);
* completion transitions are evaluated by a generated ``completions``
  loop after every entry, implementing the UML priority rule.

Constraints: transitions must not cross region boundaries (UML entry/exit
points would be needed; the paper's models never do this).  Pseudostates
other than initial are not expressible in this pattern.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cpp import ast as cpp
from ..cpp.types import INT, PointerType, ClassRefType, VOID
from ..uml.statemachine import (FinalState, Pseudostate, Region, State,
                                StateMachine)
from ..uml.transitions import Transition, TransitionKind
from .base import (CodeGenerator, CodegenError, GenConfig, NO_EVENT,
                   event_enumerator)
from .common import (attribute_fields, behavior_to_cpp, event_enum_decl,
                     event_index, extern_decls, guard_to_cpp)

__all__ = ["NestedSwitchGenerator"]


def _state_enumerator(state_name: str) -> str:
    return f"ST_{state_name}"

FINAL_ENUMERATOR = "ST_FINAL"


class _RegionPlan:
    """Everything needed to generate one machine class for one region."""

    def __init__(self, cls_name: str, region: Region, is_top: bool) -> None:
        self.cls_name = cls_name
        self.region = region
        self.is_top = is_top
        self.enum_name = f"{cls_name}_State"
        self.states: List[State] = region.states()
        self.has_final = bool(region.final_states())
        self.subplans: Dict[int, "_RegionPlan"] = {}  # state id -> plan

    @property
    def enumerators(self) -> List[str]:
        names = [_state_enumerator(s.name) for s in self.states]
        if self.has_final:
            names.append(FINAL_ENUMERATOR)
        return names


class NestedSwitchGenerator(CodeGenerator):
    """Outer switch on state, inner switch on event."""

    name = "nested-switch"
    display_name = "Nested Switch"

    def generate(self, machine: StateMachine) -> cpp.TranslationUnit:
        self.machine = machine
        self._check_supported(machine)
        unit = cpp.TranslationUnit(f"{machine.name}_nested_switch")
        unit.enums.append(event_enum_decl(machine))
        unit.externs.extend(extern_decls(machine))
        self.root_cls = self.class_name(machine)

        if len(machine.regions) != 1:
            raise CodegenError("nested-switch needs one top region")
        top_plan = self._plan_region(self.root_cls, machine.regions[0], True)
        # Sub classes must be declared before the classes that point at
        # them only for layout of by-value fields; pointers are fine in
        # any order, but we emit innermost-first for readability.
        self._emit_plans_postorder(unit, top_plan)
        return unit

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _check_supported(self, machine: StateMachine) -> None:
        for vertex in machine.all_vertices():
            if isinstance(vertex, Pseudostate) and not vertex.is_initial:
                raise CodegenError(
                    f"nested-switch cannot express pseudostate "
                    f"{vertex.qualified_name} ({vertex.kind.value})")
        for tr in machine.all_transitions():
            src_region = tr.source.container
            dst_region = tr.target.container
            if src_region is not dst_region:
                raise CodegenError(
                    f"nested-switch requires region-local transitions; "
                    f"{tr.describe()} crosses a region boundary")
        for state in machine.all_states():
            if len(state.regions) > 1:
                raise CodegenError("orthogonal regions unsupported")

    def _plan_region(self, cls_name: str, region: Region,
                     is_top: bool) -> _RegionPlan:
        plan = _RegionPlan(cls_name, region, is_top)
        for state in plan.states:
            if state.is_composite:
                sub_cls = f"{cls_name}_{state.name}"
                plan.subplans[state.element_id] = self._plan_region(
                    sub_cls, state.regions[0], False)
        return plan

    def _emit_plans_postorder(self, unit: cpp.TranslationUnit,
                              plan: _RegionPlan) -> None:
        for sub in plan.subplans.values():
            self._emit_plans_postorder(unit, sub)
        self._emit_machine_class(unit, plan)

    # ------------------------------------------------------------------
    # holders
    # ------------------------------------------------------------------
    def _holder(self, plan: _RegionPlan) -> Callable[[], cpp.Expr]:
        """Expression producing the attribute-holding object pointer."""
        if plan.is_top:
            return cpp.ThisExpr
        return lambda: cpp.FieldAccess(cpp.ThisExpr(), "owner")

    def _emit_event(self, plan: _RegionPlan) -> Callable[[int], cpp.Stmt]:
        holder = self._holder(plan)
        return lambda index: cpp.Assign(
            cpp.FieldAccess(holder(), "pending"), cpp.IntLit(index))

    # ------------------------------------------------------------------
    # class emission
    # ------------------------------------------------------------------
    def _emit_machine_class(self, unit: cpp.TranslationUnit,
                            plan: _RegionPlan) -> None:
        unit.enums.append(cpp.EnumDecl(plan.enum_name, plan.enumerators))
        cls = cpp.ClassDecl(plan.cls_name)
        cls.fields.append(cpp.Field("state", INT))
        if plan.is_top:
            cls.fields.append(cpp.Field("pending", INT))
            cls.fields.extend(attribute_fields(self.machine))
        else:
            cls.fields.append(cpp.Field("done", INT))
            cls.fields.append(cpp.Field(
                "owner", PointerType(ClassRefType(self.root_cls))))
        for state in plan.states:
            if state.is_composite:
                sub_cls = plan.subplans[state.element_id].cls_name
                cls.fields.append(cpp.Field(
                    f"sub_{state.name}", PointerType(ClassRefType(sub_cls))))
        if plan.is_top:
            cls.methods.append(self._gen_init(plan))
            cls.methods.append(self._gen_dispatch(plan))
            cls.methods.append(self._gen_step(plan))
            cls.methods.append(self._gen_completions(plan))
            cls.methods.append(self._gen_is_final(plan))
        else:
            cls.methods.append(self._gen_reset(plan))
            cls.methods.append(self._gen_step(plan))
            cls.methods.append(self._gen_completions(plan))
            cls.methods.append(self._gen_exit_all(plan))
        unit.classes.append(cls)
        # One global instance per submachine; the root instance is the
        # user's to define, but we emit one for benchmarks/examples.
        unit.globals.append(cpp.GlobalVar(
            _instance_name(plan.cls_name), ClassRefType(plan.cls_name)))

    # -- sequences ---------------------------------------------------------
    def _entry_stmts(self, plan: _RegionPlan, state: State,
                     body: cpp.Block) -> None:
        holder = self._holder(plan)
        for stmt in behavior_to_cpp(state.entry, holder,
                                    self._emit_event(plan), self.machine):
            body.add(stmt)
        for stmt in behavior_to_cpp(state.do_activity, holder,
                                    self._emit_event(plan), self.machine):
            body.add(stmt)
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "state"),
                            cpp.EnumRef(plan.enum_name,
                                        _state_enumerator(state.name))))
        if state.is_composite:
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.FieldAccess(cpp.ThisExpr(), f"sub_{state.name}"),
                plan.subplans[state.element_id].cls_name, "reset")))

    def _exit_stmts(self, plan: _RegionPlan, state: State,
                    body: cpp.Block) -> None:
        if state.is_composite:
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.FieldAccess(cpp.ThisExpr(), f"sub_{state.name}"),
                plan.subplans[state.element_id].cls_name, "exit_all")))
        holder = self._holder(plan)
        for stmt in behavior_to_cpp(state.exit, holder,
                                    self._emit_event(plan), self.machine):
            body.add(stmt)

    def _effect_stmts(self, plan: _RegionPlan, tr: Transition,
                      body: cpp.Block) -> None:
        for stmt in behavior_to_cpp(tr.effect, self._holder(plan),
                                    self._emit_event(plan), self.machine):
            body.add(stmt)

    def _enter_target(self, plan: _RegionPlan, tr: Transition,
                      body: cpp.Block) -> None:
        target = tr.target
        if isinstance(target, State):
            self._entry_stmts(plan, target, body)
        elif isinstance(target, FinalState):
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "state"),
                                cpp.EnumRef(plan.enum_name,
                                            FINAL_ENUMERATOR)))
            if not plan.is_top:
                body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "done"),
                                    cpp.IntLit(1)))
        else:  # pragma: no cover - rejected in _check_supported
            raise CodegenError(f"cannot enter {target!r}")

    def _transition_arm(self, plan: _RegionPlan, source: State,
                        tr: Transition, body: cpp.Block,
                        completions_after: bool) -> None:
        """Inline exit/effect/entry of one transition into *body*."""
        if tr.kind is TransitionKind.INTERNAL:
            self._effect_stmts(plan, tr, body)
            return
        self._exit_stmts(plan, source, body)
        self._effect_stmts(plan, tr, body)
        self._enter_target(plan, tr, body)
        if completions_after:
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.ThisExpr(), plan.cls_name, "completions")))

    def _guarded(self, plan: _RegionPlan, tr: Transition,
                 inner: cpp.Block) -> cpp.Stmt:
        if tr.guard is None:
            return inner
        return cpp.If(guard_to_cpp(tr.guard, self._holder(plan)), inner)

    # -- methods -------------------------------------------------------------
    def _gen_init(self, plan: _RegionPlan) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.IntLit(NO_EVENT)))
        for name, init in self.machine.context.attributes.items():
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), name),
                                cpp.IntLit(init)))
        self._wire_subs(plan, body, cpp.ThisExpr())
        initial = plan.region.initial
        if initial is None:
            raise CodegenError("top region has no initial pseudostate")
        arc = initial.outgoing()[0]
        self._effect_stmts(plan, arc, body)
        self._enter_target(plan, arc, body)
        body.add(cpp.ExprStmt(cpp.MethodCall(cpp.ThisExpr(), plan.cls_name,
                                             "completions")))
        return cpp.Method("init", [], VOID, body)

    def _wire_subs(self, plan: _RegionPlan, body: cpp.Block,
                   root_expr: cpp.Expr) -> None:
        """Point every composite field at its submachine singleton and
        every submachine's ``owner`` back at the root machine.

        Wiring is static, so ``init`` performs it flatly over the whole
        plan tree: the root's own fields go through ``this``, deeper
        levels through the global singletons.
        """
        def wire(parent: _RegionPlan, parent_expr_factory) -> None:
            for state in parent.states:
                if not state.is_composite:
                    continue
                sub = parent.subplans[state.element_id]
                instance = _instance_name(sub.cls_name)
                body.add(cpp.Assign(
                    cpp.FieldAccess(parent_expr_factory(),
                                    f"sub_{state.name}"),
                    cpp.AddrOf(cpp.Var(instance))))
                body.add(cpp.Assign(
                    cpp.FieldAccess(cpp.Var(instance), "owner"), root_expr))
                wire(sub, lambda inst=instance: cpp.Var(inst))

        wire(plan, cpp.ThisExpr)

    def _gen_dispatch(self, plan: _RegionPlan) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.Var("ev")))
        loop = cpp.While(cpp.Binary("!=",
                                    cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                                    cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.VarDecl("e", INT,
                                  cpp.FieldAccess(cpp.ThisExpr(), "pending")))
        loop.body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                                 cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), plan.cls_name, "step", (cpp.Var("e"),))))
        body.add(loop)
        return cpp.Method("dispatch", [cpp.Param("ev", INT)], VOID, body)

    def _gen_step(self, plan: _RegionPlan) -> cpp.Method:
        outer = cpp.Switch(cpp.FieldAccess(cpp.ThisExpr(), "state"))
        for state in plan.states:
            arm = cpp.SwitchCase([cpp.EnumRef(plan.enum_name,
                                              _state_enumerator(state.name))])
            if state.is_composite:
                sub = plan.subplans[state.element_id]
                handled = cpp.If(
                    cpp.MethodCall(
                        cpp.FieldAccess(cpp.ThisExpr(), f"sub_{state.name}"),
                        sub.cls_name, "step", (cpp.Var("ev"),)),
                    cpp.Block([
                        cpp.If(cpp.FieldAccess(
                            cpp.FieldAccess(cpp.ThisExpr(),
                                            f"sub_{state.name}"), "done"),
                            cpp.Block([cpp.ExprStmt(cpp.MethodCall(
                                cpp.ThisExpr(), plan.cls_name,
                                "completions"))])),
                        cpp.Return(cpp.IntLit(1)),
                    ]))
                arm.body.add(handled)
            inner = cpp.Switch(cpp.Var("ev"))
            by_event: Dict[str, List[Transition]] = {}
            for tr in state.event_transitions():
                for trig in tr.triggers:
                    by_event.setdefault(trig.name, []).append(tr)
            for event_name, trs in by_event.items():
                case = cpp.SwitchCase([cpp.EnumRef(
                    "Event", event_enumerator(event_name))])
                for tr in trs:
                    fire = cpp.Block()
                    self._transition_arm(plan, state, tr, fire,
                                         completions_after=True)
                    fire.add(cpp.Return(cpp.IntLit(1)))
                    case.body.add(self._guarded(plan, tr, fire))
                inner.cases.append(case)
            if inner.cases:
                arm.body.add(inner)
            outer.cases.append(arm)
        if plan.has_final:
            final_arm = cpp.SwitchCase([cpp.EnumRef(plan.enum_name,
                                                    FINAL_ENUMERATOR)])
            outer.cases.append(final_arm)
        body = cpp.Block([outer, cpp.Return(cpp.IntLit(0))])
        return cpp.Method("step", [cpp.Param("ev", INT)], INT, body)

    def _gen_completions(self, plan: _RegionPlan) -> cpp.Method:
        """``while (again) switch (state) { ... }`` over the states that
        own completion transitions."""
        body = cpp.Block()
        body.add(cpp.VarDecl("again", INT, cpp.IntLit(1)))
        loop = cpp.While(cpp.Var("again"))
        loop.body.add(cpp.Assign(cpp.Var("again"), cpp.IntLit(0)))
        sw = cpp.Switch(cpp.FieldAccess(cpp.ThisExpr(), "state"))
        for state in plan.states:
            completions = [t for t in state.completion_transitions()
                           if t.source.container is plan.region]
            if not completions:
                continue
            arm = cpp.SwitchCase([cpp.EnumRef(plan.enum_name,
                                              _state_enumerator(state.name))])
            for tr in completions:
                fire = cpp.Block()
                if state.is_composite:
                    # A composite completes only when its region is done.
                    sub_done = cpp.FieldAccess(
                        cpp.FieldAccess(cpp.ThisExpr(), f"sub_{state.name}"),
                        "done")
                    inner_fire = cpp.Block()
                    self._transition_arm(plan, state, tr, inner_fire,
                                         completions_after=False)
                    inner_fire.add(cpp.Assign(cpp.Var("again"),
                                              cpp.IntLit(1)))
                    guarded: cpp.Stmt = cpp.If(sub_done, inner_fire)
                    if tr.guard is not None:
                        guarded = cpp.If(
                            cpp.Binary("&&", sub_done,
                                       guard_to_cpp(tr.guard,
                                                    self._holder(plan))),
                            inner_fire)
                    arm.body.add(guarded)
                    continue
                self._transition_arm(plan, state, tr, fire,
                                     completions_after=False)
                fire.add(cpp.Assign(cpp.Var("again"), cpp.IntLit(1)))
                arm.body.add(self._guarded(plan, tr, fire))
            sw.cases.append(arm)
        if sw.cases:
            loop.body.add(sw)
            body.add(loop)
        return cpp.Method("completions", [], VOID, body)

    def _gen_is_final(self, plan: _RegionPlan) -> cpp.Method:
        value: cpp.Expr = cpp.IntLit(0)
        if plan.has_final:
            value = cpp.Binary("==",
                               cpp.FieldAccess(cpp.ThisExpr(), "state"),
                               cpp.EnumRef(plan.enum_name, FINAL_ENUMERATOR))
        return cpp.Method("is_final", [], INT,
                          cpp.Block([cpp.Return(value)]))

    # -- submachine-only methods ----------------------------------------------
    def _gen_reset(self, plan: _RegionPlan) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "done"),
                            cpp.IntLit(0)))
        initial = plan.region.initial
        if initial is not None:
            arc = initial.outgoing()[0]
            self._effect_stmts(plan, arc, body)
            self._enter_target(plan, arc, body)
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.ThisExpr(), plan.cls_name, "completions")))
        else:
            # Region without initial: composite behaves as a simple state.
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "done"),
                                cpp.IntLit(1)))
        return cpp.Method("reset", [], VOID, body)

    def _gen_exit_all(self, plan: _RegionPlan) -> cpp.Method:
        sw = cpp.Switch(cpp.FieldAccess(cpp.ThisExpr(), "state"))
        for state in plan.states:
            arm = cpp.SwitchCase([cpp.EnumRef(plan.enum_name,
                                              _state_enumerator(state.name))])
            self._exit_stmts(plan, state, arm.body)
            sw.cases.append(arm)
        return cpp.Method("exit_all", [], VOID, cpp.Block([sw]))


def _instance_name(cls_name: str) -> str:
    return f"g_{cls_name}"
