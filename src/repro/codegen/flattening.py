"""Region flattening: hierarchical machine -> flat transition relation.

The State-Transition-Table pattern in the literature the paper cites
(R.C. Martin's FSM article) describes a *flat* table; table-driven
implementations of hierarchical machines flatten the hierarchy at
generation time.  This module computes that flattening:

* the **leaf configurations** — one per stable configuration the machine
  can rest in: simple states, final states of nested regions, and
  composites whose region has no initial transition;
* for each (leaf, trigger) the **resolved transition** found by UML's
  innermost-first lookup along the leaf's ancestor chain;
* the full **action sequence** of each resolved transition: exit
  behaviors innermost-out up to the LCA, the transition effect, then
  entry behaviors (and initial-transition effects) outside-in down to
  the target leaf;
* **completion rows** for leaves whose configuration completes a
  composite (finals of nested regions) or that own completion
  transitions directly.

The result is consumed by the STT generator; it is also a reusable
analysis (the sweep benchmarks use it to count table rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..uml.actions import Behavior, Expr
from ..uml.elements import ModelError
from ..uml.statemachine import (FinalState, Pseudostate, Region, State,
                                StateMachine, Vertex)
from ..uml.transitions import Transition, TransitionKind
from .base import CodegenError

__all__ = ["LeafConfig", "FlatTransition", "FlatMachine", "flatten_machine"]


@dataclass(frozen=True)
class LeafConfig:
    """One stable configuration, identified by its innermost vertex."""

    index: int
    name: str            # unique flat name, e.g. "S3.S31" or "S3.final"
    vertex_kind: str     # "state" | "final" | "top-final"
    active_states: Tuple[str, ...]  # active state names, outermost first


@dataclass(frozen=True)
class FlatTransition:
    """One row of the flattened relation."""

    source: int                     # leaf index
    trigger: Optional[str]          # event name; None = completion row
    guard: Optional[Expr]
    actions: Tuple[Behavior, ...]   # exits, effect, entries - in order
    target: int                     # leaf index
    internal: bool = False          # internal transition: actions only
    description: str = ""


@dataclass
class FlatMachine:
    """The flattening result."""

    machine: StateMachine
    leaves: List[LeafConfig] = field(default_factory=list)
    transitions: List[FlatTransition] = field(default_factory=list)
    initial_leaf: int = 0
    initial_actions: Tuple[Behavior, ...] = ()
    top_final_leaf: Optional[int] = None

    def leaf_by_name(self, name: str) -> LeafConfig:
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf
        raise KeyError(f"no leaf {name!r}")

    def rows_from(self, leaf_index: int) -> List[FlatTransition]:
        return [t for t in self.transitions if t.source == leaf_index]


class _Flattener:
    def __init__(self, machine: StateMachine) -> None:
        self.machine = machine
        self.flat = FlatMachine(machine)
        self._leaf_of_vertex: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> FlatMachine:
        if len(self.machine.regions) != 1:
            raise CodegenError("flattening supports a single top region")
        for state in self.machine.all_states():
            if len(state.regions) > 1:
                raise CodegenError(
                    f"orthogonal regions unsupported ({state.label})")
            if state.do_activity:
                # Do-activities are carried in the metamodel but the
                # generated runtimes treat them as instantaneous; they are
                # appended to the entry behavior during flattening.
                pass
        self._collect_leaves()
        top = self.machine.regions[0]
        initial = top.initial
        if initial is None:
            raise CodegenError("machine has no initial pseudostate")
        arc = initial.outgoing()[0]
        actions, leaf = self._entry_chain_from_transition(arc, [])
        self.flat.initial_leaf = leaf
        self.flat.initial_actions = tuple(actions)
        self._collect_transitions()
        return self.flat

    # ------------------------------------------------------------------
    def _add_leaf(self, vertex: Vertex, kind: str) -> int:
        path = self._path_name(vertex)
        actives = tuple(s.name for s in self._active_chain(vertex))
        leaf = LeafConfig(len(self.flat.leaves), path, kind, actives)
        self.flat.leaves.append(leaf)
        self._leaf_of_vertex[vertex.element_id] = leaf.index
        return leaf.index

    @staticmethod
    def _path_name(vertex: Vertex) -> str:
        parts = [vertex.name or "final"]
        for anc in vertex.owner_chain():
            if isinstance(anc, State):
                parts.append(anc.name)
        return ".".join(reversed(parts))

    @staticmethod
    def _active_chain(vertex: Vertex) -> List[State]:
        chain = [anc for anc in vertex.owner_chain()
                 if isinstance(anc, State)]
        chain.reverse()
        if isinstance(vertex, State):
            chain.append(vertex)
        return chain

    def _collect_leaves(self) -> None:
        for vertex in self.machine.all_vertices():
            if isinstance(vertex, State):
                region = vertex.regions[0] if vertex.regions else None
                if region is None or region.initial is None:
                    self._add_leaf(vertex, "state")
            elif isinstance(vertex, FinalState):
                owner = vertex.container.owner if vertex.container else None
                if isinstance(owner, StateMachine):
                    idx = self._add_leaf(vertex, "top-final")
                    self.flat.top_final_leaf = idx
                else:
                    self._add_leaf(vertex, "final")

    # ------------------------------------------------------------------
    # entry chains
    # ------------------------------------------------------------------
    def _entry_chain_from_transition(
            self, transition: Transition,
            already_active: Sequence[State]) -> Tuple[List[Behavior], int]:
        """Actions + final leaf for taking *transition* (effect, entries,
        default entries, resolving pseudostate chains)."""
        actions: List[Behavior] = []
        if transition.effect:
            actions.append(transition.effect)
        return self._enter_vertex(transition.target, list(already_active),
                                  actions)

    def _enter_vertex(self, target: Vertex, active: List[State],
                      actions: List[Behavior]) -> Tuple[List[Behavior], int]:
        if isinstance(target, State):
            chain = self._active_chain(target)
            active_ids = {s.element_id for s in active}
            for state in chain:
                if state.element_id in active_ids:
                    continue
                if state.entry:
                    actions.append(state.entry)
                if state.do_activity:
                    actions.append(state.do_activity)
                active.append(state)
                active_ids.add(state.element_id)
            region = target.regions[0] if target.regions else None
            if region is not None and region.initial is not None:
                arc = region.initial.outgoing()[0]
                if arc.effect:
                    actions.append(arc.effect)
                return self._enter_vertex(arc.target, active, actions)
            return actions, self._leaf_of_vertex[target.element_id]
        if isinstance(target, FinalState):
            # Entering a nested final exits nothing further; the leaf
            # represents "composite with completed region".
            chain = self._active_chain(target)
            active_ids = {s.element_id for s in active}
            for state in chain:
                if state.element_id not in active_ids:
                    if state.entry:
                        actions.append(state.entry)
                    active.append(state)
                    active_ids.add(state.element_id)
            return actions, self._leaf_of_vertex[target.element_id]
        if isinstance(target, Pseudostate):
            raise CodegenError(
                f"flattening does not support transitions through "
                f"pseudostate {target.qualified_name!r} (kind "
                f"{target.kind.value}); generate from a model without "
                "choice/junction/history or use the nested-switch or "
                "state patterns")
        raise CodegenError(f"cannot enter vertex {target!r}")

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def _collect_transitions(self) -> None:
        for leaf in self.flat.leaves:
            if leaf.vertex_kind == "top-final":
                continue
            vertex = self._vertex_of_leaf(leaf)
            chain = self._dispatch_chain(vertex)
            self._event_rows(leaf, vertex, chain)
            self._completion_rows(leaf, vertex, chain)

    def _vertex_of_leaf(self, leaf: LeafConfig) -> Vertex:
        for vertex in self.machine.all_vertices():
            if self._leaf_of_vertex.get(vertex.element_id) == leaf.index:
                return vertex
        raise ModelError(f"no vertex for leaf {leaf.name}")  # pragma: no cover

    @staticmethod
    def _dispatch_chain(vertex: Vertex) -> List[State]:
        """States whose transitions can fire in this configuration,
        innermost first (the UML conflict-resolution order)."""
        chain: List[State] = []
        if isinstance(vertex, State):
            chain.append(vertex)
        for anc in vertex.owner_chain():
            if isinstance(anc, State):
                chain.append(anc)
        return chain

    def _event_rows(self, leaf: LeafConfig, vertex: Vertex,
                    chain: List[State]) -> None:
        # Innermost-first: once an inner state handles (event, guard
        # unconditionally true), outer rows for that event are shadowed.
        # We emit rows in priority order; the generated engine scans in
        # table order, which reproduces the same resolution.
        for depth, state in enumerate(chain):
            for tr in state.event_transitions():
                for trig in tr.triggers:
                    self._emit_row(leaf, vertex, chain, depth, state, tr,
                                   trig.name)

    def _completion_rows(self, leaf: LeafConfig, vertex: Vertex,
                         chain: List[State]) -> None:
        # A completion row applies to the state that is "complete" in this
        # configuration: the leaf itself when it is a simple state (or an
        # initial-less composite), or the region owner when the leaf is a
        # nested final state.
        if isinstance(vertex, State):
            completing: Optional[State] = vertex
        else:
            owner = vertex.container.owner if vertex.container else None
            completing = owner if isinstance(owner, State) else None
        if completing is None:
            return
        for tr in completing.completion_transitions():
            depth = next(i for i, s in enumerate(chain)
                         if s is completing) if completing in chain else 0
            self._emit_row(leaf, vertex, chain, depth, completing, tr, None)

    def _emit_row(self, leaf: LeafConfig, vertex: Vertex,
                  chain: List[State], depth: int, source_state: State,
                  tr: Transition, trigger: Optional[str]) -> None:
        if tr.kind is TransitionKind.INTERNAL:
            actions = [tr.effect] if tr.effect else []
            self.flat.transitions.append(FlatTransition(
                source=leaf.index, trigger=trigger, guard=tr.guard,
                actions=tuple(actions), target=leaf.index, internal=True,
                description=f"{leaf.name}: {tr.describe()} (internal)"))
            return
        # Exits: from the innermost active state out to (and including)
        # the transition's source level; then continue to the LCA of the
        # target.
        exit_states = list(chain[:depth + 1])
        target_active = {s.element_id
                         for s in self._active_chain(tr.target)[:-1]} \
            if isinstance(tr.target, State) else {
                s.element_id for s in self._active_chain(tr.target)}
        # Extend exits past the source level while the remaining active
        # chain is not an ancestor of the target.
        for state in chain[depth + 1:]:
            if state.element_id in target_active:
                break
            exit_states.append(state)
        actions: List[Behavior] = []
        for state in exit_states:
            if state.exit:
                actions.append(state.exit)
        remaining = [s for s in reversed(chain) if s not in exit_states]
        entry_actions, target_leaf = self._entry_chain_from_transition(
            tr, remaining)
        actions.extend(entry_actions)
        self.flat.transitions.append(FlatTransition(
            source=leaf.index, trigger=trigger, guard=tr.guard,
            actions=tuple(actions), target=target_leaf,
            description=f"{leaf.name}: {tr.describe()}"))


def flatten_machine(machine: StateMachine) -> FlatMachine:
    """Flatten *machine* into a leaf-configuration transition relation."""
    return _Flattener(machine).run()
