"""State Pattern generator (Gamma et al., the paper's reference [8]).

"Each state is implemented as a whole class" (§III.B).  Generated shape
for machine ``M``:

* abstract base ``M_State`` with virtual ``handle(M*, int ev) -> int``,
  ``entry(M*)``, ``exit_(M*)`` and ``completion(M*) -> int``;
* one concrete class per state overriding those methods, plus one global
  singleton instance per class (embedded style: no heap);
* the machine class ``M`` holds ``M_State* current`` plus the context
  attributes and delegates: ``dispatch`` → ``current->handle`` through
  the vtable;
* completion transitions live in each state's ``completion`` override;
  the machine loops ``while (current->completion(this))`` after entries —
  UML completion priority;
* **composite states** get a submachine: their class carries a reference
  to a nested machine object with its own state classes ("each composite
  state has a reference to a C++ class that implements the submachine"),
  delegating events inner-first.

Every handler is reachable through a vtable, so MGCC (like GCC) must keep
all of them: address-taken functions are roots for dead-code elimination.
This is why the paper's biggest optimization rate (52.5 %) appears in
this pattern — only the model level can delete a state class.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cpp import ast as cpp
from ..cpp.types import INT, PointerType, ClassRefType, VOID
from ..uml.statemachine import (FinalState, Pseudostate, Region, State,
                                StateMachine)
from ..uml.transitions import Transition, TransitionKind
from .base import (CodeGenerator, CodegenError, GenConfig, NO_EVENT,
                   event_enumerator)
from .common import (attribute_fields, behavior_to_cpp, event_enum_decl,
                     extern_decls, guard_to_cpp)

__all__ = ["StatePatternGenerator"]


class _MachinePlan:
    """One machine class + its state classes, for one region."""

    def __init__(self, cls_name: str, region: Region, is_top: bool) -> None:
        self.cls_name = cls_name
        self.region = region
        self.is_top = is_top
        self.base_cls = f"{cls_name}_State"
        self.states: List[State] = region.states()
        self.has_final = bool(region.final_states())
        self.subplans: Dict[int, "_MachinePlan"] = {}

    def state_cls(self, state: State) -> str:
        return f"{self.cls_name}_{state.name}"

    @property
    def final_cls(self) -> str:
        return f"{self.cls_name}_Final"


class StatePatternGenerator(CodeGenerator):
    """One class per state, virtual dispatch through a vtable."""

    name = "state-pattern"
    display_name = "State Pattern"

    def generate(self, machine: StateMachine) -> cpp.TranslationUnit:
        self.machine = machine
        self._check_supported(machine)
        unit = cpp.TranslationUnit(f"{machine.name}_state_pattern")
        unit.enums.append(event_enum_decl(machine))
        unit.externs.extend(extern_decls(machine))
        self.root_cls = self.class_name(machine)
        top_plan = self._plan(self.root_cls, machine.regions[0], True)
        self._emit_postorder(unit, top_plan)
        return unit

    def _check_supported(self, machine: StateMachine) -> None:
        for vertex in machine.all_vertices():
            if isinstance(vertex, Pseudostate) and not vertex.is_initial:
                raise CodegenError(
                    f"state-pattern cannot express pseudostate "
                    f"{vertex.qualified_name} ({vertex.kind.value})")
        for tr in machine.all_transitions():
            if tr.source.container is not tr.target.container:
                raise CodegenError(
                    f"state-pattern requires region-local transitions; "
                    f"{tr.describe()} crosses a region boundary")
        for state in machine.all_states():
            if len(state.regions) > 1:
                raise CodegenError("orthogonal regions unsupported")
        if len(machine.regions) != 1:
            raise CodegenError("state-pattern needs one top region")

    def _plan(self, cls_name: str, region: Region,
              is_top: bool) -> _MachinePlan:
        plan = _MachinePlan(cls_name, region, is_top)
        for state in plan.states:
            if state.is_composite:
                plan.subplans[state.element_id] = self._plan(
                    f"{cls_name}_{state.name}Sub", state.regions[0], False)
        return plan

    def _emit_postorder(self, unit: cpp.TranslationUnit,
                        plan: _MachinePlan) -> None:
        for sub in plan.subplans.values():
            self._emit_postorder(unit, sub)
        self._emit_plan(unit, plan)

    # ------------------------------------------------------------------
    def _holder(self, plan: _MachinePlan) -> Callable[[], cpp.Expr]:
        """Attribute holder inside *state-class* methods: parameter ``m``
        (top machine) or ``m->owner`` (submachine)."""
        if plan.is_top:
            return lambda: cpp.Var("m")
        return lambda: cpp.FieldAccess(cpp.Var("m"), "owner")

    def _emit_event(self, plan: _MachinePlan) -> Callable[[int], cpp.Stmt]:
        holder = self._holder(plan)
        return lambda index: cpp.Assign(
            cpp.FieldAccess(holder(), "pending"), cpp.IntLit(index))

    def _machine_ptr(self, plan: _MachinePlan):
        return PointerType(ClassRefType(plan.cls_name))

    # ------------------------------------------------------------------
    def _emit_plan(self, unit: cpp.TranslationUnit,
                   plan: _MachinePlan) -> None:
        self._emit_state_base(unit, plan)
        for state in plan.states:
            self._emit_state_class(unit, plan, state)
        if plan.has_final:
            self._emit_final_class(unit, plan)
        self._emit_machine_class(unit, plan)

    def _emit_state_base(self, unit: cpp.TranslationUnit,
                         plan: _MachinePlan) -> None:
        base = cpp.ClassDecl(plan.base_cls)
        m = cpp.Param("m", self._machine_ptr(plan))
        # Default implementations: unhandled event, no actions, never
        # completes.  Concrete states override what they use.
        base.methods.append(cpp.Method(
            "handle", [m, cpp.Param("ev", INT)], INT,
            cpp.Block([cpp.Return(cpp.IntLit(0))]), is_virtual=True))
        base.methods.append(cpp.Method(
            "entry", [m], VOID, cpp.Block(), is_virtual=True))
        base.methods.append(cpp.Method(
            "exit_", [m], VOID, cpp.Block(), is_virtual=True))
        base.methods.append(cpp.Method(
            "completion", [m], INT,
            cpp.Block([cpp.Return(cpp.IntLit(0))]), is_virtual=True))
        unit.classes.append(base)

    # -- transition bodies --------------------------------------------------
    def _set_state(self, plan: _MachinePlan, target_cls: str,
                   body: cpp.Block) -> None:
        body.add(cpp.Assign(
            cpp.FieldAccess(cpp.Var("m"), "current"),
            cpp.Cast(PointerType(ClassRefType(plan.base_cls)),
                     cpp.AddrOf(cpp.Var(_singleton(target_cls))))))

    def _transition_body(self, plan: _MachinePlan, source: State,
                         tr: Transition) -> cpp.Block:
        """exit; effect; retarget; entry; completions — inlined."""
        body = cpp.Block()
        holder = self._holder(plan)
        emit = self._emit_event(plan)
        if tr.kind is TransitionKind.INTERNAL:
            for stmt in behavior_to_cpp(tr.effect, holder, emit,
                                        self.machine):
                body.add(stmt)
            body.add(cpp.Return(cpp.IntLit(1)))
            return body
        # exit self (virtual not needed: we are inside the class)
        body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.FieldAccess(cpp.Var("m"), "current"), plan.base_cls,
            "exit_", (cpp.Var("m"),), virtual_dispatch=True)))
        for stmt in behavior_to_cpp(tr.effect, holder, emit, self.machine):
            body.add(stmt)
        target = tr.target
        if isinstance(target, State):
            target_cls = plan.state_cls(target)
            self._set_state(plan, target_cls, body)
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.FieldAccess(cpp.Var("m"), "current"), plan.base_cls,
                "entry", (cpp.Var("m"),), virtual_dispatch=True)))
        elif isinstance(target, FinalState):
            self._set_state(plan, plan.final_cls, body)
            if not plan.is_top:
                body.add(cpp.Assign(cpp.FieldAccess(cpp.Var("m"), "done"),
                                    cpp.IntLit(1)))
        body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.Var("m"), plan.cls_name, "run_completions")))
        body.add(cpp.Return(cpp.IntLit(1)))
        return body

    # -- state classes --------------------------------------------------------
    def _emit_state_class(self, unit: cpp.TranslationUnit,
                          plan: _MachinePlan, state: State) -> None:
        cls = cpp.ClassDecl(plan.state_cls(state), base=plan.base_cls)
        m = cpp.Param("m", self._machine_ptr(plan))
        holder = self._holder(plan)
        emit = self._emit_event(plan)

        # entry(): entry actions (+ submachine reset for composites).
        entry_body = cpp.Block()
        for stmt in behavior_to_cpp(state.entry, holder, emit, self.machine):
            entry_body.add(stmt)
        for stmt in behavior_to_cpp(state.do_activity, holder, emit,
                                    self.machine):
            entry_body.add(stmt)
        if state.is_composite:
            sub = plan.subplans[state.element_id]
            entry_body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.FieldAccess(cpp.Var("m"), f"sub_{state.name}"),
                sub.cls_name, "reset")))
        if entry_body.statements:
            cls.methods.append(cpp.Method("entry", [m], VOID, entry_body,
                                          is_virtual=True, is_override=True))

        # exit_(): submachine unwind + exit actions.
        exit_body = cpp.Block()
        if state.is_composite:
            sub = plan.subplans[state.element_id]
            exit_body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.FieldAccess(cpp.Var("m"), f"sub_{state.name}"),
                sub.cls_name, "exit_current")))
        for stmt in behavior_to_cpp(state.exit, holder, emit, self.machine):
            exit_body.add(stmt)
        if exit_body.statements:
            cls.methods.append(cpp.Method("exit_", [m], VOID, exit_body,
                                          is_virtual=True, is_override=True))

        # handle(): composite delegates inner-first, then own switch.
        handle_body = cpp.Block()
        if state.is_composite:
            sub = plan.subplans[state.element_id]
            handled = cpp.If(
                cpp.MethodCall(cpp.FieldAccess(cpp.Var("m"),
                                               f"sub_{state.name}"),
                               sub.cls_name, "dispatch", (cpp.Var("ev"),)),
                cpp.Block([
                    cpp.If(cpp.FieldAccess(
                        cpp.FieldAccess(cpp.Var("m"), f"sub_{state.name}"),
                        "done"),
                        cpp.Block([cpp.ExprStmt(cpp.MethodCall(
                            cpp.Var("m"), plan.cls_name,
                            "run_completions"))])),
                    cpp.Return(cpp.IntLit(1)),
                ]))
            handle_body.add(handled)
        by_event: Dict[str, List[Transition]] = {}
        for tr in state.event_transitions():
            for trig in tr.triggers:
                by_event.setdefault(trig.name, []).append(tr)
        if by_event:
            sw = cpp.Switch(cpp.Var("ev"))
            for event_name, trs in by_event.items():
                case = cpp.SwitchCase([cpp.EnumRef(
                    "Event", event_enumerator(event_name))])
                for tr in trs:
                    fire = self._transition_body(plan, state, tr)
                    if tr.guard is None:
                        case.body.add(fire)
                    else:
                        case.body.add(cpp.If(
                            guard_to_cpp(tr.guard, holder), fire))
                sw.cases.append(case)
            handle_body.add(sw)
        handle_body.add(cpp.Return(cpp.IntLit(0)))
        cls.methods.append(cpp.Method(
            "handle", [m, cpp.Param("ev", INT)], INT, handle_body,
            is_virtual=True, is_override=True))

        # completion(): fires this state's completion transitions.
        completions = state.completion_transitions()
        if completions:
            comp_body = cpp.Block()
            for tr in completions:
                fire = self._transition_body(plan, state, tr)
                cond: Optional[cpp.Expr] = None
                if state.is_composite:
                    cond = cpp.FieldAccess(
                        cpp.FieldAccess(cpp.Var("m"), f"sub_{state.name}"),
                        "done")
                if tr.guard is not None:
                    guard = guard_to_cpp(tr.guard, holder)
                    cond = guard if cond is None else cpp.Binary("&&", cond,
                                                                 guard)
                comp_body.add(fire if cond is None else cpp.If(cond, fire))
            comp_body.add(cpp.Return(cpp.IntLit(0)))
            cls.methods.append(cpp.Method(
                "completion", [m], INT, comp_body,
                is_virtual=True, is_override=True))
        unit.classes.append(cls)
        unit.globals.append(cpp.GlobalVar(
            _singleton(cls.name), ClassRefType(cls.name)))

    def _emit_final_class(self, unit: cpp.TranslationUnit,
                          plan: _MachinePlan) -> None:
        cls = cpp.ClassDecl(plan.final_cls, base=plan.base_cls)
        unit.classes.append(cls)
        unit.globals.append(cpp.GlobalVar(
            _singleton(cls.name), ClassRefType(cls.name)))

    # -- machine class ----------------------------------------------------------
    def _emit_machine_class(self, unit: cpp.TranslationUnit,
                            plan: _MachinePlan) -> None:
        cls = cpp.ClassDecl(plan.cls_name)
        cls.fields.append(cpp.Field(
            "current", PointerType(ClassRefType(plan.base_cls))))
        if plan.is_top:
            cls.fields.append(cpp.Field("pending", INT))
            cls.fields.extend(attribute_fields(self.machine))
        else:
            cls.fields.append(cpp.Field("done", INT))
            cls.fields.append(cpp.Field(
                "owner", PointerType(ClassRefType(self.root_cls))))
        for state in plan.states:
            if state.is_composite:
                sub = plan.subplans[state.element_id]
                cls.fields.append(cpp.Field(
                    f"sub_{state.name}",
                    PointerType(ClassRefType(sub.cls_name))))

        if plan.is_top:
            cls.methods.append(self._gen_init(plan))
            cls.methods.append(self._gen_top_dispatch(plan))
            cls.methods.append(self._gen_is_final(plan))
        else:
            cls.methods.append(self._gen_reset(plan))
            cls.methods.append(self._gen_sub_dispatch(plan))
            cls.methods.append(self._gen_exit_current(plan))
        cls.methods.append(self._gen_run_completions(plan))
        unit.classes.append(cls)
        unit.globals.append(cpp.GlobalVar(
            _singleton(plan.cls_name), ClassRefType(plan.cls_name)))

    def _initial_entry(self, plan: _MachinePlan, body: cpp.Block,
                       self_expr: Callable[[], cpp.Expr]) -> None:
        initial = plan.region.initial
        if initial is None:
            if not plan.is_top:
                body.add(cpp.Assign(
                    cpp.FieldAccess(cpp.ThisExpr(), "done"), cpp.IntLit(1)))
            return
        arc = initial.outgoing()[0]
        holder = (cpp.ThisExpr if plan.is_top
                  else (lambda: cpp.FieldAccess(cpp.ThisExpr(), "owner")))
        for stmt in behavior_to_cpp(arc.effect, holder,
                                    None, self.machine):
            body.add(stmt)
        target = arc.target
        if isinstance(target, State):
            target_cls = plan.state_cls(target)
            body.add(cpp.Assign(
                cpp.FieldAccess(cpp.ThisExpr(), "current"),
                cpp.Cast(PointerType(ClassRefType(plan.base_cls)),
                         cpp.AddrOf(cpp.Var(_singleton(target_cls))))))
            body.add(cpp.ExprStmt(cpp.MethodCall(
                cpp.FieldAccess(cpp.ThisExpr(), "current"), plan.base_cls,
                "entry", (self_expr(),), virtual_dispatch=True)))
        elif isinstance(target, FinalState):
            body.add(cpp.Assign(
                cpp.FieldAccess(cpp.ThisExpr(), "current"),
                cpp.Cast(PointerType(ClassRefType(plan.base_cls)),
                         cpp.AddrOf(cpp.Var(_singleton(plan.final_cls))))))
            if not plan.is_top:
                body.add(cpp.Assign(
                    cpp.FieldAccess(cpp.ThisExpr(), "done"), cpp.IntLit(1)))
        body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.ThisExpr(), plan.cls_name, "run_completions")))

    def _gen_init(self, plan: _MachinePlan) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.IntLit(NO_EVENT)))
        for name, init in self.machine.context.attributes.items():
            body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), name),
                                cpp.IntLit(init)))
        self._wire(plan, body)
        self._initial_entry(plan, body, cpp.ThisExpr)
        return cpp.Method("init", [], VOID, body)

    def _wire(self, plan: _MachinePlan, body: cpp.Block) -> None:
        def wire(parent: _MachinePlan, parent_expr_factory) -> None:
            for state in parent.states:
                if not state.is_composite:
                    continue
                sub = parent.subplans[state.element_id]
                instance = _singleton(sub.cls_name)
                body.add(cpp.Assign(
                    cpp.FieldAccess(parent_expr_factory(),
                                    f"sub_{state.name}"),
                    cpp.AddrOf(cpp.Var(instance))))
                body.add(cpp.Assign(
                    cpp.FieldAccess(cpp.Var(instance), "owner"),
                    cpp.ThisExpr()))
                wire(sub, lambda inst=instance: cpp.Var(inst))
        wire(plan, cpp.ThisExpr)

    def _gen_top_dispatch(self, plan: _MachinePlan) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                            cpp.Var("ev")))
        loop = cpp.While(cpp.Binary(
            "!=", cpp.FieldAccess(cpp.ThisExpr(), "pending"),
            cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.VarDecl("e", INT,
                                  cpp.FieldAccess(cpp.ThisExpr(), "pending")))
        loop.body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "pending"),
                                 cpp.IntLit(NO_EVENT)))
        loop.body.add(cpp.ExprStmt(cpp.MethodCall(
            cpp.FieldAccess(cpp.ThisExpr(), "current"), plan.base_cls,
            "handle", (cpp.ThisExpr(), cpp.Var("e")),
            virtual_dispatch=True)))
        body.add(loop)
        return cpp.Method("dispatch", [cpp.Param("ev", INT)], VOID, body)

    def _gen_sub_dispatch(self, plan: _MachinePlan) -> cpp.Method:
        body = cpp.Block([cpp.Return(cpp.MethodCall(
            cpp.FieldAccess(cpp.ThisExpr(), "current"), plan.base_cls,
            "handle", (cpp.ThisExpr(), cpp.Var("ev")),
            virtual_dispatch=True))])
        return cpp.Method("dispatch", [cpp.Param("ev", INT)], INT, body)

    def _gen_run_completions(self, plan: _MachinePlan) -> cpp.Method:
        body = cpp.Block()
        loop = cpp.While(cpp.MethodCall(
            cpp.FieldAccess(cpp.ThisExpr(), "current"), plan.base_cls,
            "completion", (cpp.ThisExpr(),), virtual_dispatch=True))
        loop.body = cpp.Block()
        body.add(loop)
        return cpp.Method("run_completions", [], VOID, body)

    def _gen_reset(self, plan: _MachinePlan) -> cpp.Method:
        body = cpp.Block()
        body.add(cpp.Assign(cpp.FieldAccess(cpp.ThisExpr(), "done"),
                            cpp.IntLit(0)))
        self._initial_entry(plan, body, cpp.ThisExpr)
        return cpp.Method("reset", [], VOID, body)

    def _gen_exit_current(self, plan: _MachinePlan) -> cpp.Method:
        body = cpp.Block([cpp.ExprStmt(cpp.MethodCall(
            cpp.FieldAccess(cpp.ThisExpr(), "current"), plan.base_cls,
            "exit_", (cpp.ThisExpr(),), virtual_dispatch=True))])
        return cpp.Method("exit_current", [], VOID, body)

    def _gen_is_final(self, plan: _MachinePlan) -> cpp.Method:
        if not plan.has_final:
            return cpp.Method("is_final", [], INT,
                              cpp.Block([cpp.Return(cpp.IntLit(0))]))
        cmp = cpp.Binary(
            "==",
            cpp.Cast(INT, cpp.FieldAccess(cpp.ThisExpr(), "current")),
            cpp.Cast(INT, cpp.AddrOf(cpp.Var(_singleton(plan.final_cls)))))
        return cpp.Method("is_final", [], INT,
                          cpp.Block([cpp.Return(cmp)]))


def _singleton(cls_name: str) -> str:
    return f"g_{cls_name}"
