"""Code generators: the paper's three implementation patterns, plus the
flattened-switch hybrid.

Each pattern is a :class:`CodeGenerator` producing a
:class:`repro.cpp.ast.TranslationUnit` for the same machine under the
same fixed execution semantics.  Main public names:
:func:`generator_by_name` (``"state-table"``, ``"nested-switch"``,
``"state-pattern"``, ``"flat-switch"``), the generator classes
themselves, :data:`ALL_GENERATORS` (the paper's three, Table 1 order) /
:data:`ALL_PATTERNS` (all four), the flattening relation
(:func:`flatten_machine` -> :class:`FlatMachine`), and — in
:mod:`.harness` — :class:`~.harness.GeneratedMachine`, which runs
generated code on the GIMPLE interpreter (the instruction-level
counterpart is :mod:`repro.vm`).
"""

from typing import List, Type

from .base import (CodeGenerator, CodegenError, GenConfig, NO_EVENT,
                   COMPLETION_EVENT, EVENT_ENUM, event_enumerator)
from .common import event_index
from .flat_switch import FlatSwitchGenerator
from .flattening import (FlatMachine, FlatTransition, LeafConfig,
                         flatten_machine)
from .nested_switch import NestedSwitchGenerator
from .state_pattern import StatePatternGenerator
from .state_table import StateTableGenerator

__all__ = [
    "CodeGenerator", "CodegenError", "GenConfig", "NO_EVENT",
    "COMPLETION_EVENT", "EVENT_ENUM", "event_enumerator", "event_index",
    "FlatMachine", "FlatTransition", "LeafConfig", "flatten_machine",
    "FlatSwitchGenerator", "NestedSwitchGenerator", "StatePatternGenerator",
    "StateTableGenerator", "ALL_GENERATORS", "ALL_PATTERNS",
    "generator_by_name",
]

#: The three patterns of the paper's Table 1, in its row order (the
#: experiment harnesses that reproduce the paper iterate these).
ALL_GENERATORS: List[Type[CodeGenerator]] = [
    StateTableGenerator,
    NestedSwitchGenerator,
    StatePatternGenerator,
]

#: Every implementation pattern the reproduction ships, including the
#: flattened-switch hybrid that goes beyond the paper's three.
ALL_PATTERNS: List[Type[CodeGenerator]] = ALL_GENERATORS + [
    FlatSwitchGenerator,
]


def generator_by_name(name: str, config: GenConfig = GenConfig()
                      ) -> CodeGenerator:
    """Instantiate a generator by its stable name."""
    for gen_cls in ALL_PATTERNS:
        if gen_cls.name == name:
            return gen_cls(config)
    raise KeyError(f"unknown generator {name!r}; available: "
                   f"{[g.name for g in ALL_PATTERNS]}")
