"""Incremental structure-sharing compilation: units, hashes, relink.

The monolithic pipeline (:func:`repro.compiler.driver.compile_program`)
recompiles a whole translation unit from cold whenever *anything* in it
changed.  This module refactors that pipeline into a DAG of
**compilation units** — one per lowered GIMPLE function, i.e. one per
action body, per state event-handler, per dispatch skeleton — so a
machine that shares 95 % of its structure with an already-compiled one
only recompiles the changed handlers and **relinks**:

* :func:`split_units` partitions a lowered :class:`Program` into units
  and computes each unit's **content fingerprint**: a digest over the
  unit's own canonical IR dump *plus* the dumps of its transitive
  direct-call closure (in program order), the optimization level, the
  resolved target, the codegen pattern and the repo schema stamp.  The
  closure is part of the hash because inlining (the middle end's only
  cross-function pass) clones callee bodies into callers: a unit's
  compiled output is a pure function of exactly these inputs.  Indirect
  calls (vtable dispatch) are never inlined and therefore never extend
  a closure — which is what keeps the dispatch skeletons of the
  virtual-dispatch patterns independent of their handlers.
* :func:`compile_one_unit` compiles a single unit through the very same
  lower → inline → SSA passes → isel → regalloc → asm-prologue
  pipeline, on a **mini-program** holding deep copies of the unit's
  closure in original program order — the inliner sees exactly the
  bodies (and mutation order) it would see in a whole-program run, so
  the produced RTL is byte-identical.  Pass statistics are attributed
  to the unit function only; summed across units they equal the
  whole-program numbers.
* :func:`link_units` is the **link step**: it reassembles the module
  from per-unit artifacts — functions in program order, the program's
  data objects, then every unit's jump tables in function order — and
  resolves cross-unit symbols (call targets, data references, table
  slots), raising :class:`LinkError` on a dangling reference.  Link
  inputs (globals, vtables, externs) always come from the *current*
  program, never from cached artifacts: a machine whose every unit is
  cache-hot but whose static data changed relinks correctly.
* :func:`compile_program_incremental` ties it together against an
  optional content-addressed unit cache (anything with the
  ``get_or_compute(key, compute)`` contract of
  :class:`repro.engine.cache.CompileCache`).

``capture_dumps`` compiles stay on the monolithic path — per-pass
whole-program IR snapshots are inherently whole-program.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..obs.trace import span as _span
from ..schema import schema_stamp
from .asm import AsmModule
from .driver import (CompileResult, OptLevel, backend_function,
                     inline_policy_for, make_rodata_sink,
                     make_switch_lowering, middle_end_iterations,
                     optimize_function)
from .gimple.ir import (Call, DataObject, GimpleFunction, Program,
                        SymbolRef)
from .passes.inline import run_inline
from .target.description import TargetDescription
from .target.registry import resolve_target

__all__ = ["CompilationUnit", "UnitArtifact", "UnitPlan", "LinkError",
           "split_units", "unit_fingerprint", "compile_one_unit",
           "link_units", "compile_program_incremental", "DeltaStats"]


class LinkError(Exception):
    """A cross-unit symbol did not resolve at link time."""


@dataclass(frozen=True)
class CompilationUnit:
    """One independently-compilable node of the unit DAG.

    ``closure`` is the transitive direct-call closure (unit included),
    ordered by position in the source program — the exact function set
    and relative order the inliner may consult while compiling this
    unit.
    """

    name: str
    fingerprint: str
    closure: Tuple[str, ...]


@dataclass
class UnitArtifact:
    """Everything one unit's compilation produced.

    Stored as a first-class artifact in the content-addressed caches
    (memory, disk store); treat as immutable once published — linked
    modules share these objects.
    """

    name: str
    fingerprint: str
    rtl: object                      # finished RTLFunction
    jump_tables: Tuple[DataObject, ...]
    optimized_fn: GimpleFunction     # post-middle-end GIMPLE
    pass_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class UnitPlan:
    """The unit decomposition of one lowered program."""

    program: Program
    units: List[CompilationUnit]
    level: OptLevel
    target: TargetDescription
    extra_key: str = ""

    def unit(self, name: str) -> CompilationUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise KeyError(f"no unit {name!r}")


@dataclass
class DeltaStats:
    """Unit reuse accounting of one incremental compile."""

    total_units: int = 0
    reused_units: int = 0

    @property
    def compiled_units(self) -> int:
        return self.total_units - self.reused_units

    @property
    def reuse_rate(self) -> float:
        return (self.reused_units / self.total_units
                if self.total_units else 0.0)


# ---------------------------------------------------------------------------
# splitting + hashing
# ---------------------------------------------------------------------------

def _direct_callees(fn: GimpleFunction, defined: Dict[str, GimpleFunction]
                    ) -> List[str]:
    """Names of program functions *fn* calls directly (self excluded;
    externs and indirect calls are not closure edges)."""
    seen: List[str] = []
    for block in fn.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, Call) and instr.callee in defined \
                    and instr.callee != fn.name and instr.callee not in seen:
                seen.append(instr.callee)
    return seen


def _transitive_closure(root: str, edges: Dict[str, List[str]]
                        ) -> List[str]:
    out = [root]
    frontier = list(edges.get(root, ()))
    while frontier:
        name = frontier.pop()
        if name in out:
            continue
        out.append(name)
        frontier.extend(edges.get(name, ()))
    return out


def unit_fingerprint(name: str, closure: Tuple[str, ...],
                     fn_dumps: Dict[str, str], level: OptLevel,
                     target: TargetDescription, extra_key: str = "") -> str:
    """Canonical content hash of one unit.

    Covers the unit's lowered IR, the lowered IR of every closure
    member in program order, the optimization level, the target name,
    the pattern/extra key, and the repo schema stamp — everything that
    determines the unit's compiled bytes, and nothing that doesn't.
    """
    hasher = hashlib.sha256()
    hasher.update(schema_stamp().encode("utf-8"))
    for part in ("unit", name, level.value, target.name, extra_key):
        hasher.update(b"\x00")
        hasher.update(part.encode("utf-8"))
    for member in closure:
        hasher.update(b"\x01")
        hasher.update(member.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(fn_dumps[member].encode("utf-8"))
    return hasher.hexdigest()


def split_units(program: Program, level: OptLevel = OptLevel.OS,
                target: Union[TargetDescription, str, None] = None,
                extra_key: str = "") -> UnitPlan:
    """Partition *program* into compilation units with content hashes.

    Closures only matter when the level inlines (O2/Os) — below that
    every pass is function-local, so units hash over their own body
    alone and reuse survives edits to unrelated siblings even for
    direct-call-heavy patterns.
    """
    tgt = resolve_target(target)
    order = list(program.functions)
    position = {name: i for i, name in enumerate(order)}
    fn_dumps = {name: str(fn) for name, fn in program.functions.items()}
    inlines = level in (OptLevel.O2, OptLevel.OS)
    edges = {name: _direct_callees(fn, program.functions)
             for name, fn in program.functions.items()} if inlines else {}
    units: List[CompilationUnit] = []
    for name in order:
        closure = tuple(sorted(_transitive_closure(name, edges),
                               key=position.__getitem__)) \
            if inlines else (name,)
        units.append(CompilationUnit(
            name=name,
            fingerprint=unit_fingerprint(name, closure, fn_dumps, level,
                                         tgt, extra_key),
            closure=closure))
    return UnitPlan(program=program, units=units, level=level, target=tgt,
                    extra_key=extra_key)


# ---------------------------------------------------------------------------
# per-unit compilation
# ---------------------------------------------------------------------------

def compile_one_unit(program: Program, unit: CompilationUnit,
                     level: OptLevel,
                     target: Union[TargetDescription, str, None] = None,
                     ) -> UnitArtifact:
    """Compile one unit in isolation, byte-identical to its share of a
    whole-program compile.

    The mini-program holds *deep copies* of the closure (the pipeline
    mutates IR in place; *program* stays pristine for the other units),
    in original program order, so the inliner's caller iteration and
    callee mutation sequence match the monolithic run exactly.  After
    the inline phase only the unit's own function is optimized — the
    closure copies exist solely to be cloned *from*.
    """
    sp = _span("unit.compile")
    if sp.recording:
        sp.set(unit=unit.name, closure=len(unit.closure))
    with sp:
        tgt = resolve_target(target)
        mini = Program(program.name)
        mini.externs = list(program.externs)
        for name in unit.closure:
            mini.add_function(copy.deepcopy(program.functions[name]))
        fn = mini.functions[unit.name]

        stats: Dict[str, int] = {}
        if level.optimizes:
            if level in (OptLevel.O2, OptLevel.OS):
                per_caller: Dict[str, int] = {}
                with _span("stage.inline"):
                    run_inline(mini, inline_policy_for(level),
                               per_caller=per_caller)
                stats["inline"] = per_caller.get(unit.name, 0)
            optimize_function(fn, level, stats)

        jump_tables: List[DataObject] = []
        rodata_sink = make_rodata_sink(jump_tables, tgt)
        lowering = make_switch_lowering(level, tgt)
        rtl = backend_function(fn, level, lowering, rodata_sink, tgt, stats)
        return UnitArtifact(name=unit.name, fingerprint=unit.fingerprint,
                            rtl=rtl, jump_tables=tuple(jump_tables),
                            optimized_fn=fn, pass_stats=stats)


# ---------------------------------------------------------------------------
# the link step
# ---------------------------------------------------------------------------

def _merged_stats(program: Program,
                  artifacts: Dict[str, UnitArtifact],
                  level: OptLevel) -> Dict[str, int]:
    """Sum per-unit pass statistics in the monolithic key order."""
    keys: List[str] = []
    if level in (OptLevel.O2, OptLevel.OS):
        keys.append("inline")
    if level.optimizes:
        for i in range(middle_end_iterations(level)):
            suffix = "" if i == 0 else f"#{i + 1}"
            keys.extend(f"{name}{suffix}"
                        for name in ("ccp", "cse", "copyprop", "dce",
                                     "cfg"))
        keys.extend(("fuse", "peephole"))
    merged: Dict[str, int] = {}
    for key in keys:
        merged[key] = sum(artifacts[name].pass_stats.get(key, 0)
                          for name in program.functions)
    return merged


def check_link(module: AsmModule, program: Program) -> None:
    """Resolve every cross-unit symbol; raise :class:`LinkError` on a
    dangling reference.

    Checked references: direct call targets in RTL, and
    :class:`SymbolRef` words in data objects (vtable slots, transition
    tables, jump tables).  The assembler would catch these too, but the
    link step is where a stale artifact or a mismatched data section
    should be diagnosed — before any image exists.
    """
    defined = {fn.name for fn in module.functions}
    defined.update(obj.name for obj in module.data_objects)
    # Function-local labels are addressable as ``fn:block`` (jump-table
    # slots point at case blocks); the RTL spells them ``.fn.block``,
    # the same normalization the assembler's resolver applies.
    for fn in module.functions:
        for instr in fn.instrs:
            if instr.op == "label":
                defined.add(instr.target)
    externs = set(program.externs)

    def resolves(symbol: str) -> bool:
        if symbol in defined or symbol in externs:
            return True
        if ":" in symbol and not symbol.startswith("."):
            fn_name, _, block = symbol.rpartition(":")
            return f".{fn_name}.{block}" in defined
        return False
    for fn in module.functions:
        for instr in fn.instrs:
            if instr.op != "label" and instr.symbol is not None \
                    and not resolves(instr.symbol):
                raise LinkError(
                    f"{fn.name}: {instr.op} references unresolved "
                    f"symbol {instr.symbol!r}")
    for obj in module.data_objects:
        for word in obj.words:
            if isinstance(word, SymbolRef) and not resolves(word.symbol):
                raise LinkError(
                    f"data object {obj.name}: reference to unresolved "
                    f"symbol {word.symbol!r}")


def link_units(program: Program, artifacts: Dict[str, UnitArtifact],
               level: OptLevel,
               target: Union[TargetDescription, str, None] = None,
               ) -> CompileResult:
    """Relink per-unit artifacts into a whole-module
    :class:`CompileResult`, byte-exact against a monolithic compile.

    Functions land in program order; data is the *current* program's
    (never cached — link inputs may change while every unit hits);
    jump tables follow in function order, exactly where the monolithic
    backend loop appends them.
    """
    sp = _span("unit.link")
    if sp.recording:
        sp.set(units=len(artifacts))
    with sp:
        return _link_units(program, artifacts, level, target)


def _link_units(program: Program, artifacts: Dict[str, UnitArtifact],
                level: OptLevel,
                target: Union[TargetDescription, str, None] = None,
                ) -> CompileResult:
    tgt = resolve_target(target)
    missing = [name for name in program.functions if name not in artifacts]
    if missing:
        raise LinkError(f"missing unit artifacts: {missing}")

    module = AsmModule(program.name, target=tgt)
    linked = Program(program.name)
    linked.externs = list(program.externs)
    for obj in program.data.values():
        linked.add_data(obj)
    jump_tables: List[DataObject] = []
    for name in program.functions:
        artifact = artifacts[name]
        module.functions.append(artifact.rtl)
        jump_tables.extend(artifact.jump_tables)
        linked.add_function(artifact.optimized_fn)
    module.data_objects.extend(program.data.values())
    module.data_objects.extend(jump_tables)
    check_link(module, linked)
    return CompileResult(module=module, program=linked, opt_level=level,
                         pass_stats=_merged_stats(program, artifacts,
                                                  level),
                         dumps={}, target=tgt)


# ---------------------------------------------------------------------------
# incremental driver
# ---------------------------------------------------------------------------

def compile_program_incremental(
        program: Program, level: OptLevel = OptLevel.OS,
        target: Union[TargetDescription, str, None] = None,
        unit_cache=None, extra_key: str = "",
        stats_out: Optional[DeltaStats] = None) -> CompileResult:
    """Delta-compile *program*: split into units, fetch cache-hot units,
    compile the misses, relink.

    *unit_cache* is any ``get_or_compute(key, compute)`` provider
    (e.g. :class:`repro.engine.cache.CompileCache` over a memory, disk
    or tiered backend); None compiles every unit.  *stats_out*, when
    given, receives the unit-reuse accounting of this one call.
    """
    tgt = resolve_target(target)
    plan = split_units(program, level=level, target=tgt,
                       extra_key=extra_key)
    artifacts: Dict[str, UnitArtifact] = {}
    for unit in plan.units:
        compiled_here = False

        def compute(unit=unit):
            nonlocal compiled_here
            compiled_here = True
            return compile_one_unit(program, unit, level, tgt)

        if unit_cache is None:
            artifact = compute()
        else:
            artifact = unit_cache.get_or_compute(unit.fingerprint, compute)
            if not isinstance(artifact, UnitArtifact) \
                    or artifact.name != unit.name:
                # A corrupted or colliding cache entry must degrade to a
                # recompile, never to a wrong link.
                artifact = compute()
        artifacts[unit.name] = artifact
        if stats_out is not None:
            stats_out.total_units += 1
            if not compiled_here:
                stats_out.reused_units += 1
    return link_units(program, artifacts, level, target=tgt)
