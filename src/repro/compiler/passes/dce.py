"""Dead code elimination (SSA mark & sweep).

GCC's ``-fdce`` analogue and the pass the paper's §III experiment watches:
*"In the dead code elimination file, we have found that code related to
the unreachable state still exists, which means that GCC did not remove
the dead code."*  The reason is visible right here: the roots of the mark
phase are instructions with observable effects — stores, calls,
terminators.  A ``case`` arm of a runtime ``switch`` contains calls and
stores and its block is CFG-reachable, so nothing in it is dead even when
no execution can ever set the state variable to that case's value.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..gimple.ir import (GimpleFunction, Instr, Phi, Reg)

__all__ = ["run_dce"]


def run_dce(fn: GimpleFunction) -> int:
    """Remove pure instructions whose results are never used.

    Returns the number of instructions removed.
    """
    # Map each SSA name to its defining instruction.
    defs: Dict[Reg, Tuple[str, Instr]] = {}
    for label, block in fn.blocks.items():
        for instr in block.instrs:
            if instr.dst is not None:
                defs[instr.dst] = (label, instr)

    live: Set[int] = set()
    work: List[Instr] = []

    def mark(instr: Instr) -> None:
        if id(instr) in live:
            return
        live.add(id(instr))
        work.append(instr)

    # Roots: side-effecting instructions and all terminator uses.
    for block in fn.blocks.values():
        for instr in block.instrs:
            if instr.has_side_effects:
                mark(instr)
        for use in block.terminator.uses():
            if use in defs:
                mark(defs[use][1])

    while work:
        instr = work.pop()
        uses = list(instr.uses())
        if isinstance(instr, Phi):
            uses = [v for v in instr.incoming.values()
                    if isinstance(v, Reg)]
        for use in uses:
            if use in defs:
                mark(defs[use][1])

    # A register is "needed" when some live instruction or terminator
    # reads it; call results that nobody reads are dropped (the call
    # stays, its ``dst`` is cleared, and the backend emits no result move).
    needed: Set[Reg] = set()
    for block in fn.blocks.values():
        for instr in block.instrs:
            if id(instr) in live or instr.has_side_effects:
                needed.update(instr.uses())
                if isinstance(instr, Phi):
                    needed.update(v for v in instr.incoming.values()
                                  if isinstance(v, Reg))
        needed.update(block.terminator.uses())

    removed = 0
    for block in fn.blocks.values():
        kept = []
        for instr in block.instrs:
            if instr.dst is not None and id(instr) not in live \
                    and not instr.has_side_effects:
                removed += 1
                continue
            if instr.has_side_effects and instr.dst is not None \
                    and instr.dst not in needed:
                instr.dst = None
                removed += 1
            kept.append(instr)
        block.instrs = kept
    return removed
