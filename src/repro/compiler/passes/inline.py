"""Function inlining.

A conservative bottom-up inliner in the spirit of GCC's early inliner:
direct calls to *small* functions are replaced by a clone of the callee's
body.  Size thresholds differ per optimization level — ``-Os`` only
inlines when doing so cannot grow the code (callee smaller than the call
overhead), matching GCC's size-optimization policy.

Runs on non-SSA GIMPLE (right after lowering), like GCC's early inliner
runs before the SSA optimizers so they can see through the call.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..gimple.ir import (BasicBlock, Call, GimpleFunction, Instr, Jump, Move,
                         Operand, Phi, Program, Reg, Ret, Terminator)

__all__ = ["run_inline", "InlinePolicy"]


class InlinePolicy:
    """Inlining thresholds (instruction counts of the callee)."""

    def __init__(self, max_callee_size: int = 12,
                 max_caller_growth: int = 400) -> None:
        self.max_callee_size = max_callee_size
        self.max_caller_growth = max_caller_growth

    @classmethod
    def for_speed(cls) -> "InlinePolicy":
        return cls(max_callee_size=12)

    @classmethod
    def for_size(cls) -> "InlinePolicy":
        # Only bodies at most as large as the call sequence they replace.
        return cls(max_callee_size=3, max_caller_growth=64)


def _inlinable(fn: GimpleFunction, policy: InlinePolicy) -> bool:
    if fn.instr_count() > policy.max_callee_size + len(fn.blocks):
        return False
    for block in fn.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, Call) and instr.callee == fn.name:
                return False  # direct recursion
    return True


def _clone_into(caller: GimpleFunction, callee: GimpleFunction,
                args: List[Operand], dst: Optional[Reg],
                cont_label: str) -> str:
    """Clone *callee*'s body into *caller*; returns the cloned entry label."""
    suffix = f"_inl{next(caller._label_counter)}"
    label_map = {label: f"{label}{suffix}" for label in callee.blocks}
    reg_map: Dict[Reg, Reg] = {}

    def remap(reg: Reg) -> Reg:
        if reg not in reg_map:
            reg_map[reg] = Reg(f"{reg.name}{suffix}", reg.version)
        return reg_map[reg]

    # Bind parameters.
    entry_label = label_map[callee.entry]
    binder = BasicBlock(f"bind{suffix}")
    for param, arg in zip(callee.params, args):
        binder.instrs.append(Move(remap(param), arg))
    binder.terminator = Jump(entry_label)
    caller.blocks[binder.label] = binder

    for label, block in callee.blocks.items():
        clone = BasicBlock(label_map[label])
        for instr in block.instrs:
            mapping = {use: remap(use) for use in instr.uses()}
            if isinstance(instr, Phi):
                new_instr: Instr = Phi(
                    remap(instr.dst),
                    {label_map[l]: (remap(v) if isinstance(v, Reg) else v)
                     for l, v in instr.incoming.items()})
            else:
                new_instr = instr.replace_uses(mapping)
                if new_instr is instr:
                    new_instr = instr.replace_uses({})  # force a copy
                    if new_instr is instr:
                        import copy as _copy
                        new_instr = _copy.copy(instr)
                if new_instr.dst is not None:
                    new_instr.dst = remap(new_instr.dst)
            clone.instrs.append(new_instr)
        term = block.terminator
        if isinstance(term, Ret):
            if dst is not None and term.value is not None:
                value = (remap(term.value) if isinstance(term.value, Reg)
                         else term.value)
                clone.instrs.append(Move(dst, value))
            clone.terminator = Jump(cont_label)
        else:
            mapping = {use: remap(use) for use in term.uses()}
            term = term.replace_uses(mapping) if mapping else term
            clone.terminator = term.retarget(label_map)
        caller.blocks[clone.label] = clone
    return binder.label


def run_inline(program: Program, policy: InlinePolicy,
               per_caller: Optional[Dict[str, int]] = None) -> int:
    """Inline eligible direct calls across *program*; returns the number
    of call sites inlined.

    *per_caller*, when given, is filled with the inline count attributed
    to each caller — the per-unit compile path uses it to report only
    the unit's own share, so per-unit statistics sum to exactly the
    whole-program numbers.
    """
    inlined = 0
    candidates = {name: fn for name, fn in program.functions.items()
                  if _inlinable(fn, policy)}
    for caller in program.functions.values():
        budget = policy.max_caller_growth
        again = True
        while again and budget > 0:
            again = False
            for label in list(caller.blocks):
                block = caller.blocks[label]
                for i, instr in enumerate(block.instrs):
                    if not isinstance(instr, Call):
                        continue
                    callee = candidates.get(instr.callee)
                    if callee is None or callee is caller:
                        continue
                    # Split the block at the call site.
                    cont = BasicBlock(f"cont{next(caller._label_counter)}")
                    cont.instrs = block.instrs[i + 1:]
                    cont.terminator = block.terminator
                    caller.blocks[cont.label] = cont
                    # Phis in successors must now name the continuation.
                    for succ in cont.terminator.successors():
                        for phi in caller.blocks[succ].phis():
                            if label in phi.incoming:
                                phi.incoming[cont.label] = \
                                    phi.incoming.pop(label)
                    block.instrs = block.instrs[:i]
                    entry = _clone_into(caller, callee, list(instr.args),
                                        instr.dst, cont.label)
                    block.terminator = Jump(entry)
                    inlined += 1
                    if per_caller is not None:
                        per_caller[caller.name] = \
                            per_caller.get(caller.name, 0) + 1
                    budget -= callee.instr_count()
                    again = True
                    break
                if again:
                    break
    return inlined
