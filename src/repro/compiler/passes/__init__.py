"""MGCC middle-end optimization passes over GIMPLE/SSA.

One module per classic pass, each exposing a ``run_*`` entry point the
driver sequences by optimization level: :func:`~.ccp.run_ccp`
(conditional constant propagation), :func:`~.cse.run_cse`,
:func:`~.copyprop.run_copyprop`, :func:`~.dce.run_dce`,
:func:`~.simplify_cfg.run_simplify_cfg`, and :func:`~.inline.run_inline`
with its size/speed :class:`~.inline.InlinePolicy`.
"""
