"""Copy propagation (SSA).

Replaces uses of ``%x`` with ``%y`` (or a constant) when ``%x = %y`` is a
plain move — the SSA single-definition property makes this a one-pass
substitution with union-find-style chasing of copy chains.  The moves
themselves become dead and fall to DCE.
"""

from __future__ import annotations

from typing import Dict

from ..gimple.ir import (GimpleFunction, Move, Operand, Phi, Reg)

__all__ = ["run_copyprop"]


def run_copyprop(fn: GimpleFunction) -> int:
    """Propagate SSA copies; returns number of rewritten uses."""
    copy_of: Dict[Reg, Operand] = {}
    for block in fn.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, Move):
                copy_of[instr.dst] = instr.src

    def resolve(op: Operand) -> Operand:
        seen = set()
        while isinstance(op, Reg) and op in copy_of and op not in seen:
            seen.add(op)
            op = copy_of[op]
        return op

    changed = 0
    for block in fn.blocks.values():
        new_instrs = []
        for instr in block.instrs:
            if isinstance(instr, Phi):
                new_incoming = {}
                for label, value in instr.incoming.items():
                    resolved = resolve(value)
                    if resolved != value:
                        changed += 1
                    new_incoming[label] = resolved
                new_instrs.append(Phi(instr.dst, new_incoming))
                continue
            mapping: Dict[Reg, Operand] = {}
            for use in instr.uses():
                resolved = resolve(use)
                if resolved != use:
                    mapping[use] = resolved
            if mapping:
                try:
                    instr = instr.replace_uses(mapping)
                    changed += len(mapping)
                except Exception:
                    pass  # e.g. load base folding to const: keep original
            new_instrs.append(instr)
        block.instrs = new_instrs
        term = block.terminator
        mapping = {use: resolve(use) for use in term.uses()
                   if resolve(use) != use}
        if mapping:
            block.terminator = term.replace_uses(mapping)
            changed += len(mapping)
    return changed
