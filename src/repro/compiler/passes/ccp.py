"""Conditional constant propagation (SSA).

A worklist implementation of Wegman-Zadeck sparse conditional constant
propagation, the flagship "mathematical" SSA optimization GCC gained with
Tree-SSA (paper §II.C).  Lattice per SSA name: TOP (unknown) -> constant
-> BOTTOM (varying).  Branches on known constants mark only the taken
edge executable, so code guarded by statically-false conditions is never
visited and falls to the unreachable-block pass afterwards.

Note the limit the paper leans on: the dispatch value of a generated
state machine is *loaded from memory* (``this->state``), which CCP must
treat as BOTTOM — so every ``case`` arm stays live, including the arm of
a model-level-unreachable state.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..gimple.cfg import predecessors
from ..gimple.ir import (BinOp, Branch, Call, CallIndirect, Const,
                         GimpleFunction, Instr, Jump, Load, LoadAddr,
                         LoadGlobal, Move, Operand, Phi, Reg, Ret,
                         SwitchTerm, UnOp)

__all__ = ["run_ccp"]

_TOP = "top"
_BOTTOM = "bottom"
# lattice value: _TOP | int | _BOTTOM


def _meet(a, b):
    if a == _TOP:
        return b
    if b == _TOP:
        return a
    if a == b:
        return a
    return _BOTTOM


def _eval_binop(op: str, a: int, b: int) -> Optional[int]:
    if op in ("/", "%") and b == 0:
        return None  # UB: keep the instruction, let it survive
    if op == "+":
        return _wrap(a + b)
    if op == "-":
        return _wrap(a - b)
    if op == "*":
        return _wrap(a * b)
    if op == "/":
        return _wrap(int(a / b))
    if op == "%":
        return _wrap(a - int(a / b) * b)
    return int({
        "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
        "==": a == b, "!=": a != b,
    }[op])


def _wrap(value: int) -> int:
    """Wrap to signed 32-bit (RT32 arithmetic)."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def run_ccp(fn: GimpleFunction) -> int:
    """Run SCCP on SSA-form *fn*; folds constant instructions and
    rewrites constant branches/switches to jumps.  Returns the number of
    instructions/terminators changed."""
    lattice: Dict[Reg, object] = {}
    executable: Set[str] = set()
    edge_executable: Set[Tuple[str, str]] = set()

    for param in fn.params:
        lattice[param] = _BOTTOM

    def value_of(op: Operand):
        if isinstance(op, int):
            return op
        return lattice.get(op, _TOP)

    block_work = [fn.entry]
    instr_work: list = []
    preds = predecessors(fn)

    def update(reg: Reg, new_value) -> None:
        old = lattice.get(reg, _TOP)
        merged = _meet(old, new_value)
        if merged != old:
            lattice[reg] = merged
            instr_work.append(reg)

    def visit_instr(label: str, instr: Instr) -> None:
        if isinstance(instr, Const):
            update(instr.dst, instr.value)
        elif isinstance(instr, Move):
            update(instr.dst, value_of(instr.src))
        elif isinstance(instr, BinOp):
            a, b = value_of(instr.a), value_of(instr.b)
            if a == _BOTTOM or b == _BOTTOM:
                update(instr.dst, _BOTTOM)
            elif a == _TOP or b == _TOP:
                pass
            else:
                folded = _eval_binop(instr.op, a, b)
                update(instr.dst, _BOTTOM if folded is None else folded)
        elif isinstance(instr, UnOp):
            a = value_of(instr.a)
            if a == _BOTTOM:
                update(instr.dst, _BOTTOM)
            elif a != _TOP:
                update(instr.dst,
                       _wrap(-a) if instr.op == "-" else int(not a))
        elif isinstance(instr, Phi):
            merged = _TOP
            for pred_label, value in instr.incoming.items():
                if (pred_label, label) in edge_executable:
                    merged = _meet(merged, value_of(value))
            update(instr.dst, merged)
        elif isinstance(instr, (Load, LoadGlobal, LoadAddr, Call,
                                CallIndirect)):
            # Memory contents, addresses and call results are runtime
            # values: BOTTOM.  (Addresses are link-time constants but not
            # foldable integers here.)
            if instr.dst is not None:
                update(instr.dst, _BOTTOM)

    def mark_edge(src: str, dst: str) -> None:
        if (src, dst) in edge_executable:
            return
        edge_executable.add((src, dst))
        if dst not in executable:
            executable.add(dst)
            block_work.append(dst)
        else:
            # Re-evaluate phis of dst: a new incoming edge appeared.
            for phi in fn.blocks[dst].phis():
                visit_instr(dst, phi)

    def visit_terminator(label: str) -> None:
        term = fn.blocks[label].terminator
        if isinstance(term, Jump):
            mark_edge(label, term.target)
        elif isinstance(term, Branch):
            cond = value_of(term.cond)
            if cond == _BOTTOM:
                mark_edge(label, term.if_true)
                mark_edge(label, term.if_false)
            elif cond != _TOP:
                mark_edge(label, term.if_true if cond else term.if_false)
        elif isinstance(term, SwitchTerm):
            value = value_of(term.value)
            if value == _BOTTOM:
                for succ in term.successors():
                    mark_edge(label, succ)
            elif value != _TOP:
                target = term.cases.get(value, term.default)
                mark_edge(label, target)
        elif isinstance(term, Ret):
            pass

    executable.add(fn.entry)
    while block_work or instr_work:
        while instr_work:
            changed_reg = instr_work.pop()
            # Re-visit every instruction using the changed register in an
            # executable block (sparse propagation).
            for label in list(executable):
                block = fn.blocks.get(label)
                if block is None:
                    continue
                for instr in block.instrs:
                    if changed_reg in instr.uses() or (
                            isinstance(instr, Phi)
                            and changed_reg in instr.incoming.values()):
                        visit_instr(label, instr)
                if changed_reg in block.terminator.uses():
                    visit_terminator(label)
        while block_work:
            label = block_work.pop()
            block = fn.blocks[label]
            for instr in block.instrs:
                visit_instr(label, instr)
            visit_terminator(label)

    # -- rewrite phase ---------------------------------------------------
    changed = 0
    for label, block in fn.blocks.items():
        new_instrs = []
        for instr in block.instrs:
            value = lattice.get(instr.dst) if instr.dst is not None else None
            if instr.dst is not None and isinstance(value, int) and \
                    not isinstance(instr, Const) and \
                    not instr.has_side_effects:
                new_instrs.append(Const(instr.dst, value))
                changed += 1
            else:
                # Fold constant *uses* into immediates.
                mapping: Dict[Reg, Operand] = {}
                for use in instr.uses():
                    use_value = lattice.get(use, _TOP)
                    if isinstance(use_value, int) and not isinstance(
                            instr, (Load, CallIndirect)):
                        mapping[use] = use_value
                if mapping:
                    try:
                        instr = instr.replace_uses(mapping)
                        changed += 1
                    except Exception:
                        pass
                new_instrs.append(instr)
        block.instrs = new_instrs
        term = block.terminator
        if isinstance(term, Branch):
            cond = lattice.get(term.cond, _TOP) \
                if isinstance(term.cond, Reg) else term.cond
            if isinstance(cond, int):
                block.terminator = Jump(term.if_true if cond
                                        else term.if_false)
                changed += 1
        elif isinstance(term, SwitchTerm):
            value = lattice.get(term.value, _TOP) \
                if isinstance(term.value, Reg) else term.value
            if isinstance(value, int):
                block.terminator = Jump(term.cases.get(value, term.default))
                changed += 1
    return changed
