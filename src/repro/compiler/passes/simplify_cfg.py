"""CFG simplification.

The cleanup pass that runs between the SSA optimizations, mirroring
GCC's ``cleanup_cfg``:

* delete CFG-unreachable blocks (e.g. arms CCP proved dead);
* forward jumps through empty blocks (blocks holding only a ``Jump``);
* merge a block into its unique successor when that successor has a
  unique predecessor (straightening);
* turn branches whose two targets coincide into jumps.

Phi nodes are kept consistent throughout; the pass iterates to a local
fixpoint and returns the number of structural changes.
"""

from __future__ import annotations

from typing import Dict

from ..gimple.cfg import predecessors, remove_unreachable_blocks
from ..gimple.ir import (Branch, GimpleFunction, Jump, Phi, SwitchTerm)

__all__ = ["run_simplify_cfg"]


def _forward_empty_blocks(fn: GimpleFunction) -> int:
    """Retarget edges that pass through trivial forwarding blocks.

    A forwarder is an empty block ending in an unconditional jump.  Each
    is handled individually and conservatively:

    * if the jump target has a phi naming the forwarder, the forwarder is
      only bypassed when it has exactly one predecessor and that
      predecessor does not already feed the phi (otherwise two different
      values would collide on one edge);
    * otherwise every predecessor is retargeted past it.
    """
    changed = 0
    for label in list(fn.blocks):
        block = fn.blocks.get(label)
        if block is None or label == fn.entry or block.instrs:
            continue
        if not isinstance(block.terminator, Jump):
            continue
        target_label = block.terminator.target
        if target_label == label:
            continue
        target = fn.blocks[target_label]
        preds = predecessors(fn)
        my_preds = preds[label]
        if not my_preds:
            continue  # unreachable; the dedicated pass removes it
        phis_naming_me = [phi for phi in target.phis()
                          if label in phi.incoming]
        if phis_naming_me:
            if len(my_preds) != 1:
                continue
            (pred,) = my_preds
            if any(pred in phi.incoming for phi in target.phis()):
                continue  # value collision on the direct edge
            fn.blocks[pred].terminator = \
                fn.blocks[pred].terminator.retarget({label: target_label})
            for phi in phis_naming_me:
                phi.incoming[pred] = phi.incoming.pop(label)
            changed += 1
        else:
            mapping = {label: target_label}
            for pred in my_preds:
                fn.blocks[pred].terminator = \
                    fn.blocks[pred].terminator.retarget(mapping)
            changed += 1
    return changed


def _merge_straightline(fn: GimpleFunction) -> int:
    """Merge ``a -> b`` when a ends in Jump(b) and b has a single pred."""
    changed = 0
    merged = True
    while merged:
        merged = False
        preds = predecessors(fn)
        for label in list(fn.blocks):
            block = fn.blocks.get(label)
            if block is None:
                continue
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            succ_label = term.target
            if succ_label == label or succ_label == fn.entry:
                continue
            if len(preds[succ_label]) != 1:
                continue
            succ = fn.blocks[succ_label]
            if succ.phis():
                # Single-pred phis are degenerate copies; inline them.
                for phi in succ.phis():
                    (value,) = phi.incoming.values()
                    from ..gimple.ir import Move
                    block.instrs.append(Move(phi.dst, value))
                succ.instrs = succ.non_phis()
            block.instrs.extend(succ.instrs)
            block.terminator = succ.terminator
            del fn.blocks[succ_label]
            # Phi inputs downstream referenced succ_label as predecessor.
            for other in fn.blocks.values():
                for phi in other.phis():
                    if succ_label in phi.incoming:
                        phi.incoming[label] = phi.incoming.pop(succ_label)
            changed += 1
            merged = True
            break
    return changed


def _collapse_degenerate_branches(fn: GimpleFunction) -> int:
    changed = 0
    for block in fn.blocks.values():
        term = block.terminator
        if isinstance(term, Branch) and term.if_true == term.if_false:
            block.terminator = Jump(term.if_true)
            changed += 1
        elif isinstance(term, SwitchTerm):
            targets = set(term.cases.values()) | {term.default}
            if len(targets) == 1:
                block.terminator = Jump(term.default)
                changed += 1
    return changed


def _prune_stale_phi_inputs(fn: GimpleFunction) -> int:
    """Drop phi inputs naming blocks that are no longer predecessors
    (CCP's branch folding removes edges without touching phis)."""
    changed = 0
    preds = predecessors(fn)
    for label, block in fn.blocks.items():
        for phi in block.phis():
            stale = [src for src in phi.incoming if src not in preds[label]]
            for src in stale:
                del phi.incoming[src]
                changed += 1
    return changed


def run_simplify_cfg(fn: GimpleFunction) -> int:
    """Iterate the simplifications to a fixpoint; returns total changes."""
    total = 0
    while True:
        changed = remove_unreachable_blocks(fn)
        changed += _prune_stale_phi_inputs(fn)
        changed += _collapse_degenerate_branches(fn)
        changed += _forward_empty_blocks(fn)
        changed += remove_unreachable_blocks(fn)
        changed += _merge_straightline(fn)
        if not changed:
            return total
        total += changed
