"""Common subexpression elimination (dominator-scoped value numbering).

The SSA analogue of GCC's FRE: pure expressions (arithmetic, comparisons,
constants, symbol addresses) computed more than once on a dominating path
are replaced by the first computation.  Address arithmetic produced by
array indexing (``base + i*24`` repeated for every field of a table row)
is the main beneficiary — without CSE the table-pattern engine recomputes
the row address for every field access.

Loads are *not* value-numbered (memory may change between them); copy
propagation + DCE clean up the replacement moves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..gimple.dom import compute_dominators
from ..gimple.cfg import remove_unreachable_blocks
from ..gimple.ir import (BinOp, Const, GimpleFunction, Instr, LoadAddr, Move,
                         Operand, Reg, UnOp)

__all__ = ["run_cse"]

_COMMUTATIVE = {"+", "*", "==", "!="}


def _key(instr: Instr) -> Optional[Tuple]:
    if isinstance(instr, Const):
        return ("const", instr.value)
    if isinstance(instr, LoadAddr):
        return ("addr", instr.symbol, instr.offset)
    if isinstance(instr, UnOp):
        return ("un", instr.op, instr.a)
    if isinstance(instr, BinOp):
        a, b = instr.a, instr.b
        if instr.op in _COMMUTATIVE:
            ka = (0, a) if isinstance(a, int) else (1, str(a))
            kb = (0, b) if isinstance(b, int) else (1, str(b))
            if kb < ka:
                a, b = b, a
        return ("bin", instr.op, a, b)
    return None


def run_cse(fn: GimpleFunction) -> int:
    """Run dominator-scoped CSE on SSA-form *fn*; returns replacements."""
    remove_unreachable_blocks(fn)
    dom = compute_dominators(fn)
    available: Dict[Tuple, Reg] = {}
    replaced = 0

    def walk(label: str) -> None:
        nonlocal replaced
        block = fn.blocks[label]
        added: List[Tuple] = []
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            key = _key(instr)
            if key is not None:
                existing = available.get(key)
                if existing is not None:
                    new_instrs.append(Move(instr.dst, existing))
                    replaced += 1
                    continue
                available[key] = instr.dst
                added.append(key)
            new_instrs.append(instr)
        block.instrs = new_instrs
        for child in dom.children.get(label, ()):
            walk(child)
        for key in added:
            del available[key]

    walk(fn.entry)
    return replaced
