"""Peephole optimization over the RTL stream.

The classic RTL-level cleanups GCC performs close to the target
(paper §II.C: "register allocation, peepholes optimizations, etc."):

* delete self-moves (``mv rX, rX``) produced by copy coalescing;
* delete unconditional branches to the immediately following label;
* collapse ``li`` of a constant immediately re-materialized into the
  same register;
* delete dead labels only when asked (labels are size 0 so they never
  affect code size; they are kept for readability).

Runs after register allocation, so each deleted instruction saves real
encoded bytes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Union

from ..target.description import TargetDescription
from ..target.registry import resolve_target
from .ir import RInstr, RTLFunction

__all__ = ["run_peephole", "fuse_compare_branches"]

_SET_TO_BRANCH = {"seteq": "beq", "setne": "bne", "setlt": "blt",
                  "setle": "ble", "setgt": "bgt", "setge": "bge"}
_SET_TO_BRANCH_IMM = {"seteqi": "beqi", "setnei": "bnei", "setlti": "blti",
                      "setlei": "blei", "setgti": "bgti", "setgei": "bgei"}
#: branch mnemonic testing the *negated* condition (for beqz fusion)
_NEGATED = {"beq": "bne", "bne": "beq", "blt": "bge", "ble": "bgt",
            "bgt": "ble", "bge": "blt",
            "beqi": "bnei", "bnei": "beqi", "blti": "bgei", "blei": "bgti",
            "bgti": "blei", "bgei": "blti"}


def fuse_compare_branches(rtl: RTLFunction,
                          target: Union[TargetDescription, str, None] = None,
                          ) -> int:
    """Fuse ``set<cc> v, a, b; bnez v, L`` into ``b<cc> a, b, L``.

    Runs on virtual-register RTL (before allocation), where use counts
    are reliable: the fusion fires only when the compare result feeds
    exactly that one branch.  ``beqz`` fuses with the negated condition.
    Saves one full set encoding per compare-driven branch — the dominant
    pattern in switch chains and table-scan loops.  Fusion is skipped for
    mnemonics the target does not encode.
    """
    tgt = resolve_target(target) if target is not None else rtl.target_desc
    use_count: Counter = Counter()
    for instr in rtl.instrs:
        for reg in instr.uses:
            use_count[reg] += 1
    fused = 0
    new_instrs: List[RInstr] = []
    i = 0
    while i < len(rtl.instrs):
        instr = rtl.instrs[i]
        nxt = rtl.instrs[i + 1] if i + 1 < len(rtl.instrs) else None
        branch_map = _SET_TO_BRANCH.get(instr.op) and _SET_TO_BRANCH or \
            (_SET_TO_BRANCH_IMM.get(instr.op) and _SET_TO_BRANCH_IMM)
        if branch_map and nxt is not None and \
                nxt.op in ("bnez", "beqz") and \
                nxt.uses == instr.defs and use_count[instr.defs[0]] == 1:
            mnemonic = branch_map[instr.op]
            if nxt.op == "beqz":
                mnemonic = _NEGATED[mnemonic]
            if not tgt.has_insn(mnemonic):
                new_instrs.append(instr)
                i += 1
                continue
            new_instrs.append(RInstr(mnemonic, uses=instr.uses,
                                     imm=instr.imm, target=nxt.target,
                                     comment=instr.comment))
            fused += 1
            i += 2
            continue
        new_instrs.append(instr)
        i += 1
    rtl.instrs = new_instrs
    return fused


def _next_label(instrs: List[RInstr], index: int) -> str:
    """Label name directly following *index* (skipping nothing)."""
    j = index + 1
    while j < len(instrs) and instrs[j].op == "label":
        if instrs[j].target is not None:
            return instrs[j].target
        j += 1
    return ""


def run_peephole(rtl: RTLFunction) -> int:
    """Apply peepholes until fixpoint; returns instructions removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        new_instrs: List[RInstr] = []
        i = 0
        instrs = rtl.instrs
        while i < len(instrs):
            instr = instrs[i]
            # mv rX, rX
            if instr.op == "mv" and instr.defs and instr.uses and \
                    instr.defs[0] == instr.uses[0]:
                removed += 1
                changed = True
                i += 1
                continue
            # b .L ; .L:
            if instr.op == "b" and instr.target is not None:
                j = i + 1
                labels_between = []
                while j < len(instrs) and instrs[j].op == "label":
                    labels_between.append(instrs[j].target)
                    j += 1
                if instr.target in labels_between:
                    removed += 1
                    changed = True
                    i += 1
                    continue
            # li rX, k ; li rX, k   (identical re-materialization)
            if instr.op in ("li", "li32") and new_instrs:
                prev = new_instrs[-1]
                if prev.op == instr.op and prev.defs == instr.defs and \
                        prev.imm == instr.imm:
                    removed += 1
                    changed = True
                    i += 1
                    continue
            new_instrs.append(instr)
            i += 1
        rtl.instrs = new_instrs
    return removed
