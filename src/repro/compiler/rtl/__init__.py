"""RTL: MGCC's target-level IR and backend passes.

Modules and main public names:

* :mod:`.ir` — :class:`RInstr`, :class:`RTLFunction`, :func:`label`,
  :func:`is_branch`;
* :mod:`.isel` — :func:`select_function` (GIMPLE -> RTL) and
  :class:`SwitchLowering` (jump table vs. compare chain, costed per
  target);
* :mod:`.regalloc` — :func:`allocate_registers` (linear scan with
  spilling onto the target's register file);
* :mod:`.peephole` — :func:`fuse_compare_branches`,
  :func:`run_peephole`.
"""
