"""RTL: MGCC's low-level IR.

Paper §II.C describes GCC's RTL as "a low-level representation [that]
works well for optimizations that are close to the target".  MGCC's RTL
is a linear instruction stream (with labels) over virtual registers that
instruction selection produces from GIMPLE and that register allocation
rewrites onto the selected target's register file.

An :class:`RInstr` is deliberately generic — mnemonic plus def/use
register lists, an optional immediate, symbol and branch target — so the
register allocator and peephole passes can treat all instructions
uniformly; the mnemonic's entry in the function's
:class:`~..target.TargetDescription` fixes its size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..target.description import TargetDescription
from ..target.registry import resolve_target

__all__ = ["RInstr", "RTLFunction", "label", "is_branch"]

_BRANCH_OPS = {"b", "bnez", "beqz", "jt", "ret",
               "beq", "bne", "blt", "ble", "bgt", "bge",
               "beqi", "bnei", "blti", "blei", "bgti", "bgei"}


@dataclass
class RInstr:
    """One RTL instruction.

    ``defs``/``uses`` hold register names: virtual (``v12``) before
    allocation, physical (``s3``/``t0``) after.
    """

    op: str
    defs: Tuple[str, ...] = ()
    uses: Tuple[str, ...] = ()
    imm: Optional[int] = None
    symbol: Optional[str] = None
    target: Optional[str] = None          # branch target label
    table: Optional[Tuple[str, ...]] = None  # jump-table target labels
    comment: str = ""

    def size_on(self, target: TargetDescription) -> int:
        """Encoded size of this instruction on *target*.

        There is deliberately no target-free ``size`` accessor: an
        instruction does not know which ISA its function was selected
        for, so size accounting goes through
        :meth:`RTLFunction.text_size` (which uses the function's own
        target) or this method."""
        return target.insn_size(self.op)

    def rewrite_regs(self, mapping) -> "RInstr":
        """Return a copy with registers substituted through *mapping*
        (a callable name->name)."""
        return replace(self,
                       defs=tuple(mapping(r) for r in self.defs),
                       uses=tuple(mapping(r) for r in self.uses))

    def render(self) -> str:
        """Assembly-listing line for this instruction."""
        if self.op == "label":
            return f"{self.target}:"
        parts: List[str] = []
        parts.extend(self.defs)
        parts.extend(self.uses)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.symbol is not None:
            parts.append(f"@{self.symbol}")
        if self.target is not None:
            parts.append(self.target)
        text = f"    {self.op} " + ", ".join(parts)
        if self.comment:
            text += f"    ; {self.comment}"
        return text


def label(name: str) -> RInstr:
    """A label pseudo-instruction (size 0)."""
    return RInstr("label", target=name)


def is_branch(instr: RInstr) -> bool:
    return instr.op in _BRANCH_OPS


@dataclass
class RTLFunction:
    """A function as a linear RTL stream."""

    name: str
    instrs: List[RInstr] = field(default_factory=list)
    frame_slots: int = 0  # spill slots allocated by regalloc
    saved_regs: Tuple[str, ...] = ()
    target: Optional[TargetDescription] = None  # None -> default target

    def emit(self, instr: RInstr) -> RInstr:
        self.instrs.append(instr)
        return instr

    @property
    def target_desc(self) -> TargetDescription:
        """The function's target (the default when none was set)."""
        return resolve_target(self.target)

    @property
    def text_size(self) -> int:
        sizes = self.target_desc.insn_sizes
        return sum(sizes[i.op] for i in self.instrs)

    def listing(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(i.render() for i in self.instrs)
        return "\n".join(lines)
