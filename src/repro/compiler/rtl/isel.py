"""Instruction selection: GIMPLE -> target RTL.

Walks the (non-SSA) GIMPLE blocks in layout order and emits a linear RTL
stream with one virtual register per GIMPLE register.  The interesting
decision is ``switch`` lowering — like GCC, MGCC picks between

* a **compare chain** (one ``beqi`` per case), and
* a **jump table** (fixed dispatch sequence + one rodata word per slot in
  the dense value range),

choosing whichever is smaller under ``-Os`` and using a density heuristic
otherwise.  The chosen table data is appended to the program's rodata.
The cost constants and immediate ranges come from the selected
:class:`~..target.TargetDescription`, so different targets can make
different lowering decisions for the same GIMPLE (RT16's wide table
dispatch pushes it toward chains where RT32 tables).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from ..gimple import ir as g
from ..target.description import TargetDescription
from ..target.registry import resolve_target
from .ir import RInstr, RTLFunction, label

__all__ = ["select_function", "SwitchLowering"]

_CMP_MNEMONIC = {"==": "seteq", "!=": "setne", "<": "setlt",
                 "<=": "setle", ">": "setgt", ">=": "setge"}
#: op usable when the operands of a comparison are swapped
_MIRRORED_CMP = {"==": "==", "!=": "!=", "<": ">", "<=": ">=",
                 ">": "<", ">=": "<="}


class SwitchLowering:
    """Switch lowering policy (size-driven under -Os)."""

    def __init__(self, optimize_for_size: bool = False,
                 density_threshold: float = 0.5,
                 min_table_cases: int = 4,
                 target: Union[TargetDescription, str, None] = None) -> None:
        self.optimize_for_size = optimize_for_size
        self.density_threshold = density_threshold
        self.min_table_cases = min_table_cases
        self.target = resolve_target(target)

    def use_jump_table(self, case_values: List[int],
                       target: Optional[TargetDescription] = None) -> bool:
        tgt = target if target is not None else self.target
        if len(case_values) < 2:
            return False
        span = max(case_values) - min(case_values) + 1
        chain_cost = tgt.compare_chain_per_case * len(case_values)
        table_cost = (tgt.jump_table_overhead
                      + tgt.jump_table_entry_size * span)
        if self.optimize_for_size:
            return table_cost < chain_cost
        density = len(case_values) / span
        return (len(case_values) >= self.min_table_cases
                and density >= self.density_threshold)


class _FnSelector:
    def __init__(self, fn: g.GimpleFunction, lowering: SwitchLowering,
                 rodata_sink, target: TargetDescription) -> None:
        self.fn = fn
        self.lowering = lowering
        self.rodata_sink = rodata_sink
        self.target = target
        self.rtl = RTLFunction(fn.name, target=target)
        self.vreg_of: Dict[g.Reg, str] = {}
        self._counter = itertools.count()
        self._jt_counter = itertools.count()

    # -- registers -------------------------------------------------------
    def vreg(self, reg: g.Reg) -> str:
        if reg not in self.vreg_of:
            self.vreg_of[reg] = f"v{len(self.vreg_of)}"
        return self.vreg_of[reg]

    def fresh(self) -> str:
        return f"vt{next(self._counter)}"

    def operand(self, op: g.Operand) -> str:
        """Materialize an operand into a register name."""
        if isinstance(op, g.Reg):
            return self.vreg(op)
        dst = self.fresh()
        self.emit_li(dst, op)
        return dst

    def emit_li(self, dst: str, value: int) -> None:
        op = "li" if self.target.fits_imm16(value) else "li32"
        self.rtl.emit(RInstr(op, defs=(dst,), imm=value))

    # -- driver ------------------------------------------------------------
    def run(self) -> RTLFunction:
        # Parameters arrive in virtual argument slots; model the ABI moves.
        for i, param in enumerate(self.fn.params):
            self.rtl.emit(RInstr("argmv", defs=(self.vreg(param),), imm=i,
                                 comment=f"param {param}"))
        order = list(self.fn.blocks)
        for idx, blk_label in enumerate(order):
            block = self.fn.blocks[blk_label]
            self.rtl.emit(label(self._blk(blk_label)))
            for instr in block.instrs:
                self.select_instr(instr)
            next_label = order[idx + 1] if idx + 1 < len(order) else None
            self.select_terminator(block.terminator, next_label)
        return self.rtl

    def _blk(self, blk_label: str) -> str:
        return f".{self.fn.name}.{blk_label}"

    # -- instructions -----------------------------------------------------
    def select_instr(self, instr: g.Instr) -> None:
        if isinstance(instr, g.Const):
            self.emit_li(self.vreg(instr.dst), instr.value)
        elif isinstance(instr, g.Move):
            if isinstance(instr.src, int):
                self.emit_li(self.vreg(instr.dst), instr.src)
            else:
                self.rtl.emit(RInstr("mv", defs=(self.vreg(instr.dst),),
                                     uses=(self.vreg(instr.src),)))
        elif isinstance(instr, g.BinOp):
            self.select_binop(instr)
        elif isinstance(instr, g.UnOp):
            if instr.op == "-":
                self.rtl.emit(RInstr("neg", defs=(self.vreg(instr.dst),),
                                     uses=(self.operand(instr.a),)))
            else:  # logical not: dst = (a == 0)
                a = self.operand(instr.a)
                zero = self.fresh()
                self.emit_li(zero, 0)
                self.rtl.emit(RInstr("seteq", defs=(self.vreg(instr.dst),),
                                     uses=(a, zero)))
        elif isinstance(instr, g.Load):
            self.rtl.emit(RInstr("lw", defs=(self.vreg(instr.dst),),
                                 uses=(self.vreg(instr.base),),
                                 imm=instr.offset))
        elif isinstance(instr, g.Store):
            self.rtl.emit(RInstr("sw", uses=(self.operand(instr.src),
                                             self.vreg(instr.base)),
                                 imm=instr.offset))
        elif isinstance(instr, g.LoadGlobal):
            self.rtl.emit(RInstr("lwg", defs=(self.vreg(instr.dst),),
                                 symbol=instr.symbol, imm=instr.offset))
        elif isinstance(instr, g.StoreGlobal):
            self.rtl.emit(RInstr("swg", uses=(self.operand(instr.src),),
                                 symbol=instr.symbol, imm=instr.offset))
        elif isinstance(instr, g.LoadAddr):
            self.rtl.emit(RInstr("la", defs=(self.vreg(instr.dst),),
                                 symbol=instr.symbol, imm=instr.offset))
        elif isinstance(instr, g.Call):
            self.select_call(instr)
        elif isinstance(instr, g.CallIndirect):
            self.select_call_indirect(instr)
        elif isinstance(instr, g.Phi):
            raise g.IRError("phi reached instruction selection; run "
                            "from_ssa first")
        else:  # pragma: no cover - defensive
            raise g.IRError(f"unselectable instruction {instr}")

    def select_binop(self, instr: g.BinOp) -> None:
        dst = self.vreg(instr.dst)
        if instr.op in ("+", "-") and isinstance(instr.b, int) and \
                self.target.fits_small_imm(instr.b) and \
                isinstance(instr.a, g.Reg):
            imm = instr.b if instr.op == "+" else -instr.b
            self.rtl.emit(RInstr("addi", defs=(dst,),
                                 uses=(self.vreg(instr.a),), imm=imm))
            return
        if instr.op in _CMP_MNEMONIC:
            # Compare-with-immediate avoids materializing the constant.
            a_op, b_op, op = instr.a, instr.b, instr.op
            if isinstance(a_op, int) and not isinstance(b_op, int):
                a_op, b_op = b_op, a_op
                op = _MIRRORED_CMP[op]
            if isinstance(b_op, int) and \
                    self.target.fits_small_imm(b_op) and \
                    isinstance(a_op, g.Reg):
                self.rtl.emit(RInstr(_CMP_MNEMONIC[op] + "i", defs=(dst,),
                                     uses=(self.vreg(a_op),), imm=b_op))
                return
            a = self.operand(instr.a)
            b = self.operand(instr.b)
            self.rtl.emit(RInstr(_CMP_MNEMONIC[instr.op], defs=(dst,),
                                 uses=(a, b)))
            return
        a = self.operand(instr.a)
        b = self.operand(instr.b)
        mnemonic = {"+": "add", "-": "sub", "*": "mul",
                    "/": "div", "%": "mod"}[instr.op]
        self.rtl.emit(RInstr(mnemonic, defs=(dst,), uses=(a, b)))

    def select_call(self, instr: g.Call) -> None:
        for i, arg in enumerate(instr.args):
            self.rtl.emit(RInstr("argmv", uses=(self.operand(arg),), imm=i))
        self.rtl.emit(RInstr("call", symbol=instr.callee))
        if instr.dst is not None:
            self.rtl.emit(RInstr("retmv", defs=(self.vreg(instr.dst),)))

    def select_call_indirect(self, instr: g.CallIndirect) -> None:
        for i, arg in enumerate(instr.args):
            self.rtl.emit(RInstr("argmv", uses=(self.operand(arg),), imm=i))
        self.rtl.emit(RInstr("callr", uses=(self.vreg(instr.target),)))
        if instr.dst is not None:
            self.rtl.emit(RInstr("retmv", defs=(self.vreg(instr.dst),)))

    # -- terminators --------------------------------------------------------
    def select_terminator(self, term: g.Terminator,
                          next_label: Optional[str]) -> None:
        if isinstance(term, g.Jump):
            if term.target != next_label:
                self.rtl.emit(RInstr("b", target=self._blk(term.target)))
        elif isinstance(term, g.Branch):
            cond = self.operand(term.cond)
            self.rtl.emit(RInstr("bnez", uses=(cond,),
                                 target=self._blk(term.if_true)))
            if term.if_false != next_label:
                self.rtl.emit(RInstr("b", target=self._blk(term.if_false)))
        elif isinstance(term, g.SwitchTerm):
            self.select_switch(term, next_label)
        elif isinstance(term, g.Ret):
            if term.value is not None:
                self.rtl.emit(RInstr("retmv", uses=(self.operand(term.value),),
                                     comment="return value to a0"))
            self.rtl.emit(RInstr("ret"))
        else:  # pragma: no cover - defensive
            raise g.IRError(f"unselectable terminator {term}")

    def select_switch(self, term: g.SwitchTerm,
                      next_label: Optional[str]) -> None:
        value = self.operand(term.value)
        case_values = sorted(term.cases)
        # Cost the decision against the target actually being selected
        # for, which may differ from the lowering's default target.
        if self.lowering.use_jump_table(case_values, target=self.target):
            lo, hi = case_values[0], case_values[-1]
            slots: List[str] = []
            for v in range(lo, hi + 1):
                target = term.cases.get(v, term.default)
                slots.append(f"{self.fn.name}:{target}")
            table_name = (f"{self.fn.name}.jt{next(self._jt_counter)}")
            self.rodata_sink(table_name, slots)
            self.rtl.emit(RInstr("jt", uses=(value,), imm=lo,
                                 symbol=table_name,
                                 target=self._blk(term.default),
                                 table=tuple(self._blk(term.cases.get(v, term.default))
                                             for v in range(lo, hi + 1)),
                                 comment=f"jump table [{lo}..{hi}]"))
            self.rtl.emit(RInstr("b", target=self._blk(term.default),
                                 comment="out-of-range"))
        else:
            for v in case_values:
                self.rtl.emit(RInstr("beqi", uses=(value,), imm=v,
                                     target=self._blk(term.cases[v])))
            if term.default != next_label:
                self.rtl.emit(RInstr("b", target=self._blk(term.default)))


def select_function(fn: g.GimpleFunction, lowering: SwitchLowering,
                    rodata_sink,
                    target: Union[TargetDescription, str, None] = None,
                    ) -> RTLFunction:
    """Lower *fn* to RTL for *target* (default: the lowering's target).
    ``rodata_sink(name, symbol_list)`` receives any jump tables the
    lowering creates."""
    resolved = lowering.target if target is None else resolve_target(target)
    return _FnSelector(fn, lowering, rodata_sink, resolved).run()
