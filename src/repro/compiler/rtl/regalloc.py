"""Linear-scan register allocation, parameterized by target.

Implements Poletto & Sarkar's linear scan over the RTL stream:

1. rebuild block structure from labels/branches and run a backward
   liveness dataflow so intervals are correct across loops;
2. build one conservative live interval per virtual register (covering
   every program point where the register is live);
3. scan intervals in start order, assigning the target's callee-saved
   ``s`` registers; when none is free, spill the interval that ends last;
4. rewrite the stream — spilled registers get frame slots, with the
   target's two scratch registers as reload temporaries.

The allocator records which physical registers a function used so the
driver can emit exactly the push/pop prologue the function needs (the
size accounting the experiments depend on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from ..target.description import TargetDescription
from ..target.registry import resolve_target
from .ir import RInstr, RTLFunction, is_branch

__all__ = ["allocate_registers", "AllocationError", "live_intervals"]


class AllocationError(Exception):
    """Raised when the allocator cannot produce a valid assignment."""


def _is_virtual(reg: str) -> bool:
    return reg.startswith("v")


@dataclass
class _Block:
    start: int  # index of first instruction (the label)
    end: int    # index one past the last instruction
    succs: List[int]
    uses: Set[str]
    defs: Set[str]
    live_in: Set[str]
    live_out: Set[str]


def _build_blocks(instrs: List[RInstr]) -> List[_Block]:
    """Partition the linear stream into blocks and wire the CFG."""
    # Leaders: index 0, every label, and every instruction after a branch.
    leaders = {0}
    label_at: Dict[str, int] = {}
    for i, instr in enumerate(instrs):
        if instr.op == "label":
            leaders.add(i)
            label_at[instr.target] = i
        elif is_branch(instr) and i + 1 < len(instrs):
            leaders.add(i + 1)
    ordered = sorted(leaders)
    index_of = {start: n for n, start in enumerate(ordered)}
    blocks: List[_Block] = []
    for n, start in enumerate(ordered):
        end = ordered[n + 1] if n + 1 < len(ordered) else len(instrs)
        blocks.append(_Block(start, end, [], set(), set(), set(), set()))
    # Successors + local use/def sets.
    for n, block in enumerate(blocks):
        seen_defs: Set[str] = set()
        falls_through = True
        for i in range(block.start, block.end):
            instr = instrs[i]
            for use in instr.uses:
                if _is_virtual(use) and use not in seen_defs:
                    block.uses.add(use)
            for dst in instr.defs:
                if _is_virtual(dst):
                    seen_defs.add(dst)
                    block.defs.add(dst)
            if instr.op in ("b", "ret"):
                falls_through = False
            elif is_branch(instr):
                falls_through = i + 1 >= block.end or True
            if instr.target is not None and instr.op != "label" and \
                    instr.target in label_at:
                succ_start = label_at[instr.target]
                block.succs.append(index_of[_leader_of(ordered, succ_start)])
            if instr.table:
                for tgt in instr.table:
                    if tgt in label_at:
                        block.succs.append(
                            index_of[_leader_of(ordered, label_at[tgt])])
        last = instrs[block.end - 1] if block.end > block.start else None
        if falls_through and (last is None or last.op not in ("b", "ret")):
            if n + 1 < len(blocks):
                block.succs.append(n + 1)
    return blocks


def _leader_of(ordered: List[int], index: int) -> int:
    """The leader (block start) containing instruction *index*."""
    lo, hi = 0, len(ordered) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if ordered[mid] <= index:
            lo = mid
        else:
            hi = mid - 1
    return ordered[lo]


def _liveness(blocks: List[_Block]) -> None:
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            live_out: Set[str] = set()
            for succ in block.succs:
                live_out |= blocks[succ].live_in
            live_in = block.uses | (live_out - block.defs)
            if live_out != block.live_out or live_in != block.live_in:
                block.live_out = live_out
                block.live_in = live_in
                changed = True


def live_intervals(rtl: RTLFunction) -> Dict[str, Tuple[int, int]]:
    """Conservative live interval [start, end] per virtual register."""
    blocks = _build_blocks(rtl.instrs)
    _liveness(blocks)
    intervals: Dict[str, Tuple[int, int]] = {}

    def extend(reg: str, point: int) -> None:
        if reg in intervals:
            lo, hi = intervals[reg]
            intervals[reg] = (min(lo, point), max(hi, point))
        else:
            intervals[reg] = (point, point)

    for block in blocks:
        for reg in block.live_in:
            extend(reg, block.start)
        for reg in block.live_out:
            extend(reg, block.end - 1 if block.end > block.start
                   else block.start)
        for i in range(block.start, block.end):
            instr = rtl.instrs[i]
            for reg in instr.defs:
                if _is_virtual(reg):
                    extend(reg, i)
            for reg in instr.uses:
                if _is_virtual(reg):
                    extend(reg, i)
    return intervals


def allocate_registers(rtl: RTLFunction,
                       target: Union[TargetDescription, str, None] = None,
                       ) -> RTLFunction:
    """Run linear scan; returns *rtl* rewritten onto physical registers.

    The register file comes from *target* (default: the function's own
    target, falling back to the registry default)."""
    tgt = resolve_target(target) if target is not None else rtl.target_desc
    rtl.target = tgt
    intervals = live_intervals(rtl)
    order = sorted(intervals.items(), key=lambda kv: (kv[1][0], kv[1][1]))

    free: List[str] = list(tgt.allocatable_regs)
    active: List[Tuple[int, str, str]] = []  # (end, vreg, phys)
    assignment: Dict[str, str] = {}
    spilled: Dict[str, int] = {}

    def expire(start: int) -> None:
        nonlocal active
        keep = []
        for end, vreg, phys in active:
            if end < start:
                free.append(phys)
            else:
                keep.append((end, vreg, phys))
        active = keep

    for vreg, (start, end) in order:
        expire(start)
        if free:
            # Prefer the lowest-numbered free register so short-lived
            # values reuse the same few registers (fewer saved regs =>
            # smaller prologues).
            free.sort()
            phys = free.pop(0)
            assignment[vreg] = phys
            active.append((end, vreg, phys))
            active.sort()
        else:
            # Spill the active interval with the furthest end point if it
            # ends later than the current one; otherwise spill current.
            furthest_end, furthest_vreg, furthest_phys = active[-1]
            if furthest_end > end:
                assignment[vreg] = furthest_phys
                spilled[furthest_vreg] = len(spilled)
                del assignment[furthest_vreg]
                active[-1] = (end, vreg, furthest_phys)
                active.sort()
            else:
                spilled[vreg] = len(spilled)

    rtl.frame_slots = len(spilled)

    scratch0, scratch1 = tgt.scratch_regs
    slot_bytes = tgt.word_size
    new_instrs: List[RInstr] = []
    for instr in rtl.instrs:
        if instr.op == "label":
            new_instrs.append(instr)
            continue
        reloads: List[RInstr] = []
        stores: List[RInstr] = []
        scratch_pool = [scratch0, scratch1]
        local_map: Dict[str, str] = {}

        def map_reg(reg: str, for_def: bool) -> str:
            if not _is_virtual(reg):
                return reg
            if reg in assignment:
                return assignment[reg]
            if reg not in spilled:
                # Defined but never used (dead def that survived): give it
                # a scratch register, no store needed for correctness but
                # keep one for uniformity.
                if reg not in local_map:
                    if not scratch_pool:
                        raise AllocationError(
                            f"{rtl.name}: out of scratch registers")
                    local_map[reg] = scratch_pool.pop(0)
                return local_map[reg]
            slot = spilled[reg]
            if reg not in local_map:
                if scratch_pool:
                    local_map[reg] = scratch_pool.pop(0)
                elif for_def:
                    # A def may reuse a use's scratch: the instruction
                    # reads its sources before writing its destination.
                    local_map[reg] = scratch0
                else:
                    raise AllocationError(
                        f"{rtl.name}: out of scratch registers for spills")
                if not for_def:
                    reloads.append(RInstr("lw", defs=(local_map[reg],),
                                          uses=("sp",),
                                          imm=slot_bytes * slot,
                                          comment=f"reload {reg}"))
            if for_def:
                stores.append(RInstr("sw", uses=(local_map[reg], "sp"),
                                     imm=slot_bytes * slot,
                                     comment=f"spill {reg}"))
            return local_map[reg]

        new_uses = tuple(map_reg(r, for_def=False) for r in instr.uses)
        new_defs = tuple(map_reg(r, for_def=True) for r in instr.defs)
        new_instrs.extend(reloads)
        new_instrs.append(RInstr(instr.op, defs=new_defs, uses=new_uses,
                                 imm=instr.imm, symbol=instr.symbol,
                                 target=instr.target, table=instr.table,
                                 comment=instr.comment))
        new_instrs.extend(stores)
    rtl.instrs = new_instrs
    # Saved registers: exactly the callee-saved registers the final
    # stream touches (scratch registers are the caller's problem).
    used = {reg for instr in new_instrs
            for reg in tuple(instr.defs) + tuple(instr.uses)
            if reg in tgt.allocatable_regs}
    rtl.saved_regs = tuple(sorted(used))
    return rtl
