"""RT16: a compact Thumb-like 16-bit-encoding target.

Same 32-bit data words as RT32, but most instructions encode in two
bytes — the classic code-density play of Thumb/RV32C class ISAs, and the
second registered target that proves the backend is genuinely
retargetable.  The compact encoding buys its density with:

* a narrower ``li`` immediate (8-bit signed; anything wider needs the
  6-byte ``li32`` mov/movt pair) and a matching 8-bit ALU immediate;
* a smaller allocatable register file (six ``s`` registers instead of
  ten), so high-pressure functions spill earlier;
* a *wider* jump-table dispatch: without a single-instruction ``jt`` the
  bounds check, scale and indirect jump take 18 bytes of setup, so the
  ``-Os`` switch-lowering cost model leans toward compare chains — a
  genuinely different lowering decision than RT32 makes on the same
  GIMPLE (multiply/divide also stay 4-byte, as compact ISAs keep them
  in the 32-bit encoding plane).
"""

from __future__ import annotations

from .description import TargetDescription
from .registry import register_target

__all__ = ["RT16"]

_HALF = 2      # compact encoding
_WORD = 4      # 32-bit encoding plane (mul/div, call, set/branch forms)

INSN_SIZES = {
    # pseudo
    "label": 0,
    # moves / ABI shuffles
    "mv": _HALF, "argmv": _HALF, "retmv": _HALF,
    # constants and addresses (li32/la = mov + movt pair)
    "li": _HALF, "li32": 6, "la": 6,
    # ALU (mul/div/mod live in the 32-bit encoding plane)
    "add": _HALF, "sub": _HALF, "mul": _WORD, "div": _WORD, "mod": _WORD,
    "neg": _HALF, "addi": _HALF,
    # compare-and-set
    "seteq": _WORD, "setne": _WORD, "setlt": _WORD,
    "setle": _WORD, "setgt": _WORD, "setge": _WORD,
    "seteqi": _WORD, "setnei": _WORD, "setlti": _WORD,
    "setlei": _WORD, "setgti": _WORD, "setgei": _WORD,
    # memory
    "lw": _HALF, "sw": _HALF, "lwg": 6, "swg": 6,
    # control flow
    "b": _HALF, "bnez": _HALF, "beqz": _HALF, "ret": _HALF,
    "call": _WORD, "callr": _HALF, "jt": 18,
    # fused compare-branches cost one set, as on RT32
    "beq": _WORD, "bne": _WORD, "blt": _WORD,
    "ble": _WORD, "bgt": _WORD, "bge": _WORD,
    "beqi": _WORD, "bnei": _WORD, "blti": _WORD,
    "blei": _WORD, "bgti": _WORD, "bgei": _WORD,
    # stack / frame
    "push": _HALF, "pop": _HALF, "addsp": _HALF,
}

# replace=True: the builtin must win (and never crash) even if other
# code registered a target under this name before the lazy builtin load.
RT16 = register_target(TargetDescription(
    name="rt16",
    description="compact 16-bit encodings, Thumb-like",
    word_size=4,
    allocatable_regs=tuple(f"s{i}" for i in range(6)),
    scratch_regs=("t0", "t1"),
    insn_sizes=INSN_SIZES,
    compare_chain_per_case=INSN_SIZES["beqi"],
    jump_table_overhead=INSN_SIZES["jt"] + INSN_SIZES["b"],
    jump_table_entry_size=4,
    imm16_min=-128,
    imm16_max=127,
    small_imm_min=-128,
    small_imm_max=127,
), replace=True)
