"""Target descriptions: everything the backend needs to know about an ISA.

The paper's experiments report "the size of the generated assembly code",
which only means something relative to a concrete target: how many bytes
each mnemonic encodes to, how many registers the allocator may use, and
what the switch-lowering cost model looks like.  The seed hard-coded one
ISA (RT32); a :class:`TargetDescription` captures those facts as *data*
so the same backend — instruction selection, register allocation,
peephole, size accounting — runs unchanged against any registered target.

The shape follows the classic retargetable-compiler split: a
target-agnostic engine parameterized by per-target constants supplied by
each description (cf. GCC's ``*.md`` machine descriptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

__all__ = ["TargetDescription", "TargetError"]


class TargetError(ValueError):
    """Raised when a target description is internally inconsistent."""


@dataclass(frozen=True)
class TargetDescription:
    """One ISA, as seen by the RTL backend.

    ``insn_sizes`` maps every RTL mnemonic the backend may emit to its
    encoded size in bytes (``label`` must be present with size 0).  The
    register file is split into ``allocatable_regs`` (callee-saved, in
    allocation-preference order) and ``scratch_regs`` (the two reload
    temporaries the spiller uses).  The remaining constants drive the
    switch-lowering cost model and the immediate-operand classification
    in instruction selection.
    """

    name: str
    description: str
    word_size: int                       # bytes per data word / spill slot
    allocatable_regs: Tuple[str, ...]    # callee-saved, allocation order
    scratch_regs: Tuple[str, str]        # spill reload temporaries
    insn_sizes: Mapping[str, int]        # mnemonic -> encoded bytes
    #: text bytes one compare-chain case costs (one fused ``beqi``)
    compare_chain_per_case: int
    #: text bytes of the jump-table dispatch sequence (+ out-of-range b)
    jump_table_overhead: int
    #: rodata bytes per jump-table slot
    jump_table_entry_size: int = 4
    #: range of the ``li`` (load-immediate) encoding; larger goes ``li32``
    imm16_min: int = -32768
    imm16_max: int = 32767
    #: range of the immediate field folded into ALU/compare instructions
    small_imm_min: int = -2048
    small_imm_max: int = 2047

    def __post_init__(self) -> None:
        if not self.name:
            raise TargetError("target needs a non-empty name")
        if self.word_size <= 0:
            raise TargetError(f"{self.name}: word_size must be positive")
        if "label" not in self.insn_sizes or self.insn_sizes["label"] != 0:
            raise TargetError(
                f"{self.name}: insn_sizes must map 'label' to size 0")
        for op, size in self.insn_sizes.items():
            if op != "label" and size <= 0:
                raise TargetError(
                    f"{self.name}: mnemonic {op!r} has non-positive "
                    f"size {size}")
        if len(self.scratch_regs) != 2:
            raise TargetError(
                f"{self.name}: exactly two scratch registers required")
        overlap = set(self.allocatable_regs) & set(self.scratch_regs)
        if overlap:
            raise TargetError(
                f"{self.name}: registers {sorted(overlap)} are both "
                f"allocatable and scratch")

    # -- instruction sizing ------------------------------------------------
    def insn_size(self, op: str) -> int:
        """Encoded size of *op* in bytes; ``KeyError`` on unknown ops."""
        return self.insn_sizes[op]

    def has_insn(self, op: str) -> bool:
        return op in self.insn_sizes

    # -- immediate classification -----------------------------------------
    def fits_imm16(self, value: int) -> bool:
        """Does *value* fit the target's ``li`` immediate encoding?"""
        return self.imm16_min <= value <= self.imm16_max

    def fits_small_imm(self, value: int) -> bool:
        """Does *value* fit the ALU/compare immediate field?"""
        return self.small_imm_min <= value <= self.small_imm_max

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name} ({self.description}; "
                f"{len(self.allocatable_regs)} allocatable regs, "
                f"{self.word_size * 8}-bit words)")
