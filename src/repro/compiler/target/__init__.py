"""Pluggable target descriptions for the RTL backend.

``TargetDescription`` carries everything the backend needs to know about
an ISA (register file, per-mnemonic encoded sizes, switch-lowering cost
constants, immediate ranges); the registry maps names to descriptions so
drivers and CLIs can select targets with a string.  Two targets ship
built in:

* ``rt32`` — the reference 32-bit RISC the seed's measurements use;
* ``rt16`` — a compact Thumb-like encoding proving retargetability.
"""

from .description import TargetDescription, TargetError
from .registry import (DEFAULT_TARGET_NAME, UnknownTargetError,
                       available_targets, get_target, register_target,
                       resolve_target)
from .rt16 import RT16
from .rt32 import RT32

__all__ = [
    "TargetDescription", "TargetError",
    "DEFAULT_TARGET_NAME", "UnknownTargetError", "available_targets",
    "get_target", "register_target", "resolve_target",
    "RT16", "RT32",
]
