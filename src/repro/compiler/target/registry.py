"""Registry of available targets.

The driver, the pipeline and the experiment CLI all refer to targets by
name (``--target rt16``); the registry is the single mapping from those
names to :class:`~.description.TargetDescription` instances.  Built-in
targets register themselves on import; out-of-tree targets call
:func:`register_target` the same way.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from .description import TargetDescription

__all__ = ["UnknownTargetError", "register_target", "get_target",
           "available_targets", "resolve_target", "DEFAULT_TARGET_NAME"]

#: Name used whenever a caller does not specify a target (the seed's ISA).
DEFAULT_TARGET_NAME = "rt32"

_REGISTRY: Dict[str, TargetDescription] = {}
_BUILTINS_LOADED = False


class UnknownTargetError(KeyError):
    """Raised when a target name is not registered."""

    def __init__(self, name: str, available: Tuple[str, ...]) -> None:
        super().__init__(name)
        self.target_name = name
        self.available = available

    def __str__(self) -> str:
        return (f"unknown target {self.target_name!r}; available: "
                f"{', '.join(self.available) or '<none>'}")


def _ensure_builtins() -> None:
    """Import the built-in target modules (they self-register).

    The flag is only set after a successful import: a failed builtin
    import must surface again on the next call, not leave the registry
    silently empty.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from . import rt16, rt32  # noqa: F401  (import for side effect)
    _BUILTINS_LOADED = True


def register_target(target: TargetDescription,
                    replace: bool = False) -> TargetDescription:
    """Make *target* available under its name; returns it for chaining."""
    if target.name in _REGISTRY and not replace \
            and _REGISTRY[target.name] is not target:
        raise ValueError(f"target {target.name!r} already registered; "
                         f"pass replace=True to override")
    _REGISTRY[target.name] = target
    return target


def get_target(name: str) -> TargetDescription:
    """Look up a target by name; raises :class:`UnknownTargetError`."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTargetError(name, available_targets()) from None


def available_targets() -> Tuple[str, ...]:
    """Registered target names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def resolve_target(target: Union[TargetDescription, str, None]
                   ) -> TargetDescription:
    """Accept a description, a name, or None (-> the default target)."""
    if target is None:
        return get_target(DEFAULT_TARGET_NAME)
    if isinstance(target, TargetDescription):
        return target
    return get_target(target)
