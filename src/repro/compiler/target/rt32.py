"""RT32: the reproduction's reference 32-bit RISC target.

A classic fixed-width RISC in the paper's RTES spirit: 32-bit words,
4-byte base encodings, and a register file with ten callee-saved ``s``
registers plus two caller-saved ``t`` scratch registers the spiller
uses.  Compare-and-set (and the fused compare-branches the peephole
produces) need a double word — which is exactly why fusing
``set<cc>; bnez`` into ``b<cc>`` saves one full 8-byte set.

This module doubles as the compatibility surface the seed tests pin
down: ``ALLOCATABLE_REGS``, ``SCRATCH_REGS``, ``INSN_SIZES``,
``insn_size``, ``fits_imm16`` and the switch-lowering cost constants are
re-exported at module level, all backed by the :data:`RT32`
:class:`~.description.TargetDescription`.
"""

from __future__ import annotations

from .description import TargetDescription
from .registry import register_target

__all__ = ["RT32", "ALLOCATABLE_REGS", "SCRATCH_REGS", "INSN_SIZES",
           "COMPARE_CHAIN_PER_CASE", "JUMP_TABLE_OVERHEAD",
           "insn_size", "fits_imm16"]

_WORD = 4      # base encoding width
_DOUBLE = 8    # compare/set, wide-immediate and global-address forms

INSN_SIZES = {
    # pseudo
    "label": 0,
    # moves / ABI shuffles
    "mv": _WORD, "argmv": _WORD, "retmv": _WORD,
    # constants and addresses
    "li": _WORD, "li32": _DOUBLE, "la": _DOUBLE,
    # ALU
    "add": _WORD, "sub": _WORD, "mul": _WORD, "div": _WORD, "mod": _WORD,
    "neg": _WORD, "addi": _WORD,
    # compare-and-set (register and immediate forms)
    "seteq": _DOUBLE, "setne": _DOUBLE, "setlt": _DOUBLE,
    "setle": _DOUBLE, "setgt": _DOUBLE, "setge": _DOUBLE,
    "seteqi": _DOUBLE, "setnei": _DOUBLE, "setlti": _DOUBLE,
    "setlei": _DOUBLE, "setgti": _DOUBLE, "setgei": _DOUBLE,
    # memory
    "lw": _WORD, "sw": _WORD, "lwg": _DOUBLE, "swg": _DOUBLE,
    # control flow
    "b": _WORD, "bnez": _WORD, "beqz": _WORD, "ret": _WORD,
    "call": _WORD, "callr": _WORD, "jt": 12,
    # fused compare-branches: one set's worth of encoding, not set+branch
    "beq": _DOUBLE, "bne": _DOUBLE, "blt": _DOUBLE,
    "ble": _DOUBLE, "bgt": _DOUBLE, "bge": _DOUBLE,
    "beqi": _DOUBLE, "bnei": _DOUBLE, "blti": _DOUBLE,
    "blei": _DOUBLE, "bgti": _DOUBLE, "bgei": _DOUBLE,
    # stack / frame
    "push": _WORD, "pop": _WORD, "addsp": _WORD,
}

ALLOCATABLE_REGS = tuple(f"s{i}" for i in range(10))
SCRATCH_REGS = ("t0", "t1")

#: one fused ``beqi`` per case in a compare chain
COMPARE_CHAIN_PER_CASE = INSN_SIZES["beqi"]
#: the ``jt`` dispatch sequence plus the out-of-range fallback branch
JUMP_TABLE_OVERHEAD = INSN_SIZES["jt"] + INSN_SIZES["b"]

# replace=True: the builtin must win (and never crash) even if other
# code registered a target under this name before the lazy builtin load.
RT32 = register_target(TargetDescription(
    name="rt32",
    description="32-bit RISC, 4-byte base encodings",
    word_size=4,
    allocatable_regs=ALLOCATABLE_REGS,
    scratch_regs=SCRATCH_REGS,
    insn_sizes=INSN_SIZES,
    compare_chain_per_case=COMPARE_CHAIN_PER_CASE,
    jump_table_overhead=JUMP_TABLE_OVERHEAD,
    jump_table_entry_size=4,
    imm16_min=-32768,
    imm16_max=32767,
    small_imm_min=-2048,
    small_imm_max=2047,
), replace=True)


def insn_size(op: str) -> int:
    """Encoded size of *op* on RT32; ``KeyError`` on unknown mnemonics."""
    return RT32.insn_size(op)


def fits_imm16(value: int) -> bool:
    """Does *value* fit RT32's 16-bit ``li`` immediate?"""
    return RT32.fits_imm16(value)
