"""MGCC: the GCC-shaped optimizing compiler substrate.

Pipeline: C++ subset AST -> GIMPLE (frontend) -> SSA optimizations
(CCP, copy propagation, DCE, CFG cleanup, inlining) -> RTL instruction
selection (jump-table/compare-chain switch lowering) -> linear-scan
register allocation -> peephole -> assembly with byte-accurate size
accounting for any registered target (``rt32`` by default, compact
``rt16`` built in; see :mod:`repro.compiler.target`).

Main public names: :func:`compile_unit` / :func:`compile_program`
(drive the pipeline at an :class:`OptLevel`, returning a
:class:`CompileResult` around an :class:`AsmModule`),
:func:`lower_unit` / :func:`mangle` / :class:`ClassLayout` (frontend),
and the target registry re-exports (:class:`TargetDescription`,
:func:`get_target`, :func:`resolve_target`, :func:`available_targets`).
"""

from .asm import AsmModule
from .driver import CompileResult, OptLevel, compile_program, compile_unit
from .frontend.lower import ClassLayout, LoweringError, lower_unit, mangle
from .gimple.ir import Program
from .target import (TargetDescription, UnknownTargetError,
                     available_targets, get_target, register_target,
                     resolve_target)
from .units import (CompilationUnit, DeltaStats, LinkError, UnitArtifact,
                    UnitPlan, compile_program_incremental, link_units,
                    split_units)

__all__ = [
    "AsmModule", "CompileResult", "OptLevel", "compile_program",
    "compile_unit", "ClassLayout", "LoweringError", "lower_unit", "mangle",
    "Program",
    "TargetDescription", "UnknownTargetError", "available_targets",
    "get_target", "register_target", "resolve_target",
    "CompilationUnit", "DeltaStats", "LinkError", "UnitArtifact",
    "UnitPlan", "compile_program_incremental", "link_units", "split_units",
]
