"""GIMPLE: MGCC's mid-level IR and its execution substrate.

Modules and main public names:

* :mod:`.ir` — :class:`Program`, :class:`GimpleFunction`,
  :class:`BasicBlock`, instructions/terminators, :class:`DataObject`;
* :mod:`.cfg` — successor/predecessor maps,
  :func:`remove_unreachable_blocks`;
* :mod:`.dom` — dominator tree and frontiers for SSA construction;
* :mod:`.ssa` — :func:`to_ssa` / :func:`from_ssa` / :func:`verify_ssa`;
* :mod:`.interp` — :class:`GimpleInterpreter`, the mid-level "board"
  that differentially tests generated code against the model (the
  instruction-level analogue lives in :mod:`repro.vm`).
"""
