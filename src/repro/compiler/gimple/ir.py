"""MGCC middle-end IR ("GIMPLE").

A three-address, basic-block IR modeled on GCC's GIMPLE (paper §II.C:
since GCC 4.0 the middle end works on a tree/SSA form because "most of
the discovered optimization algorithms are mathematical ones that need to
be executed on a higher abstract level than the RTL").

Values are virtual registers (:class:`Reg`) or integer immediates.
Memory is explicit: ``Load``/``Store`` go through a base register +
constant offset; globals are addressed by symbol.  Functions own an
ordered mapping of labeled basic blocks, each ending in exactly one
terminator.  ``Phi`` instructions appear only between SSA construction
and SSA destruction.

The IR is deliberately *not* typed beyond word/pointer uniformity: the
RT32 target is ILP32 and every scalar the C++ subset can produce fits in
one 32-bit word, exactly the simplification embedded compilers of the
paper's era made in their RTL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Reg", "Operand", "Instr", "Const", "Move", "BinOp", "UnOp",
    "Load", "Store", "LoadGlobal", "StoreGlobal", "LoadAddr",
    "Call", "CallIndirect", "Phi",
    "Terminator", "Jump", "Branch", "SwitchTerm", "Ret",
    "BasicBlock", "GimpleFunction", "DataItem", "SymbolRef", "DataObject",
    "Program", "IRError",
]

BIN_OPS = {"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="}
UN_OPS = {"-", "!"}


class IRError(Exception):
    """Raised on malformed IR constructions."""


@dataclass(frozen=True)
class Reg:
    """A virtual register.  ``version`` is used by SSA renaming."""

    name: str
    version: int = 0

    def __str__(self) -> str:
        if self.version:
            return f"%{self.name}.{self.version}"
        return f"%{self.name}"


Operand = Union[Reg, int]


def _fmt(op: Operand) -> str:
    return str(op)


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

class Instr:
    """Base class: one non-terminator instruction.

    Every concrete instruction exposes ``dst`` — either as a dataclass
    field (value-producing instructions) or as a ``None`` class attribute
    (pure effects like stores).  The attribute is deliberately *not*
    declared here: an inherited class-attribute default would leak into
    subclass dataclass field ordering.
    """

    def uses(self) -> List[Reg]:
        """Registers read by this instruction."""
        return [op for op in self._operands() if isinstance(op, Reg)]

    def _operands(self) -> Sequence[Operand]:
        return ()

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> "Instr":
        """Return a copy with uses substituted per *mapping*."""
        raise NotImplementedError

    @property
    def has_side_effects(self) -> bool:
        return False


@dataclass
class Const(Instr):
    dst: Reg
    value: int

    def _operands(self):
        return ()

    def replace_uses(self, mapping):
        return self

    def __str__(self):
        return f"{self.dst} = const {self.value}"


def _sub(op: Operand, mapping: Dict[Reg, Operand]) -> Operand:
    if isinstance(op, Reg) and op in mapping:
        return mapping[op]
    return op


@dataclass
class Move(Instr):
    dst: Reg
    src: Operand

    def _operands(self):
        return (self.src,)

    def replace_uses(self, mapping):
        return Move(self.dst, _sub(self.src, mapping))

    def __str__(self):
        return f"{self.dst} = {_fmt(self.src)}"


@dataclass
class BinOp(Instr):
    dst: Reg
    op: str
    a: Operand
    b: Operand

    def __post_init__(self):
        if self.op not in BIN_OPS:
            raise IRError(f"bad binary op {self.op!r}")

    def _operands(self):
        return (self.a, self.b)

    def replace_uses(self, mapping):
        return BinOp(self.dst, self.op, _sub(self.a, mapping),
                     _sub(self.b, mapping))

    def __str__(self):
        return f"{self.dst} = {_fmt(self.a)} {self.op} {_fmt(self.b)}"


@dataclass
class UnOp(Instr):
    dst: Reg
    op: str
    a: Operand

    def __post_init__(self):
        if self.op not in UN_OPS:
            raise IRError(f"bad unary op {self.op!r}")

    def _operands(self):
        return (self.a,)

    def replace_uses(self, mapping):
        return UnOp(self.dst, self.op, _sub(self.a, mapping))

    def __str__(self):
        return f"{self.dst} = {self.op}{_fmt(self.a)}"


@dataclass
class Load(Instr):
    """Word load: ``dst = *(base + offset)``."""

    dst: Reg
    base: Reg
    offset: int = 0

    def _operands(self):
        return (self.base,)

    def replace_uses(self, mapping):
        base = _sub(self.base, mapping)
        if not isinstance(base, Reg):
            raise IRError("load base folded to a constant")
        return Load(self.dst, base, self.offset)

    def __str__(self):
        return f"{self.dst} = load [{self.base}+{self.offset}]"


@dataclass
class Store(Instr):
    """Word store: ``*(base + offset) = src``."""

    base: Reg
    offset: int
    src: Operand
    dst = None

    def _operands(self):
        return (self.base, self.src)

    def replace_uses(self, mapping):
        base = _sub(self.base, mapping)
        if not isinstance(base, Reg):
            raise IRError("store base folded to a constant")
        return Store(base, self.offset, _sub(self.src, mapping))

    @property
    def has_side_effects(self):
        return True

    def __str__(self):
        return f"store [{self.base}+{self.offset}] = {_fmt(self.src)}"


@dataclass
class LoadGlobal(Instr):
    """``dst = symbol[offset]`` (word load from a global object)."""

    dst: Reg
    symbol: str
    offset: int = 0

    def replace_uses(self, mapping):
        return self

    def __str__(self):
        return f"{self.dst} = load @{self.symbol}+{self.offset}"


@dataclass
class StoreGlobal(Instr):
    """``symbol[offset] = src``."""

    symbol: str
    offset: int
    src: Operand
    dst = None

    def _operands(self):
        return (self.src,)

    def replace_uses(self, mapping):
        return StoreGlobal(self.symbol, self.offset, _sub(self.src, mapping))

    @property
    def has_side_effects(self):
        return True

    def __str__(self):
        return f"store @{self.symbol}+{self.offset} = {_fmt(self.src)}"


@dataclass
class LoadAddr(Instr):
    """``dst = &symbol`` — address of a global object or function."""

    dst: Reg
    symbol: str
    offset: int = 0

    def replace_uses(self, mapping):
        return self

    def __str__(self):
        return f"{self.dst} = addr @{self.symbol}+{self.offset}"


@dataclass
class Call(Instr):
    """Direct call.  ``dst`` may be None for void calls."""

    dst: Optional[Reg]
    callee: str
    args: Tuple[Operand, ...] = ()

    def _operands(self):
        return self.args

    def replace_uses(self, mapping):
        return Call(self.dst, self.callee,
                    tuple(_sub(a, mapping) for a in self.args))

    @property
    def has_side_effects(self):
        return True

    def __str__(self):
        args = ", ".join(_fmt(a) for a in self.args)
        lhs = f"{self.dst} = " if self.dst else ""
        return f"{lhs}call @{self.callee}({args})"


@dataclass
class CallIndirect(Instr):
    """Call through a register (vtable slot / table function pointer)."""

    dst: Optional[Reg]
    target: Reg
    args: Tuple[Operand, ...] = ()

    def _operands(self):
        return (self.target,) + tuple(self.args)

    def replace_uses(self, mapping):
        target = _sub(self.target, mapping)
        if not isinstance(target, Reg):
            raise IRError("indirect call target folded to a constant")
        return CallIndirect(self.dst, target,
                            tuple(_sub(a, mapping) for a in self.args))

    @property
    def has_side_effects(self):
        return True

    def __str__(self):
        args = ", ".join(_fmt(a) for a in self.args)
        lhs = f"{self.dst} = " if self.dst else ""
        return f"{lhs}call_indirect {self.target}({args})"


@dataclass
class Phi(Instr):
    """SSA phi node: value per predecessor block label."""

    dst: Reg
    incoming: Dict[str, Operand] = field(default_factory=dict)

    def _operands(self):
        return tuple(self.incoming.values())

    def replace_uses(self, mapping):
        return Phi(self.dst, {lbl: _sub(v, mapping)
                              for lbl, v in self.incoming.items()})

    def __str__(self):
        inc = ", ".join(f"[{l}: {_fmt(v)}]"
                        for l, v in sorted(self.incoming.items()))
        return f"{self.dst} = phi {inc}"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------

class Terminator:
    """Base class: the single control-transfer ending a block."""

    def successors(self) -> List[str]:
        return []

    def uses(self) -> List[Reg]:
        return []

    def replace_uses(self, mapping: Dict[Reg, Operand]) -> "Terminator":
        return self

    def retarget(self, mapping: Dict[str, str]) -> "Terminator":
        """Return a copy with successor labels substituted."""
        return self


@dataclass
class Jump(Terminator):
    target: str

    def successors(self):
        return [self.target]

    def retarget(self, mapping):
        return Jump(mapping.get(self.target, self.target))

    def __str__(self):
        return f"jump {self.target}"


@dataclass
class Branch(Terminator):
    cond: Operand
    if_true: str
    if_false: str

    def successors(self):
        return [self.if_true, self.if_false]

    def uses(self):
        return [self.cond] if isinstance(self.cond, Reg) else []

    def replace_uses(self, mapping):
        return Branch(_sub(self.cond, mapping), self.if_true, self.if_false)

    def retarget(self, mapping):
        return Branch(self.cond, mapping.get(self.if_true, self.if_true),
                      mapping.get(self.if_false, self.if_false))

    def __str__(self):
        return f"branch {_fmt(self.cond)} ? {self.if_true} : {self.if_false}"


@dataclass
class SwitchTerm(Terminator):
    """Multi-way dispatch (the C++ ``switch`` reaches the backend intact,
    like GCC's GIMPLE_SWITCH, so the backend can choose between a jump
    table and a compare chain)."""

    value: Operand
    cases: Dict[int, str] = field(default_factory=dict)
    default: str = ""

    def successors(self):
        # Deduplicate while preserving order.
        seen = []
        for label in list(self.cases.values()) + [self.default]:
            if label and label not in seen:
                seen.append(label)
        return seen

    def uses(self):
        return [self.value] if isinstance(self.value, Reg) else []

    def replace_uses(self, mapping):
        return SwitchTerm(_sub(self.value, mapping), dict(self.cases),
                          self.default)

    def retarget(self, mapping):
        return SwitchTerm(self.value,
                          {k: mapping.get(v, v) for k, v in self.cases.items()},
                          mapping.get(self.default, self.default))

    def __str__(self):
        cases = ", ".join(f"{k}->{v}" for k, v in sorted(self.cases.items()))
        return f"switch {_fmt(self.value)} [{cases}] default {self.default}"


@dataclass
class Ret(Terminator):
    value: Optional[Operand] = None

    def uses(self):
        return [self.value] if isinstance(self.value, Reg) else []

    def replace_uses(self, mapping):
        return Ret(_sub(self.value, mapping) if self.value is not None
                   else None)

    def __str__(self):
        return f"ret {_fmt(self.value)}" if self.value is not None else "ret"


# ---------------------------------------------------------------------------
# Containers
# ---------------------------------------------------------------------------

@dataclass
class BasicBlock:
    label: str
    instrs: List[Instr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def add(self, instr: Instr) -> Instr:
        if self.terminator is not None:
            raise IRError(f"block {self.label} already terminated")
        self.instrs.append(instr)
        return instr

    def phis(self) -> List[Phi]:
        return [i for i in self.instrs if isinstance(i, Phi)]

    def non_phis(self) -> List[Instr]:
        return [i for i in self.instrs if not isinstance(i, Phi)]

    def __str__(self):
        lines = [f"{self.label}:"]
        lines.extend(f"  {i}" for i in self.instrs)
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


class GimpleFunction:
    """One function in GIMPLE form."""

    def __init__(self, name: str, params: Optional[List[Reg]] = None) -> None:
        self.name = name
        self.params: List[Reg] = list(params or [])
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry: str = ""
        self._label_counter = itertools.count()
        self._reg_counter = itertools.count()

    # -- construction ---------------------------------------------------
    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{next(self._label_counter)}"
        block = BasicBlock(label)
        self.blocks[label] = block
        if not self.entry:
            self.entry = label
        return block

    def new_reg(self, hint: str = "t") -> Reg:
        return Reg(f"{hint}{next(self._reg_counter)}")

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    # -- queries ----------------------------------------------------------
    def iter_blocks(self) -> Iterator[BasicBlock]:
        """Blocks in insertion order (entry first)."""
        return iter(self.blocks.values())

    def instr_count(self) -> int:
        return sum(len(b.instrs) + 1 for b in self.blocks.values())

    def check(self) -> None:
        """Structural sanity: every block terminated, all targets exist."""
        for block in self.blocks.values():
            if block.terminator is None:
                raise IRError(f"{self.name}: block {block.label} lacks a "
                              "terminator")
            for succ in block.terminator.successors():
                if succ not in self.blocks:
                    raise IRError(f"{self.name}: {block.label} targets "
                                  f"unknown block {succ}")

    def __str__(self):
        params = ", ".join(str(p) for p in self.params)
        lines = [f"function {self.name}({params}) {{"]
        for block in self.iter_blocks():
            lines.append(str(block))
        lines.append("}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Data / program
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SymbolRef:
    """A word-sized reference to another symbol (vtable slots, table
    function pointers, pointers between globals)."""

    symbol: str


DataItem = Union[int, SymbolRef]


@dataclass
class DataObject:
    """A statically-initialized global: a sequence of data words.

    ``section`` is ``"rodata"`` (const tables, vtables), ``"data"``
    (initialized mutables) or ``"bss"`` (zero-initialized; contributes no
    image bytes in the paper's .s-size sense but is reported separately).
    ``word_size`` is 4 for ordinary 32-bit data; backends may store
    compact tables (e.g. a target's jump-table slots) with a different
    per-entry size.
    """

    name: str
    words: List[DataItem] = field(default_factory=list)
    section: str = "data"
    word_size: int = 4

    @property
    def size(self) -> int:
        return self.word_size * len(self.words)


class Program:
    """A lowered translation unit: functions + global data + metadata."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, GimpleFunction] = {}
        self.data: Dict[str, DataObject] = {}
        self.externs: List[str] = []

    def add_function(self, fn: GimpleFunction) -> GimpleFunction:
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_data(self, obj: DataObject) -> DataObject:
        if obj.name in self.data:
            raise IRError(f"duplicate data object {obj.name!r}")
        self.data[obj.name] = obj
        return obj

    def check(self) -> None:
        for fn in self.functions.values():
            fn.check()

    def dump(self) -> str:
        """Textual IR dump (the ``-fdump-tree`` analogue used by tests to
        check what survives each pass)."""
        parts = [f"; program {self.name}"]
        for obj in self.data.values():
            words = ", ".join(
                f"@{w.symbol}" if isinstance(w, SymbolRef) else str(w)
                for w in obj.words)
            parts.append(f"{obj.section} {obj.name}: [{words}]")
        for fn in self.functions.values():
            parts.append(str(fn))
        return "\n".join(parts)
