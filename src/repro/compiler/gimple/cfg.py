"""Control-flow graph utilities over GIMPLE functions.

GCC must *reconstruct* control flow from sequential code before it can
optimize (paper §IV.A: "GCC has to build the control flow graph of this
sequential form"); MGCC does the same from its block terminators.  The
model level never needs this step — the state graph *is* the CFG — which
is exactly the asymmetry the paper exploits.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ir import BasicBlock, GimpleFunction, Phi

__all__ = ["successors", "predecessors", "reachable_blocks",
           "remove_unreachable_blocks", "reverse_postorder"]


def successors(fn: GimpleFunction) -> Dict[str, List[str]]:
    """Map label -> successor labels."""
    return {label: block.terminator.successors()
            for label, block in fn.blocks.items()}


def predecessors(fn: GimpleFunction) -> Dict[str, List[str]]:
    """Map label -> predecessor labels (in deterministic order)."""
    preds: Dict[str, List[str]] = {label: [] for label in fn.blocks}
    for label, block in fn.blocks.items():
        for succ in block.terminator.successors():
            preds[succ].append(label)
    return preds


def reachable_blocks(fn: GimpleFunction) -> Set[str]:
    """Labels reachable from the entry block."""
    seen: Set[str] = set()
    stack = [fn.entry]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(fn.blocks[label].terminator.successors())
    return seen


def remove_unreachable_blocks(fn: GimpleFunction) -> int:
    """Delete CFG-unreachable blocks; returns how many were removed.

    Phi inputs from removed predecessors are pruned.  Note what this pass
    can and cannot do: a ``case`` arm of a runtime switch is *reachable*
    (the switch terminator targets it), so the generated code of the
    paper's unreachable state S2 survives — the compiler-level analogue of
    the model-level reachability analysis sees nothing to remove.
    """
    live = reachable_blocks(fn)
    doomed = [label for label in fn.blocks if label not in live]
    for label in doomed:
        del fn.blocks[label]
    if doomed:
        gone = set(doomed)
        for block in fn.blocks.values():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, Phi):
                    block.instrs[i] = Phi(
                        instr.dst,
                        {lbl: val for lbl, val in instr.incoming.items()
                         if lbl not in gone})
    return len(doomed)


def reverse_postorder(fn: GimpleFunction) -> List[str]:
    """Labels in reverse postorder (good iteration order for dataflow)."""
    seen: Set[str] = set()
    order: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(fn.blocks[label].terminator.successors()))]
        seen.add(label)
        while stack:
            current, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(
                        (succ, iter(fn.blocks[succ].terminator.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(fn.entry)
    order.reverse()
    return order
