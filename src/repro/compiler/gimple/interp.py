"""GIMPLE program interpreter ("the RT32 board").

Executes a lowered :class:`~repro.compiler.gimple.ir.Program` with a flat
word-addressed memory, so that generated state-machine code can actually
*run* — before or after the optimization passes.  This is the
reproduction's execution substrate, used to

* differentially test the three code generators against the UML model
  interpreter (the generated C++ must behave like the model), and
* validate the compiler: a program must behave identically at every
  optimization level (translation validation for MGCC).

Memory model: every :class:`DataObject` is placed at a word-aligned
address; function symbols get odd sentinel "addresses" so indirect calls
can be resolved; external functions are Python callables supplied by the
test harness (calls are recorded in order, like the model trace).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .ir import (BasicBlock, BinOp, Branch, Call, CallIndirect, Const,
                 GimpleFunction, Instr, Jump, Load, LoadAddr, LoadGlobal,
                 Move, Operand, Phi, Program, Reg, Ret, Store, StoreGlobal,
                 SwitchTerm, SymbolRef, UnOp)

__all__ = ["GimpleInterpreter", "InterpError"]

_DATA_BASE = 0x1000_0000
_FUNC_BASE = 0x0100_0001  # odd: data addresses are word aligned


class InterpError(Exception):
    """Raised on runtime errors in interpreted GIMPLE."""


def _wrap(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


class GimpleInterpreter:
    """Executes functions of one program."""

    def __init__(self, program: Program,
                 externals: Optional[Mapping[str, Callable]] = None,
                 max_steps: int = 2_000_000) -> None:
        self.program = program
        self.externals = dict(externals or {})
        self.max_steps = max_steps
        self.call_log: List[Tuple[str, Tuple[int, ...]]] = []
        self.memory: Dict[int, int] = {}
        self.data_addr: Dict[str, int] = {}
        self.func_addr: Dict[str, int] = {}
        self.addr_func: Dict[int, str] = {}
        self._steps = 0
        self._place_data()

    # ------------------------------------------------------------------
    def _place_data(self) -> None:
        addr = _DATA_BASE
        # Function "addresses" first so data initializers can refer to them.
        next_func = _FUNC_BASE
        for name in self.program.functions:
            self.func_addr[name] = next_func
            self.addr_func[next_func] = name
            next_func += 2
        for obj in self.program.data.values():
            self.data_addr[obj.name] = addr
            addr += max(obj.size, 4) + 4  # one guard word between objects
        for obj in self.program.data.values():
            base = self.data_addr[obj.name]
            for i, word in enumerate(obj.words):
                self.memory[base + 4 * i] = self._resolve(word)

    def _resolve(self, word) -> int:
        if isinstance(word, SymbolRef):
            if word.symbol in self.data_addr:
                return self.data_addr[word.symbol]
            if word.symbol in self.func_addr:
                return self.func_addr[word.symbol]
            raise InterpError(f"unresolved symbol {word.symbol!r}")
        return int(word)

    def address_of(self, symbol: str) -> int:
        if symbol in self.data_addr:
            return self.data_addr[symbol]
        if symbol in self.func_addr:
            return self.func_addr[symbol]
        raise InterpError(f"unknown symbol {symbol!r}")

    # -- memory ------------------------------------------------------------
    def load_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def store_word(self, addr: int, value: int) -> None:
        self.memory[addr] = _wrap(value)

    def read_global(self, symbol: str, offset: int = 0) -> int:
        return self.load_word(self.address_of(symbol) + offset)

    def write_global(self, symbol: str, offset: int, value: int) -> None:
        self.store_word(self.address_of(symbol) + offset, value)

    # ------------------------------------------------------------------
    def call(self, name: str, args: Tuple[int, ...] = ()) -> int:
        """Call a program function (or external) by name."""
        if name in self.program.functions:
            return self._run_function(self.program.functions[name], args)
        return self._call_external(name, args)

    def _call_external(self, name: str, args: Tuple[int, ...]) -> int:
        self.call_log.append((name, tuple(args)))
        fn = self.externals.get(name)
        if fn is None:
            return 0
        result = fn(*args)
        return _wrap(int(result)) if result is not None else 0

    def _run_function(self, fn: GimpleFunction,
                      args: Tuple[int, ...]) -> int:
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name}: expected {len(fn.params)} args, got {len(args)}")
        regs: Dict[Reg, int] = dict(zip(fn.params, args))
        label = fn.entry
        prev_label: Optional[str] = None

        def value(op: Operand) -> int:
            if isinstance(op, int):
                return op
            try:
                return regs[op]
            except KeyError:
                raise InterpError(
                    f"{fn.name}: read of undefined register {op}") from None

        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise InterpError("step budget exceeded (runaway program?)")
            block = fn.blocks[label]
            # Phis evaluate in parallel from the incoming edge.
            phi_values = {}
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    if prev_label in instr.incoming:
                        phi_values[instr.dst] = value(
                            instr.incoming[prev_label])
                    # an absent edge value means undefined along this path
            regs.update(phi_values)
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    continue
                self._exec(fn, instr, regs, value)
            term = block.terminator
            if isinstance(term, Jump):
                prev_label, label = label, term.target
            elif isinstance(term, Branch):
                taken = term.if_true if value(term.cond) != 0 else term.if_false
                prev_label, label = label, taken
            elif isinstance(term, SwitchTerm):
                v = value(term.value)
                prev_label, label = label, term.cases.get(v, term.default)
            elif isinstance(term, Ret):
                return value(term.value) if term.value is not None else 0
            else:  # pragma: no cover - defensive
                raise InterpError(f"unknown terminator {term}")

    def _exec(self, fn: GimpleFunction, instr: Instr,
              regs: Dict[Reg, int], value) -> None:
        if isinstance(instr, Const):
            regs[instr.dst] = _wrap(instr.value)
        elif isinstance(instr, Move):
            regs[instr.dst] = value(instr.src)
        elif isinstance(instr, BinOp):
            regs[instr.dst] = self._binop(instr.op, value(instr.a),
                                          value(instr.b))
        elif isinstance(instr, UnOp):
            a = value(instr.a)
            regs[instr.dst] = _wrap(-a) if instr.op == "-" else int(a == 0)
        elif isinstance(instr, Load):
            regs[instr.dst] = self.load_word(value(instr.base) + instr.offset)
        elif isinstance(instr, Store):
            self.store_word(value(instr.base) + instr.offset,
                            value(instr.src))
        elif isinstance(instr, LoadGlobal):
            regs[instr.dst] = self.read_global(instr.symbol, instr.offset)
        elif isinstance(instr, StoreGlobal):
            self.write_global(instr.symbol, instr.offset, value(instr.src))
        elif isinstance(instr, LoadAddr):
            regs[instr.dst] = self.address_of(instr.symbol) + instr.offset
        elif isinstance(instr, Call):
            result = self.call(instr.callee,
                               tuple(value(a) for a in instr.args))
            if instr.dst is not None:
                regs[instr.dst] = result
        elif isinstance(instr, CallIndirect):
            target = value(instr.target)
            callee = self.addr_func.get(target)
            if callee is None:
                raise InterpError(
                    f"{fn.name}: indirect call to non-function address "
                    f"{target:#x}")
            result = self.call(callee, tuple(value(a) for a in instr.args))
            if instr.dst is not None:
                regs[instr.dst] = result
        else:  # pragma: no cover - defensive
            raise InterpError(f"unknown instruction {instr}")

    @staticmethod
    def _binop(op: str, a: int, b: int) -> int:
        if op == "+":
            return _wrap(a + b)
        if op == "-":
            return _wrap(a - b)
        if op == "*":
            return _wrap(a * b)
        if op in ("/", "%"):
            if b == 0:
                raise InterpError("division by zero")
            q = int(a / b)
            return _wrap(q) if op == "/" else _wrap(a - q * b)
        return int({
            "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
            "==": a == b, "!=": a != b,
        }[op])
