"""Dominator tree and dominance frontiers.

Implements Cooper, Harvey & Kennedy's "A Simple, Fast Dominance
Algorithm" — the standard practical choice, also used by GCC — feeding
SSA construction (Cytron et al., the paper's reference [6]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import predecessors, reverse_postorder
from .ir import GimpleFunction

__all__ = ["DomInfo", "compute_dominators"]


class DomInfo:
    """Immediate dominators, dominator-tree children and dominance
    frontiers for one function (unreachable blocks excluded)."""

    def __init__(self, idom: Dict[str, Optional[str]],
                 frontier: Dict[str, Set[str]],
                 rpo: List[str]) -> None:
        self.idom = idom
        self.frontier = frontier
        self.rpo = rpo
        self.children: Dict[str, List[str]] = {label: [] for label in idom}
        for label, parent in idom.items():
            if parent is not None and parent != label:
                self.children[parent].append(label)

    def dominates(self, a: str, b: str) -> bool:
        """True when *a* dominates *b* (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            parent = self.idom[node]
            node = parent if parent != node else None
        return False


def compute_dominators(fn: GimpleFunction) -> DomInfo:
    """Compute the dominator tree and dominance frontiers of *fn*.

    Assumes unreachable blocks were removed (callers run
    :func:`~repro.compiler.gimple.cfg.remove_unreachable_blocks` first).
    """
    rpo = reverse_postorder(fn)
    index = {label: i for i, label in enumerate(rpo)}
    preds = predecessors(fn)

    idom: Dict[str, Optional[str]] = {label: None for label in rpo}
    idom[fn.entry] = fn.entry

    def intersect(a: str, b: str) -> str:
        fa, fb = a, b
        while fa != fb:
            while index[fa] > index[fb]:
                fa = idom[fa]  # type: ignore[assignment]
            while index[fb] > index[fa]:
                fb = idom[fb]  # type: ignore[assignment]
        return fa

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == fn.entry:
                continue
            candidates = [p for p in preds[label]
                          if p in index and idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(other, new_idom)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    frontier: Dict[str, Set[str]] = {label: set() for label in rpo}
    for label in rpo:
        ps = [p for p in preds[label] if p in index]
        if len(ps) < 2:
            continue
        for pred in ps:
            runner = pred
            while runner != idom[label]:
                frontier[runner].add(label)
                runner = idom[runner]  # type: ignore[assignment]

    # Root's idom is conventionally None for tree consumers.
    result = dict(idom)
    result[fn.entry] = None
    return DomInfo(result, frontier, rpo)
