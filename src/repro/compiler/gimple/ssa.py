"""SSA construction and destruction.

Construction is the classic Cytron et al. algorithm — the paper's
reference [6] and the basis of GCC's Tree-SSA ("this new representation
is called SSA because it is based on the Static Single Assignment form"):
phi placement at iterated dominance frontiers, then a dominator-tree walk
renaming every register so each SSA name has exactly one definition.

Destruction replaces phis with parallel copies in predecessors, splitting
critical edges first so the copies cannot clobber each other's sources.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .cfg import predecessors, remove_unreachable_blocks
from .dom import DomInfo, compute_dominators
from .ir import (BasicBlock, GimpleFunction, Instr, Jump, Move, Operand, Phi,
                 Reg)

__all__ = ["to_ssa", "from_ssa", "verify_ssa", "SSAError"]


class SSAError(Exception):
    """Raised when SSA invariants are violated."""


def _definitions(fn: GimpleFunction) -> Dict[str, Set[str]]:
    """Map register base name -> labels of blocks defining it."""
    defs: Dict[str, Set[str]] = {}
    for param in fn.params:
        defs.setdefault(param.name, set()).add(fn.entry)
    for label, block in fn.blocks.items():
        for instr in block.instrs:
            if instr.dst is not None:
                defs.setdefault(instr.dst.name, set()).add(label)
    return defs


def to_ssa(fn: GimpleFunction) -> DomInfo:
    """Convert *fn* to SSA form in place; returns the dominator info."""
    remove_unreachable_blocks(fn)
    dom = compute_dominators(fn)
    preds = predecessors(fn)
    defs = _definitions(fn)

    # -- phase 1: phi placement at iterated dominance frontiers ---------
    phi_vars: Dict[str, Set[str]] = {label: set() for label in fn.blocks}
    for var, def_blocks in defs.items():
        if len(def_blocks) <= 1:
            continue  # single-def vars never need phis
        work = list(def_blocks)
        placed: Set[str] = set()
        while work:
            block_label = work.pop()
            for df in dom.frontier.get(block_label, ()):
                if df in placed:
                    continue
                placed.add(df)
                phi_vars[df].add(var)
                if df not in def_blocks:
                    work.append(df)
    for label, variables in phi_vars.items():
        block = fn.blocks[label]
        for var in sorted(variables):
            block.instrs.insert(0, Phi(Reg(var), {}))

    # -- phase 2: renaming along the dominator tree ---------------------
    counter: Dict[str, int] = {}
    stacks: Dict[str, List[Reg]] = {}

    def fresh(name: str) -> Reg:
        counter[name] = counter.get(name, 0) + 1
        reg = Reg(name, counter[name])
        stacks.setdefault(name, []).append(reg)
        return reg

    def current(name: str) -> Optional[Reg]:
        stack = stacks.get(name)
        return stack[-1] if stack else None

    def rewrite_operand(op: Operand) -> Operand:
        if isinstance(op, Reg):
            cur = current(op.name)
            if cur is None:
                raise SSAError(f"use of undefined register %{op.name} "
                               f"in {fn.name}")
            return cur
        return op

    new_params = [fresh(p.name) for p in fn.params]

    def rename_block(label: str) -> None:
        block = fn.blocks[label]
        pushed: List[str] = []
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if isinstance(instr, Phi):
                new_dst = fresh(instr.dst.name)
                pushed.append(instr.dst.name)
                new_instrs.append(Phi(new_dst, dict(instr.incoming)))
                continue
            mapping = {}
            renamed = _rewrite_instr_uses(instr, rewrite_operand)
            if renamed.dst is not None:
                new_dst = fresh(renamed.dst.name)
                pushed.append(renamed.dst.name)
                renamed = _with_dst(renamed, new_dst)
            new_instrs.append(renamed)
        block.instrs = new_instrs
        block.terminator = _rewrite_term_uses(block.terminator,
                                              rewrite_operand)
        # Fill phi inputs of successors.
        for succ in block.terminator.successors():
            for phi in fn.blocks[succ].phis():
                cur = current(phi.dst.name)
                if cur is not None:
                    phi.incoming[label] = cur
                # else: variable not defined on this path; leave absent
                # (the phi value is undefined along it, never read).
        for child in dom.children.get(label, ()):
            rename_block(child)
        for name in pushed:
            stacks[name].pop()

    rename_block(fn.entry)
    fn.params = new_params
    return dom


def _rewrite_instr_uses(instr: Instr, rewrite) -> Instr:
    mapping: Dict[Reg, Operand] = {}
    for use in instr.uses():
        mapping[use] = rewrite(use)
    return instr.replace_uses(mapping) if mapping else instr


def _rewrite_term_uses(term, rewrite):
    mapping: Dict[Reg, Operand] = {}
    for use in term.uses():
        mapping[use] = rewrite(use)
    return term.replace_uses(mapping) if mapping else term


def _with_dst(instr: Instr, dst: Reg) -> Instr:
    clone = instr.replace_uses({})
    clone.dst = dst
    return clone


def verify_ssa(fn: GimpleFunction) -> None:
    """Check the single-definition invariant and phi well-formedness."""
    defined: Set[Tuple[str, int]] = set()
    for param in fn.params:
        key = (param.name, param.version)
        if key in defined:
            raise SSAError(f"{fn.name}: duplicate definition of {param}")
        defined.add(key)
    for block in fn.blocks.values():
        for instr in block.instrs:
            if instr.dst is None:
                continue
            key = (instr.dst.name, instr.dst.version)
            if key in defined:
                raise SSAError(
                    f"{fn.name}: duplicate definition of {instr.dst}")
            defined.add(key)
    preds = predecessors(fn)
    for label, block in fn.blocks.items():
        for phi in block.phis():
            for pred_label in phi.incoming:
                if pred_label not in preds[label]:
                    raise SSAError(
                        f"{fn.name}: phi in {label} names non-predecessor "
                        f"{pred_label}")


def _split_critical_edges(fn: GimpleFunction) -> None:
    """Insert empty blocks on edges from multi-successor blocks to
    multi-predecessor blocks (needed for safe phi elimination)."""
    preds = predecessors(fn)
    for label in list(fn.blocks):
        block = fn.blocks[label]
        succs = block.terminator.successors()
        if len(succs) <= 1:
            continue
        retarget: Dict[str, str] = {}
        # dict.fromkeys, not set: dedup must preserve successor order,
        # or the crit-block numbering (and so every downstream label,
        # symbol and byte of the module) would vary with the process's
        # string-hash seed.
        for succ in dict.fromkeys(succs):
            if len(preds[succ]) <= 1:
                continue
            mid = fn.new_block("crit")
            mid.terminator = Jump(succ)
            retarget[succ] = mid.label
            # Phi entries for the split edge now come from the new block.
            for phi in fn.blocks[succ].phis():
                if label in phi.incoming:
                    phi.incoming[mid.label] = phi.incoming.pop(label)
        if retarget:
            block.terminator = block.terminator.retarget(retarget)


def from_ssa(fn: GimpleFunction) -> None:
    """Destroy SSA form: phis become copies in predecessor blocks.

    Uses fresh temporaries per phi destination so that parallel phis
    reading each other's destinations stay correct (lost-copy/swap
    problems).
    """
    _split_critical_edges(fn)
    # Insert copies: for each phi %d = phi [p1: v1, ...] create a fresh
    # temp %d_c; in each predecessor append %d_c = v_i; after the phis,
    # %d = %d_c.
    for label in list(fn.blocks):
        block = fn.blocks[label]
        phis = block.phis()
        if not phis:
            continue
        replacements: List[Instr] = []
        for phi in phis:
            temp = fn.new_reg(f"{phi.dst.name}c")
            for pred_label, value in phi.incoming.items():
                pred = fn.blocks[pred_label]
                pred.instrs.append(Move(temp, value))
            replacements.append(Move(phi.dst, temp))
        block.instrs = replacements + block.non_phis()
    # Drop SSA versions: each (name, version) pair becomes a plain unique
    # register name.
    rename: Dict[Reg, Reg] = {}

    def plain(reg: Reg) -> Reg:
        if reg.version == 0:
            return reg
        if reg not in rename:
            rename[reg] = Reg(f"{reg.name}_{reg.version}")
        return rename[reg]

    fn.params = [plain(p) for p in fn.params]
    for block in fn.blocks.values():
        new_instrs = []
        for instr in block.instrs:
            mapping = {use: plain(use) for use in instr.uses()
                       if use.version}
            instr = instr.replace_uses(mapping)
            if instr.dst is not None and instr.dst.version:
                instr = _with_dst(instr, plain(instr.dst))
            new_instrs.append(instr)
        block.instrs = new_instrs
        term = block.terminator
        mapping = {use: plain(use) for use in term.uses() if use.version}
        if mapping:
            term = term.replace_uses(mapping)
        block.terminator = term
