"""MGCC driver: optimization levels and the full pipeline.

Mirrors GCC's level structure (paper §II.C):

* ``-O0`` — straight lowering, no middle-end optimization;
* ``-O1`` — the SSA pass set: CCP, copy propagation, DCE, CFG cleanup;
* ``-O2`` — ``-O1`` plus inlining and an extra SSA iteration;
* ``-Os`` — ``-O2``'s passes with size-oriented policies: conservative
  inlining and size-minimizing switch lowering (the flag the paper uses
  for all measurements: "Since we deal with RTES design ... we are
  interested in -Os").

``compile_unit`` also records per-pass statistics and an IR dump after
every pass — the analogue of GCC's ``-fdump-tree-*`` files that the paper
inspected to show the unreachable state's code surviving dead code
elimination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..cpp import ast as cpp
from ..obs.trace import span as _span
from .asm import AsmModule
from .target.description import TargetDescription
from .target.registry import resolve_target
from .frontend.lower import lower_unit
from .gimple.cfg import remove_unreachable_blocks
from .gimple.ir import DataObject, Program, SymbolRef
from .gimple.ssa import from_ssa, to_ssa, verify_ssa
from .passes.ccp import run_ccp
from .passes.copyprop import run_copyprop
from .passes.cse import run_cse
from .passes.dce import run_dce
from .passes.inline import InlinePolicy, run_inline
from .passes.simplify_cfg import run_simplify_cfg
from .rtl.isel import SwitchLowering, select_function
from .rtl.peephole import fuse_compare_branches, run_peephole
from .rtl.regalloc import allocate_registers
from .rtl.ir import RInstr

__all__ = ["OptLevel", "CompileResult", "compile_unit", "compile_program",
           "SSA_PASS_SEQUENCE", "inline_policy_for", "middle_end_iterations",
           "optimize_function", "backend_function", "make_switch_lowering"]


class OptLevel(enum.Enum):
    """GCC-style optimization levels."""

    O0 = "-O0"
    O1 = "-O1"
    O2 = "-O2"
    OS = "-Os"

    @property
    def optimizes(self) -> bool:
        return self is not OptLevel.O0

    @property
    def for_size(self) -> bool:
        return self is OptLevel.OS


@dataclass
class CompileResult:
    """Everything a compilation produced."""

    module: AsmModule
    program: Program                       # final GIMPLE (post-middle-end)
    opt_level: OptLevel
    pass_stats: Dict[str, int] = field(default_factory=dict)
    dumps: Dict[str, str] = field(default_factory=dict)
    target: Optional[TargetDescription] = None  # ISA compiled for

    @property
    def total_size(self) -> int:
        return self.module.total_size

    def dump_after(self, pass_name: str) -> str:
        """IR dump captured right after *pass_name* (``-fdump`` analogue)."""
        try:
            return self.dumps[pass_name]
        except KeyError:
            raise KeyError(
                f"no dump for pass {pass_name!r}; captured: "
                f"{sorted(self.dumps)}") from None


#: The SSA pass pipeline, in execution order.  One source of truth for
#: both compilation granularities: the whole-program middle end below
#: runs each pass over every function (so dumps snapshot pass
#: boundaries), and the per-unit pipeline
#: (:mod:`repro.compiler.units`) runs the same sequence over a single
#: function — the passes are function-local, so the two orders produce
#: identical code per function.
SSA_PASS_SEQUENCE = (("ccp", run_ccp), ("cse", run_cse),
                     ("copyprop", run_copyprop), ("dce", run_dce),
                     ("cfg", run_simplify_cfg))

#: Span names per SSA pass, precomputed so the traced path never
#: builds f-strings inside the pass loop.
_PASS_SPAN_NAMES = {name: f"pass.{name}" for name, _ in SSA_PASS_SEQUENCE}


def inline_policy_for(level: OptLevel) -> InlinePolicy:
    """The inlining thresholds of one optimization level."""
    return (InlinePolicy.for_size() if level.for_size
            else InlinePolicy.for_speed())


def middle_end_iterations(level: OptLevel) -> int:
    """How many SSA pipeline iterations the level runs."""
    return 2 if level in (OptLevel.O2, OptLevel.OS) else 1


def _finish_iteration(fn) -> None:
    """Leave SSA and clean up after one pipeline iteration."""
    from_ssa(fn)
    remove_unreachable_blocks(fn)
    # Clean up the straight-line blocks and critical-edge stubs
    # SSA destruction leaves behind (phis are gone, so this is a
    # plain structural pass).
    run_simplify_cfg(fn)


def optimize_function(fn, level: OptLevel, stats: Dict[str, int]) -> None:
    """Run the full per-function SSA pipeline over one function.

    Exactly the pass sequence and iteration count the whole-program
    middle end applies — the per-unit compile path uses this after the
    (program-level) inline phase, and the resulting function is
    identical to what a whole-program compile produces for it.
    """
    for i in range(middle_end_iterations(level)):
        suffix = "" if i == 0 else f"#{i + 1}"
        with _span("stage.ssa-build"):
            to_ssa(fn)
            verify_ssa(fn)
        for name, run_pass in SSA_PASS_SEQUENCE:
            key = f"{name}{suffix}"
            with _span(_PASS_SPAN_NAMES[name]):
                stats[key] = stats.get(key, 0) + run_pass(fn)
        with _span("stage.ssa-out"):
            _finish_iteration(fn)


def _middle_end(program: Program, level: OptLevel,
                stats: Dict[str, int], dumps: Dict[str, str],
                capture_dumps: bool) -> None:
    """Run the SSA optimization pipeline in place."""

    def snapshot(name: str) -> None:
        if capture_dumps:
            dumps[name] = program.dump()

    if not level.optimizes:
        snapshot("lower")
        return
    snapshot("lower")

    if level in (OptLevel.O2, OptLevel.OS):
        with _span("stage.inline"):
            stats["inline"] = run_inline(program, inline_policy_for(level))
        snapshot("einline")

    for i in range(middle_end_iterations(level)):
        suffix = "" if i == 0 else f"#{i + 1}"
        with _span("stage.ssa-build"):
            for fn in program.functions.values():
                to_ssa(fn)
                verify_ssa(fn)
        snapshot(f"ssa{suffix}")
        for name, run_pass in SSA_PASS_SEQUENCE:
            with _span(_PASS_SPAN_NAMES[name]):
                stats[f"{name}{suffix}"] = sum(
                    run_pass(fn) for fn in program.functions.values())
            snapshot(f"{name}{suffix}")
        with _span("stage.ssa-out"):
            for fn in program.functions.values():
                _finish_iteration(fn)
        snapshot(f"optimized{suffix}")


def make_switch_lowering(level: OptLevel,
                         target: TargetDescription) -> SwitchLowering:
    """The switch-lowering policy one (level, target) pair compiles with."""
    return SwitchLowering(optimize_for_size=level.for_size, target=target)


def make_rodata_sink(jump_tables: List[DataObject],
                     target: TargetDescription):
    """A ``rodata_sink`` appending jump tables to *jump_tables* with the
    target's entry width — one construction shared by both compile
    granularities so the emitted tables are identical."""
    def rodata_sink(name: str, symbols: List[str]) -> None:
        jump_tables.append(DataObject(
            name, [SymbolRef(s) for s in symbols], "rodata",
            word_size=target.jump_table_entry_size))
    return rodata_sink


def backend_function(fn, level: OptLevel, lowering: SwitchLowering,
                     rodata_sink, target: TargetDescription,
                     stats: Dict[str, int]):
    """Run the full backend over one optimized function: instruction
    selection, compare/branch fusion, register allocation, peephole,
    prologue/epilogue.  Returns the finished RTL function; jump tables
    go to *rodata_sink* (named ``<function>.jtN``, so per-function
    compilation reproduces whole-program names exactly)."""
    with _span("stage.isel"):
        rtl = select_function(fn, lowering, rodata_sink, target=target)
    if level.optimizes:
        with _span("stage.fuse"):
            stats["fuse"] = stats.get("fuse", 0) + \
                fuse_compare_branches(rtl, target=target)
    with _span("stage.regalloc"):
        allocate_registers(rtl, target=target)
    if level.optimizes:
        with _span("stage.peephole"):
            stats["peephole"] = stats.get("peephole", 0) + run_peephole(rtl)
    with _span("stage.prologue"):
        _add_prologue_epilogue(rtl, target)
    return rtl


def compile_program(program: Program, level: OptLevel = OptLevel.OS,
                    capture_dumps: bool = False,
                    target: Union[TargetDescription, str, None] = None,
                    ) -> CompileResult:
    """Run the middle end + backend over an already-lowered program.

    *target* selects the backend ISA — a registered name (``"rt32"``,
    ``"rt16"``), a :class:`TargetDescription`, or None for the default.
    """
    tgt = resolve_target(target)
    stats: Dict[str, int] = {}
    dumps: Dict[str, str] = {}
    _middle_end(program, level, stats, dumps, capture_dumps)

    module = AsmModule(program.name, target=tgt)
    lowering = make_switch_lowering(level, tgt)
    jump_tables: List[DataObject] = []
    rodata_sink = make_rodata_sink(jump_tables, tgt)

    for fn in program.functions.values():
        module.functions.append(
            backend_function(fn, level, lowering, rodata_sink, tgt, stats))

    module.data_objects.extend(program.data.values())
    module.data_objects.extend(jump_tables)
    return CompileResult(module=module, program=program, opt_level=level,
                         pass_stats=stats, dumps=dumps, target=tgt)


def _add_prologue_epilogue(rtl, target: TargetDescription) -> None:
    """Attach frame setup: push/pop used callee-saved registers (+ lr
    unless the function is a leaf), and a stack adjustment when spill
    slots exist."""
    is_leaf = not any(i.op in ("call", "callr") for i in rtl.instrs)
    saved = list(rtl.saved_regs) + ([] if is_leaf else ["lr"])
    prologue = [RInstr("push", uses=(reg,), comment="prologue")
                for reg in saved]
    frame_bytes = target.word_size * rtl.frame_slots
    if rtl.frame_slots:
        prologue.append(RInstr("addsp", imm=-frame_bytes,
                               comment="frame"))
    epilogue: List[RInstr] = []
    if rtl.frame_slots:
        epilogue.append(RInstr("addsp", imm=frame_bytes))
    epilogue.extend(RInstr("pop", defs=(reg,)) for reg in reversed(saved))
    # Insert the epilogue before every ret.
    new_instrs = list(prologue)
    for instr in rtl.instrs:
        if instr.op == "ret":
            new_instrs.extend(epilogue)
        new_instrs.append(instr)
    rtl.instrs = new_instrs


def compile_unit(unit: cpp.TranslationUnit, level: OptLevel = OptLevel.OS,
                 capture_dumps: bool = False,
                 target: Union[TargetDescription, str, None] = None,
                 ) -> CompileResult:
    """Compile a C++ translation unit down to assembly for *target*
    (default target when none is given)."""
    with _span("stage.lower"):
        program = lower_unit(unit)
    return compile_program(program, level=level, capture_dumps=capture_dumps,
                           target=target)
