"""Assembly module: final artifact of a compilation.

Holds the allocated RTL of every function (with prologue/epilogue
attached) plus the rodata/data/bss objects, and provides the size
accounting the experiments report:

* ``text_size``   — sum of encoded instruction bytes;
* ``rodata_size`` — const tables, vtables, jump tables;
* ``data_size``   — initialized mutable globals;
* ``bss_size``    — zero-initialized globals (no image bytes);
* ``total_size``  — text + rodata + data, the reproduction's analogue of
  the paper's "size of the generated assembly code" in bytes.

``listing()`` renders a human-readable .s file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .gimple.ir import DataObject, SymbolRef
from .rtl.ir import RInstr, RTLFunction
from .target.description import TargetDescription

__all__ = ["AsmModule"]


@dataclass
class AsmModule:
    """A fully lowered translation unit."""

    name: str
    functions: List[RTLFunction] = field(default_factory=list)
    data_objects: List[DataObject] = field(default_factory=list)
    target: Optional[TargetDescription] = None  # ISA the module targets

    # -- sizes -------------------------------------------------------------
    @property
    def text_size(self) -> int:
        return sum(fn.text_size for fn in self.functions)

    def _section_size(self, section: str) -> int:
        return sum(obj.size for obj in self.data_objects
                   if obj.section == section)

    @property
    def rodata_size(self) -> int:
        return self._section_size("rodata")

    @property
    def data_size(self) -> int:
        return self._section_size("data")

    @property
    def bss_size(self) -> int:
        return self._section_size("bss")

    @property
    def total_size(self) -> int:
        """Image bytes: text + rodata + data (bss occupies no image)."""
        return self.text_size + self.rodata_size + self.data_size

    def function_sizes(self) -> Dict[str, int]:
        return {fn.name: fn.text_size for fn in self.functions}

    def function(self, name: str) -> RTLFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in module {self.name!r}")

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions)

    # -- rendering -----------------------------------------------------------
    def listing(self) -> str:
        target_note = f" target={self.target.name}" if self.target else ""
        lines: List[str] = [f"; module {self.name}{target_note}",
                            f"; text={self.text_size} rodata="
                            f"{self.rodata_size} data={self.data_size} "
                            f"bss={self.bss_size} total={self.total_size}",
                            "", ".text"]
        for fn in self.functions:
            lines.append(fn.listing())
            lines.append(f"; size({fn.name}) = {fn.text_size}")
            lines.append("")
        for section in ("rodata", "data", "bss"):
            objs = [o for o in self.data_objects if o.section == section]
            if not objs:
                continue
            lines.append(f".{section}")
            for obj in objs:
                words = ", ".join(
                    f"@{w.symbol}" if isinstance(w, SymbolRef) else str(w)
                    for w in obj.words)
                lines.append(f"{obj.name}: .word {words}   ; "
                             f"{obj.size} bytes")
            lines.append("")
        return "\n".join(lines)

    def size_report(self) -> str:
        """One-line size breakdown for experiment tables."""
        return (f"{self.name}: total={self.total_size}B "
                f"(text={self.text_size}, rodata={self.rodata_size}, "
                f"data={self.data_size}, bss={self.bss_size})")
