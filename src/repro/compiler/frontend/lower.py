"""MGCC frontend: C++ subset AST -> GIMPLE.

The lowering performs what the GCC C++ frontend + gimplifier do for the
constructs generated state-machine code uses:

* **class layout** — single inheritance, word-sized fields, a vptr in
  slot 0 of any class with virtual methods;
* **vtables** — one rodata object per dynamic class, slots resolved to
  the most-derived override;
* **methods** — lowered to free functions with an explicit ``this``
  parameter (mangled ``Class::method``);
* **virtual calls** — vptr load, slot load, indirect call: the pattern
  that makes every state-pattern handler address-taken and therefore
  invisible to compiler dead-code elimination (paper §III);
* **switch** — kept as a GIMPLE switch terminator for the backend to
  lower (jump table vs. compare chain);
* **short-circuit** ``&&``/``||`` — lowered to control flow;
* **globals** — statically initialized word images (transition tables,
  vtable-pointing state singletons, context objects).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ...cpp import ast as cpp
from ...cpp.types import (ArrayType, BoolType, ClassRefType, EnumType,
                          FuncPtrType, IntType, PointerType, Type, VoidType)
from ..gimple.ir import (BasicBlock, BinOp, Branch, Call, CallIndirect,
                         Const, DataObject, GimpleFunction, IRError, Jump,
                         Load, LoadAddr, LoadGlobal, Move, Operand, Program,
                         Reg, Ret, Store, StoreGlobal, SwitchTerm, SymbolRef,
                         UnOp)

__all__ = ["LoweringError", "ClassLayout", "lower_unit", "mangle"]

WORD = 4


class LoweringError(Exception):
    """Raised when the frontend meets an unsupported construct."""


def mangle(class_name: str, method: str) -> str:
    return f"{class_name}::{method}"


class ClassLayout:
    """Field offsets, size and vtable layout of one class."""

    def __init__(self, decl: cpp.ClassDecl,
                 base: Optional["ClassLayout"]) -> None:
        self.decl = decl
        self.base = base
        self.name = decl.name
        self.field_offsets: Dict[str, int] = dict(base.field_offsets) \
            if base else {}
        self.has_vtable = (base.has_vtable if base else False) or \
            any(m.is_virtual for m in decl.methods)
        offset = base.size if base else (WORD if self.has_vtable else 0)
        if base and self.has_vtable and not base.has_vtable:
            raise LoweringError(
                f"{decl.name}: introducing virtuals below a non-dynamic "
                "base is unsupported")
        if not base and self.has_vtable:
            offset = WORD  # vptr occupies slot 0
        for fld in decl.fields:
            self.field_offsets[fld.name] = offset
            offset += WORD  # every field is word-sized in the subset
        self.size = max(offset, WORD)
        # vtable slots: base slots first, then newly introduced virtuals;
        # overrides replace the inherited slot's implementation.
        self.vtable_slots: List[str] = list(base.vtable_slots) if base else []
        self.vtable_impl: Dict[str, str] = dict(base.vtable_impl) \
            if base else {}
        for method in decl.methods:
            if method.is_virtual or (base and method.name in self.vtable_impl):
                if method.name not in self.vtable_slots:
                    self.vtable_slots.append(method.name)
                if method.body is not None:
                    self.vtable_impl[method.name] = mangle(decl.name,
                                                           method.name)

    def offset_of(self, field_name: str) -> int:
        try:
            return self.field_offsets[field_name]
        except KeyError:
            raise LoweringError(
                f"class {self.name} has no field {field_name!r}") from None

    def slot_of(self, method_name: str) -> int:
        try:
            return self.vtable_slots.index(method_name)
        except ValueError:
            raise LoweringError(
                f"class {self.name} has no virtual slot {method_name!r}"
            ) from None

    def find_method(self, name: str) -> Tuple[str, cpp.Method]:
        """Resolve a (possibly inherited) method to (defining class, decl)."""
        layout: Optional[ClassLayout] = self
        while layout is not None:
            for method in layout.decl.methods:
                if method.name == name and method.body is not None:
                    return layout.name, method
            layout = layout.base
        raise LoweringError(f"no implementation of {self.name}.{name}")

    @property
    def vtable_symbol(self) -> str:
        return f"vtbl.{self.name}"


class _UnitContext:
    """Shared lowering context: layouts, enums, globals, functions."""

    def __init__(self, unit: cpp.TranslationUnit) -> None:
        self.unit = unit
        self.layouts: Dict[str, ClassLayout] = {}
        for decl in unit.classes:
            base = self.layouts.get(decl.base) if decl.base else None
            if decl.base and base is None:
                raise LoweringError(
                    f"class {decl.name}: unknown base {decl.base!r} "
                    "(classes must be declared before use)")
            self.layouts[decl.name] = ClassLayout(decl, base)
        self.enum_values: Dict[Tuple[str, str], int] = {}
        for enum in unit.enums:
            for i, enumerator in enumerate(enum.enumerators):
                self.enum_values[(enum.name, enumerator)] = i
        self.global_types: Dict[str, Type] = {
            gv.name: gv.var_type for gv in unit.globals}
        self.function_rets: Dict[str, Type] = {}
        for ext in unit.externs:
            self.function_rets[ext.name] = ext.ret
        for fn in unit.functions:
            self.function_rets[fn.name] = fn.ret
        for decl in unit.classes:
            for method in decl.methods:
                self.function_rets[mangle(decl.name, method.name)] = method.ret

    def layout(self, class_name: str) -> ClassLayout:
        try:
            return self.layouts[class_name]
        except KeyError:
            raise LoweringError(f"unknown class {class_name!r}") from None

    def enum_value(self, ref: cpp.EnumRef) -> int:
        try:
            return self.enum_values[(ref.enum_name, ref.enumerator)]
        except KeyError:
            raise LoweringError(
                f"unknown enumerator {ref.enum_name}::{ref.enumerator}"
            ) from None


class _FunctionLowerer:
    """Lowers one function/method body."""

    def __init__(self, ctx: _UnitContext, name: str,
                 params: List[cpp.Param], body: cpp.Block,
                 this_class: Optional[str] = None) -> None:
        self.ctx = ctx
        self.this_class = this_class
        self.fn = GimpleFunction(name)
        self.var_regs: Dict[str, Reg] = {}
        self.var_types: Dict[str, Type] = {}
        self.break_targets: List[str] = []
        if this_class is not None:
            this_reg = Reg("this")
            self.fn.params.append(this_reg)
            self.var_regs["this"] = this_reg
            self.var_types["this"] = PointerType(ClassRefType(this_class))
        for param in params:
            reg = Reg(param.name)
            self.fn.params.append(reg)
            self.var_regs[param.name] = reg
            self.var_types[param.name] = param.param_type
        self.block = self.fn.new_block("entry")
        self.body = body

    # ------------------------------------------------------------------
    def run(self) -> GimpleFunction:
        self.lower_block(self.body)
        if self.block.terminator is None:
            self.block.terminator = Ret()
        # Any other unterminated block (e.g. after break) falls to ret.
        for block in self.fn.blocks.values():
            if block.terminator is None:
                block.terminator = Ret()
        return self.fn

    def _start_block(self, hint: str) -> BasicBlock:
        block = self.fn.new_block(hint)
        return block

    def _seal(self, terminator) -> None:
        if self.block.terminator is None:
            self.block.terminator = terminator

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------
    def type_of(self, expr: cpp.Expr) -> Optional[Type]:
        if isinstance(expr, cpp.Var):
            if expr.name in self.var_types:
                return self.var_types[expr.name]
            return self.ctx.global_types.get(expr.name)
        if isinstance(expr, cpp.ThisExpr):
            return self.var_types.get("this")
        if isinstance(expr, cpp.FieldAccess):
            layout, _ = self._field_target(expr)
            field_type = self._field_type(layout, expr.field_name)
            return field_type
        if isinstance(expr, cpp.Index):
            array_type = self.type_of(expr.array)
            if isinstance(array_type, ArrayType):
                return array_type.element
            if isinstance(array_type, PointerType):
                return array_type.pointee
            return None
        if isinstance(expr, cpp.AddrOf):
            inner = self.type_of(expr.operand)
            return PointerType(inner) if inner is not None else None
        if isinstance(expr, cpp.Call):
            return self.ctx.function_rets.get(expr.func)
        if isinstance(expr, cpp.MethodCall):
            layout = self._object_layout(expr.obj, expr.class_name)
            _, method = layout.find_method(expr.method)
            return method.ret
        if isinstance(expr, cpp.Cast):
            return expr.to
        if isinstance(expr, (cpp.IntLit, cpp.Binary, cpp.Unary)):
            return IntType()
        if isinstance(expr, cpp.BoolLit):
            return BoolType()
        if isinstance(expr, cpp.EnumRef):
            return EnumType(expr.enum_name)
        return None

    def _field_type(self, layout: ClassLayout, field_name: str) -> Type:
        probe: Optional[ClassLayout] = layout
        while probe is not None:
            for fld in probe.decl.fields:
                if fld.name == field_name:
                    return fld.field_type
            probe = probe.base
        raise LoweringError(
            f"class {layout.name} has no field {field_name!r}")

    def _object_layout(self, obj: cpp.Expr,
                       declared: Optional[str] = None) -> ClassLayout:
        if declared:
            return self.ctx.layout(declared)
        obj_type = self.type_of(obj)
        if isinstance(obj_type, PointerType) and \
                isinstance(obj_type.pointee, ClassRefType):
            return self.ctx.layout(obj_type.pointee.name)
        if isinstance(obj_type, ClassRefType):
            # Class-typed globals decay to their address, so ``g.field``
            # behaves like ``(&g)->field``.
            return self.ctx.layout(obj_type.name)
        raise LoweringError(f"cannot infer class of object {obj!r}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def lower_expr(self, expr: cpp.Expr) -> Operand:
        if isinstance(expr, cpp.IntLit):
            return expr.value
        if isinstance(expr, cpp.BoolLit):
            return 1 if expr.value else 0
        if isinstance(expr, cpp.NullPtr):
            return 0
        if isinstance(expr, cpp.EnumRef):
            return self.ctx.enum_value(expr)
        if isinstance(expr, cpp.ThisExpr):
            return self.var_regs["this"]
        if isinstance(expr, cpp.Var):
            if expr.name in self.var_regs:
                return self.var_regs[expr.name]
            if expr.name in self.ctx.global_types:
                gtype = self.ctx.global_types[expr.name]
                if isinstance(gtype, (ArrayType, ClassRefType)):
                    # Arrays/objects decay to their address.
                    dst = self.fn.new_reg("ga")
                    self.block.add(LoadAddr(dst, expr.name))
                    return dst
                dst = self.fn.new_reg("g")
                self.block.add(LoadGlobal(dst, expr.name))
                return dst
            raise LoweringError(f"unknown variable {expr.name!r}")
        if isinstance(expr, cpp.FieldAccess):
            base, offset = self.lower_field_address(expr)
            dst = self.fn.new_reg("f")
            self.block.add(Load(dst, base, offset))
            return dst
        if isinstance(expr, cpp.Unary):
            if expr.op == "!":
                operand = self.lower_expr(expr.operand)
                dst = self.fn.new_reg("n")
                self.block.add(BinOp(dst, "==", operand, 0))
                return dst
            operand = self.lower_expr(expr.operand)
            dst = self.fn.new_reg("m")
            self.block.add(UnOp(dst, "-", _as_reg_or_int(operand)))
            return dst
        if isinstance(expr, cpp.Binary):
            if expr.op in ("&&", "||"):
                return self.lower_short_circuit(expr)
            a = self.lower_expr(expr.lhs)
            b = self.lower_expr(expr.rhs)
            dst = self.fn.new_reg("b")
            self.block.add(BinOp(dst, expr.op, a, b))
            return dst
        if isinstance(expr, cpp.Call):
            args = tuple(self.lower_expr(a) for a in expr.args)
            ret = self.ctx.function_rets.get(expr.func)
            dst = None if isinstance(ret, VoidType) or ret is None \
                else self.fn.new_reg("r")
            self.block.add(Call(dst, expr.func, args))
            return dst if dst is not None else 0
        if isinstance(expr, cpp.MethodCall):
            return self.lower_method_call(expr)
        if isinstance(expr, cpp.IndirectCall):
            target = self.lower_expr(expr.target)
            if not isinstance(target, Reg):
                raise LoweringError("indirect call target must be a value")
            args = tuple(self.lower_expr(a) for a in expr.args)
            ret = expr.signature.ret if expr.signature else IntType()
            dst = None if isinstance(ret, VoidType) else self.fn.new_reg("r")
            self.block.add(CallIndirect(dst, target, args))
            return dst if dst is not None else 0
        if isinstance(expr, cpp.Index):
            base, offset_reg, const_off = self.lower_index_address(expr)
            dst = self.fn.new_reg("e")
            if offset_reg is None:
                self.block.add(Load(dst, base, const_off))
            else:
                addr = self.fn.new_reg("ea")
                self.block.add(BinOp(addr, "+", base, offset_reg))
                self.block.add(Load(dst, addr, const_off))
            return dst
        if isinstance(expr, cpp.AddrOf):
            return self.lower_address_of(expr.operand)
        if isinstance(expr, cpp.FuncRef):
            dst = self.fn.new_reg("fp")
            self.block.add(LoadAddr(dst, expr.func))
            return dst
        if isinstance(expr, cpp.Cast):
            return self.lower_expr(expr.operand)
        raise LoweringError(f"cannot lower expression {expr!r}")

    def lower_short_circuit(self, expr: cpp.Binary) -> Reg:
        """Lower ``a && b`` / ``a || b`` via control flow."""
        result_name = self.fn.new_reg("sc").name
        rhs_block = self._start_block("sc_rhs")
        join_block = self._start_block("sc_join")
        lhs = self.lower_expr(expr.lhs)
        lhs_bool = self.fn.new_reg("scl")
        self.block.add(BinOp(lhs_bool, "!=", lhs, 0))
        result = Reg(result_name)
        self.block.add(Move(result, lhs_bool))
        if expr.op == "&&":
            self._seal(Branch(lhs_bool, rhs_block.label, join_block.label))
        else:
            self._seal(Branch(lhs_bool, join_block.label, rhs_block.label))
        self.block = rhs_block
        rhs = self.lower_expr(expr.rhs)
        rhs_bool = self.fn.new_reg("scr")
        self.block.add(BinOp(rhs_bool, "!=", rhs, 0))
        self.block.add(Move(result, rhs_bool))
        self._seal(Jump(join_block.label))
        self.block = join_block
        return result

    def lower_method_call(self, expr: cpp.MethodCall) -> Operand:
        layout = self._object_layout(expr.obj, expr.class_name)
        this_val = self.lower_expr(expr.obj)
        if not isinstance(this_val, Reg):
            raise LoweringError("method receiver must be an object pointer")
        args = tuple([this_val] +
                     [self.lower_expr(a) for a in expr.args])
        if expr.virtual_dispatch:
            slot = layout.slot_of(expr.method)
            vptr = self.fn.new_reg("vp")
            self.block.add(Load(vptr, this_val, 0))
            fnptr = self.fn.new_reg("vf")
            self.block.add(Load(fnptr, vptr, slot * WORD))
            ret_type = self.ctx.function_rets.get(
                layout.vtable_impl.get(expr.method, ""), VoidType())
            dst = None if isinstance(ret_type, VoidType) \
                else self.fn.new_reg("r")
            self.block.add(CallIndirect(dst, fnptr, args))
            return dst if dst is not None else 0
        defining_class, method_decl = layout.find_method(expr.method)
        symbol = mangle(defining_class, expr.method)
        dst = None if isinstance(method_decl.ret, VoidType) \
            else self.fn.new_reg("r")
        self.block.add(Call(dst, symbol, args))
        return dst if dst is not None else 0

    # -- addresses ----------------------------------------------------------
    def _field_target(self, expr: cpp.FieldAccess) -> Tuple[ClassLayout, cpp.Expr]:
        obj = expr.obj
        if isinstance(obj, cpp.Index):
            array_type = self.type_of(obj.array)
            if isinstance(array_type, ArrayType) and \
                    isinstance(array_type.element, ClassRefType):
                return self.ctx.layout(array_type.element.name), obj
        return self._object_layout(obj), obj

    def lower_field_address(self, expr: cpp.FieldAccess) -> Tuple[Reg, int]:
        """Compute (base register, byte offset) of a field lvalue."""
        layout, obj = self._field_target(expr)
        offset = layout.offset_of(expr.field_name)
        if isinstance(obj, cpp.Index):
            base, offset_reg, const_off = self.lower_index_address(
                obj, element_size=layout.size)
            if offset_reg is not None:
                addr = self.fn.new_reg("fa")
                self.block.add(BinOp(addr, "+", base, offset_reg))
                return addr, const_off + offset
            return base, const_off + offset
        base_val = self.lower_expr(obj)
        if not isinstance(base_val, Reg):
            raise LoweringError("field base must be a pointer value")
        return base_val, offset

    def lower_index_address(self, expr: cpp.Index, element_size: int = WORD
                            ) -> Tuple[Reg, Optional[Reg], int]:
        """Compute the address of ``array[index]``.

        Returns (base, offset_register_or_None, constant_offset).
        """
        array_type = self.type_of(expr.array)
        if isinstance(array_type, ArrayType):
            if isinstance(array_type.element, ClassRefType):
                element_size = self.ctx.layout(array_type.element.name).size
            else:
                element_size = WORD
        base_val = self.lower_expr(expr.array)
        if not isinstance(base_val, Reg):
            raise LoweringError("array base must be an address")
        index_val = self.lower_expr(expr.index)
        if isinstance(index_val, int):
            return base_val, None, index_val * element_size
        scaled = self.fn.new_reg("ix")
        self.block.add(BinOp(scaled, "*", index_val, element_size))
        return base_val, scaled, 0

    def lower_address_of(self, expr: cpp.Expr) -> Reg:
        if isinstance(expr, cpp.Var) and expr.name in self.ctx.global_types:
            dst = self.fn.new_reg("ga")
            self.block.add(LoadAddr(dst, expr.name))
            return dst
        if isinstance(expr, cpp.Index):
            base, offset_reg, const_off = self.lower_index_address(expr)
            addr = self.fn.new_reg("ad")
            if offset_reg is not None:
                self.block.add(BinOp(addr, "+", base, offset_reg))
                if const_off:
                    addr2 = self.fn.new_reg("ad")
                    self.block.add(BinOp(addr2, "+", addr, const_off))
                    return addr2
                return addr
            self.block.add(BinOp(addr, "+", base, const_off))
            return addr
        if isinstance(expr, cpp.FieldAccess):
            base, offset = self.lower_field_address(expr)
            addr = self.fn.new_reg("ad")
            self.block.add(BinOp(addr, "+", base, offset))
            return addr
        raise LoweringError(f"cannot take the address of {expr!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def lower_block(self, block: cpp.Block) -> None:
        for stmt in block.statements:
            if self.block.terminator is not None:
                return  # dead code after break/return: drop at lowering
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: cpp.Stmt) -> None:
        if isinstance(stmt, cpp.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, cpp.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, cpp.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, cpp.VarDecl):
            reg = Reg(self.fn.new_reg(stmt.name).name)
            self.var_regs[stmt.name] = reg
            self.var_types[stmt.name] = stmt.var_type
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
                self.block.add(Move(reg, value))
            else:
                self.block.add(Const(reg, 0))
        elif isinstance(stmt, cpp.If):
            self.lower_if(stmt)
        elif isinstance(stmt, cpp.While):
            self.lower_while(stmt)
        elif isinstance(stmt, cpp.Switch):
            self.lower_switch(stmt)
        elif isinstance(stmt, cpp.Break):
            if not self.break_targets:
                raise LoweringError("break outside switch/loop")
            self._seal(Jump(self.break_targets[-1]))
        elif isinstance(stmt, cpp.Return):
            value = self.lower_expr(stmt.value) \
                if stmt.value is not None else None
            self._seal(Ret(value))
        else:
            raise LoweringError(f"cannot lower statement {stmt!r}")

    def lower_assign(self, stmt: cpp.Assign) -> None:
        lhs = stmt.lhs
        if isinstance(lhs, cpp.Var):
            if lhs.name in self.var_regs:
                value = self.lower_expr(stmt.rhs)
                self.block.add(Move(self.var_regs[lhs.name], value))
                return
            if lhs.name in self.ctx.global_types:
                value = self.lower_expr(stmt.rhs)
                self.block.add(StoreGlobal(lhs.name, 0, value))
                return
            raise LoweringError(f"assignment to unknown variable "
                                f"{lhs.name!r}")
        if isinstance(lhs, cpp.FieldAccess):
            base, offset = self.lower_field_address(lhs)
            value = self.lower_expr(stmt.rhs)
            self.block.add(Store(base, offset, value))
            return
        if isinstance(lhs, cpp.Index):
            base, offset_reg, const_off = self.lower_index_address(lhs)
            value = self.lower_expr(stmt.rhs)
            if offset_reg is not None:
                addr = self.fn.new_reg("sa")
                self.block.add(BinOp(addr, "+", base, offset_reg))
                self.block.add(Store(addr, const_off, value))
            else:
                self.block.add(Store(base, const_off, value))
            return
        raise LoweringError(f"unsupported assignment target {lhs!r}")

    def lower_if(self, stmt: cpp.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self._start_block("then")
        join_block = self._start_block("join")
        else_label = join_block.label
        if stmt.else_body is not None:
            else_block = self._start_block("else")
            else_label = else_block.label
        self._seal(Branch(_bool_operand(self, cond), then_block.label,
                          else_label))
        self.block = then_block
        self.lower_block(stmt.then_body)
        self._seal(Jump(join_block.label))
        if stmt.else_body is not None:
            self.block = else_block
            self.lower_block(stmt.else_body)
            self._seal(Jump(join_block.label))
        self.block = join_block

    def lower_while(self, stmt: cpp.While) -> None:
        header = self._start_block("loop")
        body_block = self._start_block("body")
        exit_block = self._start_block("exit")
        self._seal(Jump(header.label))
        self.block = header
        cond = self.lower_expr(stmt.cond)
        self._seal(Branch(_bool_operand(self, cond), body_block.label,
                          exit_block.label))
        self.break_targets.append(exit_block.label)
        self.block = body_block
        self.lower_block(stmt.body)
        self._seal(Jump(header.label))
        self.break_targets.pop()
        self.block = exit_block

    def lower_switch(self, stmt: cpp.Switch) -> None:
        subject = self.lower_expr(stmt.subject)
        exit_block = self._start_block("swexit")
        self.break_targets.append(exit_block.label)
        cases: Dict[int, str] = {}
        case_blocks: List[Tuple[cpp.SwitchCase, BasicBlock]] = []
        for case in stmt.cases:
            block = self._start_block("case")
            case_blocks.append((case, block))
            for value_expr in case.values:
                value = self._const_case_value(value_expr)
                if value in cases:
                    raise LoweringError(f"duplicate case value {value}")
                cases[value] = block.label
        if stmt.default is not None:
            default_block = self._start_block("default")
            default_label = default_block.label
        else:
            default_label = exit_block.label
        self._seal(SwitchTerm(subject, cases, default_label))
        for i, (case, block) in enumerate(case_blocks):
            self.block = block
            self.lower_block(case.body)
            if case.falls_through and i + 1 < len(case_blocks):
                self._seal(Jump(case_blocks[i + 1][1].label))
            else:
                self._seal(Jump(exit_block.label))
        if stmt.default is not None:
            self.block = default_block
            self.lower_block(stmt.default)
            self._seal(Jump(exit_block.label))
        self.break_targets.pop()
        self.block = exit_block

    def _const_case_value(self, expr: cpp.Expr) -> int:
        if isinstance(expr, cpp.IntLit):
            return expr.value
        if isinstance(expr, cpp.EnumRef):
            return self.ctx.enum_value(expr)
        raise LoweringError(f"case label must be a constant, got {expr!r}")


def _as_reg_or_int(op: Operand) -> Operand:
    return op


def _bool_operand(lowerer: _FunctionLowerer, cond: Operand) -> Operand:
    """Branch conditions take a register or immediate directly; non-0/1
    integers are fine (branch tests non-zero)."""
    return cond


# ---------------------------------------------------------------------------
# globals
# ---------------------------------------------------------------------------

def _flatten_initializer(ctx: _UnitContext, var_type: Type,
                         init, out: List) -> None:
    """Flatten a static initializer into 32-bit words."""
    if isinstance(var_type, ArrayType):
        if not isinstance(init, cpp.ArrayInit):
            raise LoweringError("array global needs an ArrayInit")
        for element in init.elements:
            _flatten_initializer(ctx, var_type.element, element, out)
        expected = var_type.length * _words_per(ctx, var_type.element)
        while len(out) < expected:
            out.append(0)
        return
    if isinstance(var_type, ClassRefType):
        layout = ctx.layout(var_type.name)
        if layout.has_vtable:
            out.append(SymbolRef(layout.vtable_symbol))
        values = init.values if isinstance(init, cpp.StructInit) else []
        field_names = _all_fields(layout)
        for i, fname in enumerate(field_names):
            if i < len(values):
                _flatten_initializer(ctx, IntType(), values[i], out)
            else:
                out.append(0)
        return
    # Scalar word.
    if init is None:
        out.append(0)
    elif isinstance(init, cpp.IntLit):
        out.append(init.value)
    elif isinstance(init, cpp.BoolLit):
        out.append(1 if init.value else 0)
    elif isinstance(init, cpp.NullPtr):
        out.append(0)
    elif isinstance(init, cpp.EnumRef):
        out.append(ctx.enum_value(init))
    elif isinstance(init, cpp.FuncRef):
        out.append(SymbolRef(init.func))
    elif isinstance(init, cpp.AddrOf) and isinstance(init.operand, cpp.Var):
        out.append(SymbolRef(init.operand.name))
    elif isinstance(init, cpp.StructInit):
        for value in init.values:
            _flatten_initializer(ctx, IntType(), value, out)
    else:
        raise LoweringError(f"unsupported static initializer {init!r}")


def _all_fields(layout: ClassLayout) -> List[str]:
    names: List[str] = []
    chain: List[ClassLayout] = []
    probe: Optional[ClassLayout] = layout
    while probe is not None:
        chain.append(probe)
        probe = probe.base
    for cl in reversed(chain):
        names.extend(f.name for f in cl.decl.fields)
    return names


def _words_per(ctx: _UnitContext, tp: Type) -> int:
    if isinstance(tp, ClassRefType):
        return ctx.layout(tp.name).size // WORD
    if isinstance(tp, ArrayType):
        return tp.length * _words_per(ctx, tp.element)
    return 1


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def lower_unit(unit: cpp.TranslationUnit) -> Program:
    """Lower a whole translation unit to a GIMPLE :class:`Program`."""
    ctx = _UnitContext(unit)
    program = Program(unit.name)
    program.externs = [e.name for e in unit.externs]

    # Vtables (rodata).
    for decl in unit.classes:
        layout = ctx.layout(decl.name)
        if not layout.has_vtable:
            continue
        words: List = []
        for slot_name in layout.vtable_slots:
            impl = layout.vtable_impl.get(slot_name)
            if impl is None:
                raise LoweringError(
                    f"class {decl.name}: pure virtual {slot_name!r} has no "
                    "implementation and the class is instantiated")
            words.append(SymbolRef(impl))
        program.add_data(DataObject(layout.vtable_symbol, words, "rodata"))

    # Globals.
    for gv in unit.globals:
        words: List = []
        if gv.init is None:
            section = "bss"
            words = [0] * _words_per(ctx, gv.var_type)
            # Class globals still need their vptr even when zero-init.
            if isinstance(gv.var_type, ClassRefType):
                layout = ctx.layout(gv.var_type.name)
                if layout.has_vtable:
                    words[0] = SymbolRef(layout.vtable_symbol)
                    section = "data"
        else:
            _flatten_initializer(ctx, gv.var_type, gv.init, words)
            section = "rodata" if gv.is_const else "data"
        program.add_data(DataObject(gv.name, words, section))

    # Free functions.
    for fn in unit.functions:
        lowerer = _FunctionLowerer(ctx, fn.name, fn.params, fn.body)
        program.add_function(lowerer.run())

    # Methods.
    for decl in unit.classes:
        for method in decl.methods:
            if method.body is None:
                continue
            this_class = None if method.is_static else decl.name
            lowerer = _FunctionLowerer(ctx, mangle(decl.name, method.name),
                                       method.params, method.body,
                                       this_class=this_class)
            program.add_function(lowerer.run())

    program.check()
    return program
