"""MGCC frontend: C++ subset AST -> GIMPLE.

Main public names (in :mod:`.lower`): :func:`~.lower.lower_unit` (whole
translation unit to a :class:`~repro.compiler.gimple.ir.Program`),
:func:`~.lower.mangle` (``Class::method`` symbol names), and
:class:`~.lower.ClassLayout` (field offsets, object size, vtable slots —
also used by the execution harnesses to locate object fields in memory).
"""
