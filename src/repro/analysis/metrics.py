"""Model-size metrics.

Used by the experiment harness to report model complexity next to code
size, and by tests/benchmarks to characterize generated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..uml.statemachine import (FinalState, Pseudostate, State, StateMachine)
from ..uml.transitions import TransitionKind

__all__ = ["ModelMetrics", "measure_model"]


@dataclass(frozen=True)
class ModelMetrics:
    """Structural counts of one state machine."""

    name: str
    simple_states: int
    composite_states: int
    final_states: int
    pseudostates: int
    regions: int
    transitions: int
    completion_transitions: int
    internal_transitions: int
    guarded_transitions: int
    events: int
    max_depth: int
    behavior_statements: int

    @property
    def total_states(self) -> int:
        return self.simple_states + self.composite_states

    @property
    def total_vertices(self) -> int:
        return self.total_states + self.final_states + self.pseudostates

    def as_dict(self) -> Dict[str, int]:
        return {
            "states": self.total_states,
            "simple_states": self.simple_states,
            "composite_states": self.composite_states,
            "final_states": self.final_states,
            "pseudostates": self.pseudostates,
            "regions": self.regions,
            "transitions": self.transitions,
            "completion_transitions": self.completion_transitions,
            "internal_transitions": self.internal_transitions,
            "guarded_transitions": self.guarded_transitions,
            "events": self.events,
            "max_depth": self.max_depth,
            "behavior_statements": self.behavior_statements,
        }


def _depth_of(state: State) -> int:
    return 1 + sum(1 for _ in state.ancestors())


def measure_model(machine: StateMachine) -> ModelMetrics:
    """Compute :class:`ModelMetrics` for *machine*."""
    simple = composite = 0
    behavior_statements = 0
    max_depth = 0
    for state in machine.all_states():
        if state.is_composite:
            composite += 1
        else:
            simple += 1
        behavior_statements += (len(state.entry.statements)
                                + len(state.exit.statements)
                                + len(state.do_activity.statements))
        max_depth = max(max_depth, _depth_of(state))

    finals = pseudos = 0
    for vertex in machine.all_vertices():
        if isinstance(vertex, FinalState):
            finals += 1
        elif isinstance(vertex, Pseudostate):
            pseudos += 1

    transitions = list(machine.all_transitions())
    for tr in transitions:
        behavior_statements += len(tr.effect.statements)

    return ModelMetrics(
        name=machine.name,
        simple_states=simple,
        composite_states=composite,
        final_states=finals,
        pseudostates=pseudos,
        regions=sum(1 for _ in machine.all_regions()),
        transitions=len(transitions),
        completion_transitions=sum(1 for t in transitions if t.is_completion),
        internal_transitions=sum(
            1 for t in transitions if t.kind is TransitionKind.INTERNAL),
        guarded_transitions=sum(1 for t in transitions if t.guard is not None),
        events=len(machine.events),
        max_depth=max_depth,
        behavior_statements=behavior_statements,
    )
