"""Model-level dead-code report.

Aggregates the reachability and completion analyses into the report the
paper's optimization tool shows its user: which states, transitions,
regions and events are dead, and *why*.  The optimizer passes consume the
same primitives; this module exists so examples and tests can inspect a
human-readable diagnosis without running any transformation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from ..uml.statemachine import State, StateMachine
from ..uml.transitions import Transition
from .reachability import ReachabilityInfo, analyze_reachability

__all__ = ["DeadReason", "DeadState", "DeadTransition", "DeadCodeReport",
           "find_dead_code"]


class DeadReason(enum.Enum):
    """Why a model element can never execute."""

    NO_INCOMING = "no incoming transition"
    UNREACHABLE_SOURCE = "source state is unreachable"
    SHADOWED_BY_COMPLETION = "shadowed by an unguarded completion transition"
    FALSE_GUARD = "guard is statically false"
    UNREACHABLE = "not reachable from the initial state"


@dataclass(frozen=True)
class DeadState:
    """An unreachable state plus diagnosis."""

    name: str
    qualified_name: str
    reason: DeadReason
    is_composite: bool
    nested_state_count: int


@dataclass(frozen=True)
class DeadTransition:
    """A transition that can never fire plus diagnosis."""

    description: str
    reason: DeadReason


@dataclass(frozen=True)
class DeadCodeReport:
    """Everything dead in one model."""

    machine_name: str
    dead_states: Tuple[DeadState, ...]
    dead_transitions: Tuple[DeadTransition, ...]
    unused_events: Tuple[str, ...]
    reachability: ReachabilityInfo

    @property
    def is_clean(self) -> bool:
        return not (self.dead_states or self.dead_transitions
                    or self.unused_events)

    def summary(self) -> str:
        """Human-readable report (what the paper's tool shows the user)."""
        lines = [f"dead-code report for {self.machine_name!r}:"]
        if self.is_clean:
            lines.append("  model is clean - nothing to optimize")
            return "\n".join(lines)
        for ds in self.dead_states:
            extra = (f" (composite, {ds.nested_state_count} nested states)"
                     if ds.is_composite else "")
            lines.append(f"  dead state {ds.name}{extra}: {ds.reason.value}")
        for dt in self.dead_transitions:
            lines.append(f"  dead transition {dt.description}: "
                         f"{dt.reason.value}")
        for ev in self.unused_events:
            lines.append(f"  unused event {ev}: only triggers dead "
                         "transitions")
        return "\n".join(lines)


def _state_reason(state: State, info: ReachabilityInfo) -> DeadReason:
    incoming = [t for t in state.incoming() if t.source is not t.target]
    if not incoming:
        return DeadReason.NO_INCOMING
    if all(t in info.dead_transitions for t in state.incoming()):
        if any(t in info.completion.shadowed_transitions
               for t in state.incoming()):
            return DeadReason.SHADOWED_BY_COMPLETION
        return DeadReason.UNREACHABLE
    return DeadReason.UNREACHABLE


def _transition_reason(tr: Transition, info: ReachabilityInfo) -> DeadReason:
    if tr in info.completion.shadowed_transitions:
        return DeadReason.SHADOWED_BY_COMPLETION
    from ..uml.actions import BoolLit, const_fold
    if tr.guard is not None:
        folded = const_fold(tr.guard)
        if isinstance(folded, BoolLit) and folded.value is False:
            return DeadReason.FALSE_GUARD
    return DeadReason.UNREACHABLE_SOURCE


def find_dead_code(machine: StateMachine,
                   respect_completion_shadowing: bool = True,
                   ) -> DeadCodeReport:
    """Diagnose every dead element of *machine*."""
    info = analyze_reachability(
        machine, respect_completion_shadowing=respect_completion_shadowing)

    dead_states: List[DeadState] = []
    for state in machine.all_states():
        if info.is_reachable(state):
            continue
        dead_states.append(DeadState(
            name=state.name,
            qualified_name=state.qualified_name,
            reason=_state_reason(state, info),
            is_composite=state.is_composite,
            nested_state_count=len(list(state.descendant_states())),
        ))

    dead_transitions = tuple(
        DeadTransition(tr.describe(), _transition_reason(tr, info))
        for tr in info.dead_transitions)

    live_triggers = set()
    for tr in machine.all_transitions():
        if tr not in info.dead_transitions:
            for trig in tr.triggers:
                live_triggers.add(trig.key())
    unused_events = tuple(
        event.name for key, event in machine.events.items()
        if key not in live_triggers)

    return DeadCodeReport(
        machine_name=machine.name,
        dead_states=tuple(dead_states),
        dead_transitions=dead_transitions,
        unused_events=unused_events,
        reachability=info,
    )
