"""Completion-transition shadowing analysis.

Paper §III.C: *"According to the UML semantic, the completion transition
is first fired whatever the received event is."*  Concretely, when a state
finishes its entry behavior a completion event is generated and dispatched
**before** any pooled event; if the state owns an un-guarded completion
transition, that transition always wins and the state's event-triggered
transitions can never fire.

This analysis computes, purely structurally (no execution):

* the set of *always-completing* states — states guaranteed to take a
  completion transition the moment they are entered;
* the set of *shadowed transitions* — event-triggered transitions whose
  source is always-completing, i.e. transitions that are dead under UML
  semantics.

A state is always-completing when

* it is a simple state (or a composite whose only region has no initial
  pseudostate — such a composite completes immediately, like a simple
  state), **and**
* the disjunction of its completion-transition guards is a tautology;
  in practice we check the common cases: some completion transition is
  un-guarded or constant-true after folding, or an exhaustive
  guard/else pair exists (``[g]`` and ``[!g]``).

Composites with a running region are *not* always-completing: their
completion waits for the region's final state, so their event transitions
remain live in the meantime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set

from ..uml.actions import BoolLit, UnaryOp, const_fold
from ..uml.statemachine import State, StateMachine
from ..uml.transitions import Transition

__all__ = ["CompletionInfo", "analyze_completion", "is_always_completing"]


def _guard_is_true(transition: Transition) -> bool:
    if transition.guard is None:
        return True
    folded = const_fold(transition.guard)
    return isinstance(folded, BoolLit) and folded.value is True


def _completes_immediately_on_entry(state: State) -> bool:
    """True when the state's completion event is generated directly on
    entry (no nested region keeps running)."""
    if state.is_simple:
        return True
    region = state.regions[0] if state.regions else None
    return region is not None and region.initial is None


def _guards_exhaustive(transitions: List[Transition]) -> bool:
    """Check the guard disjunction for tautology (conservative).

    Recognized patterns: any true/absent guard, or a complementary pair
    ``g`` / ``!g`` (after folding).
    """
    folded = [const_fold(t.guard) if t.guard is not None else BoolLit(True)
              for t in transitions]
    if any(isinstance(g, BoolLit) and g.value for g in folded):
        return True
    for i, gi in enumerate(folded):
        for gj in folded[i + 1:]:
            if isinstance(gj, UnaryOp) and gj.op == "!" and gj.operand == gi:
                return True
            if isinstance(gi, UnaryOp) and gi.op == "!" and gi.operand == gj:
                return True
    return False


def is_always_completing(state: State) -> bool:
    """True when *state* always exits through a completion transition
    immediately after being entered (making its event transitions dead)."""
    completions = state.completion_transitions()
    if not completions:
        return False
    if not _completes_immediately_on_entry(state):
        return False
    return _guards_exhaustive(completions)


@dataclass(frozen=True)
class CompletionInfo:
    """Result of the shadowing analysis."""

    always_completing: FrozenSet[str]      # state names
    shadowed_transitions: tuple            # Transition objects (dead)

    def is_shadowed(self, transition: Transition) -> bool:
        return transition in self.shadowed_transitions


def analyze_completion(machine: StateMachine) -> CompletionInfo:
    """Run the shadowing analysis over every state of *machine*."""
    always: Set[str] = set()
    shadowed: List[Transition] = []
    for state in machine.all_states():
        if is_always_completing(state):
            always.add(state.name)
            shadowed.extend(state.event_transitions())
    return CompletionInfo(frozenset(always), tuple(shadowed))
