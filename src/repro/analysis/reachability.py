"""Reachability analysis over the state graph.

This is the model-level counterpart of the compiler's unreachable-code
elimination — except that, as the paper demonstrates, it sees what the
compiler cannot: *"a state with no incoming transition is an unreachable
state, so its code is a dead code"* (§III.D).  The control-flow graph the
compiler would have to reconstruct is already explicit in the model
(§IV.A), so the analysis is one fixpoint traversal.

The analysis handles:

* the machine's (and each entered composite's) default entry via initial
  pseudostates;
* pseudostate chains (choice/junction/history/entry/exit points);
* hierarchical entries (a transition targeting a nested state also makes
  its enclosing composites active);
* event bubbling — a transition from a composite is fireable while any
  descendant is active;
* completion shadowing (optional): transitions proven dead by
  :mod:`repro.analysis.completion` do not propagate reachability;
* statically-false guards: transitions whose folded guard is ``false``
  do not propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..uml.actions import BoolLit, const_fold
from ..uml.statemachine import (FinalState, Pseudostate, PseudostateKind,
                                Region, State, StateMachine, Vertex)
from ..uml.transitions import Transition
from .completion import CompletionInfo, analyze_completion

__all__ = ["ReachabilityInfo", "analyze_reachability"]


def _guard_statically_false(transition: Transition) -> bool:
    if transition.guard is None:
        return False
    folded = const_fold(transition.guard)
    return isinstance(folded, BoolLit) and folded.value is False


@dataclass(frozen=True)
class ReachabilityInfo:
    """Result of the reachability fixpoint.

    ``reachable`` / ``unreachable`` hold vertex element ids;
    convenience name-based views are provided for states.
    """

    machine_name: str
    reachable_ids: FrozenSet[int]
    unreachable_states: Tuple[str, ...]
    dead_transitions: tuple  # Transition objects that can never fire
    completion: CompletionInfo

    def is_reachable(self, vertex: Vertex) -> bool:
        return vertex.element_id in self.reachable_ids

    def is_dead(self, transition: Transition) -> bool:
        return transition in self.dead_transitions


def analyze_reachability(machine: StateMachine,
                         respect_completion_shadowing: bool = True,
                         ) -> ReachabilityInfo:
    """Compute reachable vertices and dead transitions of *machine*."""
    completion = (analyze_completion(machine) if respect_completion_shadowing
                  else CompletionInfo(frozenset(), ()))
    shadowed = set(completion.shadowed_transitions)

    reachable: Set[int] = set()
    default_entered: Set[int] = set()  # composites entered via their boundary
    worklist: List[Vertex] = []

    def mark(vertex: Vertex, via_boundary: bool = False) -> None:
        """Mark a vertex reachable; entering a state also activates its
        enclosing composites (hierarchical entry)."""
        if isinstance(vertex, State) and via_boundary and \
                vertex.element_id not in default_entered:
            default_entered.add(vertex.element_id)
            # Default entry runs the nested region's initial chain.
            for region in vertex.regions:
                initial = region.initial
                if initial is not None and initial.element_id not in reachable:
                    reachable.add(initial.element_id)
                    worklist.append(initial)
        if vertex.element_id in reachable:
            return
        reachable.add(vertex.element_id)
        worklist.append(vertex)
        for anc in vertex.owner_chain():
            if isinstance(anc, State) and anc.element_id not in reachable:
                reachable.add(anc.element_id)
                worklist.append(anc)

    # Seed: the top region's initial pseudostate.
    for region in machine.regions:
        initial = region.initial
        if initial is not None:
            mark(initial)

    transitions = list(machine.all_transitions())

    def process(vertex: Vertex) -> None:
        if isinstance(vertex, (Pseudostate, State)):
            for tr in transitions:
                if tr.source is not vertex:
                    continue
                if tr in shadowed or _guard_statically_false(tr):
                    continue
                _mark_target(tr)
        if isinstance(vertex, Pseudostate) and vertex.kind in (
                PseudostateKind.SHALLOW_HISTORY, PseudostateKind.DEEP_HISTORY):
            # History without an explicit default falls back to the
            # region's initial chain.
            region = vertex.container
            if region is not None and not vertex.outgoing():
                initial = region.initial
                if initial is not None:
                    mark(initial)

    def _mark_target(tr: Transition) -> None:
        target = tr.target
        mark(target, via_boundary=isinstance(target, State))

    while worklist:
        process(worklist.pop())

    unreachable_states = tuple(
        s.name for s in machine.all_states() if s.element_id not in reachable)

    dead: List[Transition] = []
    for tr in transitions:
        if tr in shadowed:
            dead.append(tr)
        elif _guard_statically_false(tr):
            dead.append(tr)
        elif tr.source.element_id not in reachable:
            dead.append(tr)
    return ReachabilityInfo(
        machine_name=machine.name,
        reachable_ids=frozenset(reachable),
        unreachable_states=unreachable_states,
        dead_transitions=tuple(dead),
        completion=completion,
    )
