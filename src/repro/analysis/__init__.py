"""Model analyses: reachability, completion shadowing, dead code, metrics.

Pure, side-effect-free queries over a :class:`~repro.uml.StateMachine`
that the optimizer's passes and the experiment harnesses build on.
Main public names: :func:`find_dead_code` (-> :class:`DeadCodeReport`
of unreachable states and shadowed transitions),
:func:`analyze_completion` / :func:`is_always_completing`,
:func:`analyze_reachability` (-> :class:`ReachabilityInfo`), and
:func:`measure_model` (-> :class:`ModelMetrics` state/transition
counts).
"""

from .completion import CompletionInfo, analyze_completion, is_always_completing
from .deadcode import (DeadCodeReport, DeadReason, DeadState, DeadTransition,
                       find_dead_code)
from .metrics import ModelMetrics, measure_model
from .reachability import ReachabilityInfo, analyze_reachability

__all__ = [
    "CompletionInfo", "analyze_completion", "is_always_completing",
    "DeadCodeReport", "DeadReason", "DeadState", "DeadTransition",
    "find_dead_code",
    "ModelMetrics", "measure_model",
    "ReachabilityInfo", "analyze_reachability",
]
