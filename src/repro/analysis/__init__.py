"""Model analyses: reachability, completion shadowing, dead code, metrics."""

from .completion import CompletionInfo, analyze_completion, is_always_completing
from .deadcode import (DeadCodeReport, DeadReason, DeadState, DeadTransition,
                       find_dead_code)
from .metrics import ModelMetrics, measure_model
from .reachability import ReachabilityInfo, analyze_reachability

__all__ = [
    "CompletionInfo", "analyze_completion", "is_always_completing",
    "DeadCodeReport", "DeadReason", "DeadState", "DeadTransition",
    "find_dead_code",
    "ModelMetrics", "measure_model",
    "ReachabilityInfo", "analyze_reachability",
]
