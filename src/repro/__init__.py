"""repro — reproduction of "Toward optimized code generation through
model-based optimization" (Charfi, Mraidha, Gérard, Terrier, Boulet —
DATE 2010).

The package implements the paper's full pipeline:

* :mod:`repro.uml` — UML 2.x state-machine metamodel subset with a fluent
  builder, validation and JSON serialization;
* :mod:`repro.semantics` — configurable run-to-completion interpreter
  (semantic variation points, traces);
* :mod:`repro.analysis` — model analyses: reachability, completion-
  transition shadowing, dead-element detection, metrics;
* :mod:`repro.optim` — the model-level optimization framework (the paper's
  contribution): selectable behaviour-preserving model transformations;
* :mod:`repro.cpp` — a C++ subset AST with pretty printer;
* :mod:`repro.codegen` — the three code-generation patterns studied in
  the paper (Nested Switch, State Pattern, State Transition Table) plus
  the flattened-switch hybrid;
* :mod:`repro.compiler` — "MGCC", a GCC-shaped optimizing compiler:
  GIMPLE IR, SSA, classic optimizations, RTL lowering, register
  allocation, and pluggable targets (``rt32``, ``rt16``) with
  byte-accurate size accounting;
* :mod:`repro.vm` — an RT ISA simulator that assembles and *executes*
  the compiler's output, checks it trace-for-trace against the
  interpreter, and counts deterministic cycles;
* :mod:`repro.engine` — content-addressed compile cache (pluggable
  memory/disk/tiered backends), batch planner and worker pool behind
  every experiment;
* :mod:`repro.store` — persistent on-disk artifact store: sharded,
  integrity-checked, LRU-collected entries keyed by engine
  fingerprints, safe across processes;
* :mod:`repro.service` — the batch compile service: an asyncio
  JSON-lines server (unix socket / TCP) with request coalescing and
  per-client stats, a blocking client, and the
  ``python -m repro.service`` CLI;
* :mod:`repro.experiments` — harnesses regenerating the paper's Figure 1,
  Table 1 and Table 2, plus parameter sweeps and the simulated dynamics
  table.

Quickstart::

    from repro import build_flat_example, optimize_and_compare

    result = optimize_and_compare(build_flat_example())
    print(result.summary())
"""

__version__ = "1.0.0"

from .pipeline import (CompareResult, PipelineResult, compile_machine,
                       optimize_and_compare, run_pipeline)
from .experiments.models import (
    flat_machine_with_unreachable_state as build_flat_example,
    hierarchical_machine_with_shadowed_composite as build_hierarchical_example,
)

__all__ = [
    "__version__",
    "CompareResult",
    "PipelineResult",
    "compile_machine",
    "optimize_and_compare",
    "run_pipeline",
    "build_flat_example",
    "build_hierarchical_example",
]
