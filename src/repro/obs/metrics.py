"""Process-wide metrics: labeled counters, gauges, log-bucketed
histograms, and the registry that owns them.

One :data:`REGISTRY` per process is the publication point for every
layer — the engine's cache counters, the VM's cycle counters, the
fleet harness's dispatch totals — and the service ``metrics`` endpoint
(schema v2) merges its own registry with this one at scrape time, so
"what is this process doing" is one snapshot away everywhere.

Design rules (inherited from the PR 8 service histograms, now shared):

* **Cheap on the hot path.**  Recording is a dict lookup plus a few
  adds under one per-metric lock; all percentile/mean math happens at
  read time.
* **Histograms, not reservoirs** — by default.  Values land in fixed
  log-spaced buckets (×1.35 steps from 0.05 ms to ~2 min when the
  values are seconds; the bounds are unit-agnostic).  Percentiles are
  the upper bound of the covering bucket: deterministic, mergeable,
  within one bucket width of the truth.  ``exact=True`` opts a
  histogram into retaining raw samples for exact nearest-rank
  percentiles — the load generator can afford that; a server must not.
* **Labels are kwargs.**  ``counter.inc(op="compile", outcome="ok")``;
  each distinct label set is an independent series.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["DEFAULT_BOUNDS", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "REGISTRY"]


def _log_bounds() -> List[float]:
    bounds: List[float] = []
    edge = 0.00005                      # 0.05 ms when values are seconds
    while edge < 120.0:                 # ~2 minutes
        bounds.append(edge)
        edge *= 1.35
    bounds.append(float("inf"))
    return bounds


#: The shared ×1.35 log-bucket ladder (39 buckets).
DEFAULT_BOUNDS = tuple(_log_bounds())

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def label_string(key: _LabelKey) -> str:
    """Canonical rendering of one series' label set (``""`` for the
    unlabeled series)."""
    return ",".join(f"{k}={v}" for k, v in key)


class _Metric:
    """Common shape: a named family of label-keyed series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "series": self.series()}

    def series(self) -> Dict[str, Any]:     # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing per-series totals."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[_LabelKey, float] = {}

    def inc(self, value: float = 1, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> Dict[str, float]:
        with self._lock:
            return {label_string(key): value
                    for key, value in sorted(self._series.items())}


class Gauge(_Metric):
    """A settable per-series level (queue depths, high-water marks)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def add(self, delta: float, **labels: Any) -> float:
        """Adjust by *delta*; returns the new level."""
        key = _label_key(labels)
        with self._lock:
            value = self._series.get(key, 0) + delta
            self._series[key] = value
            return value

    def max_with(self, value: float, **labels: Any) -> float:
        """Raise the gauge to *value* if higher (sticky high water)."""
        key = _label_key(labels)
        with self._lock:
            level = max(self._series.get(key, 0), value)
            self._series[key] = level
            return level

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def series(self) -> Dict[str, float]:
        with self._lock:
            return {label_string(key): value
                    for key, value in sorted(self._series.items())}


class _HistogramSeries:
    __slots__ = ("counts", "count", "total", "samples")

    def __init__(self, n_buckets: int, exact: bool) -> None:
        self.counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.samples: Optional[List[float]] = [] if exact else None


class Histogram(_Metric):
    """Log-bucketed distribution; ``exact=True`` retains raw samples
    for exact nearest-rank percentiles (unbounded memory — load
    generators and tests only).  Values are unit-agnostic: record
    seconds, read seconds."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 bounds: Optional[Iterable[float]] = None,
                 exact: bool = False) -> None:
        super().__init__(name, help)
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds \
            else DEFAULT_BOUNDS
        self.exact = bool(exact)
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def _get(self, key: _LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                len(self.bounds), self.exact)
        return series

    def record(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        index = 0
        for index, bound in enumerate(self.bounds):  # ~39 bounds: linear
            if value <= bound:                       # scan beats bisect
                break                                # at this size
        with self._lock:
            series = self._get(key)
            series.counts[index] += 1
            series.count += 1
            series.total += value
            if series.samples is not None:
                series.samples.append(value)

    # -- reads --------------------------------------------------------------

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def mean(self, **labels: Any) -> Optional[float]:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or not series.count:
                return None
            return series.total / series.count

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Quantile *q* of one series: exact nearest-rank when the
        histogram retains samples, else the upper bound of the covering
        bucket (``None`` when the series is empty)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or not series.count:
                return None
            if series.samples is not None:
                ordered = sorted(series.samples)
                rank = max(1, math.ceil(q * len(ordered)))
                return ordered[rank - 1]
            need = max(1, int(q * series.count + 0.9999999))
            seen = 0
            for index, bucket_count in enumerate(series.counts):
                seen += bucket_count
                if seen >= need:
                    bound = self.bounds[index]
                    if bound == float("inf"):
                        bound = self.bounds[-2] * 1.35
                    return bound
            return self.bounds[-2]

    def labelsets(self) -> List[Dict[str, str]]:
        """The distinct label sets recorded so far."""
        with self._lock:
            return [dict(key) for key in sorted(self._series)]

    def series(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            keys = sorted(self._series)
        out: Dict[str, Dict[str, Any]] = {}
        for key in keys:
            labels = dict(key)
            out[label_string(key)] = {
                "count": self.count(**labels),
                "sum": self.sum(**labels),
                "p50": self.percentile(0.50, **labels),
                "p99": self.percentile(0.99, **labels),
            }
        return out


class MetricsRegistry:
    """Get-or-create home of one process's (or one service's) metrics.

    Re-requesting a name returns the existing instrument; requesting
    an existing name as a different kind raises ``TypeError`` — two
    subsystems silently sharing one name as different types is a bug.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  bounds: Optional[Iterable[float]] = None,
                  exact: bool = False) -> Histogram:
        return self._get_or_create(Histogram, name, help,
                                   bounds=bounds, exact=exact)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every metric's kind, help and series values (plain JSON)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.describe()
                for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Drop every registered metric (tests only — live handles
        held by other modules keep publishing into detached objects)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry every layer publishes into.
REGISTRY = MetricsRegistry()
