"""Span-based structured tracing with cross-process context propagation.

Design rules:

* **Near-zero when off.**  The module-level tracer defaults to sample
  ratio 0; :func:`span` then costs one function call, one
  ``ContextVar.get`` and a float compare before returning the shared
  :data:`NOOP_SPAN` singleton — no allocation, no timestamps.  Hot
  paths that want attributes guard them with ``if sp.recording:`` so
  the disabled mode never builds kwargs dicts either.
  ``scripts/check_obs_overhead.py`` gates exactly this property.
* **Parent-based sampling.**  Only *root* spans consult the sample
  ratio.  A span opened under a recording parent — ambient or an
  explicit remote :class:`SpanContext` — always records, so one
  sampling decision at the trace root (typically the client) governs
  the whole distributed trace: a worker process whose own tracer is
  disabled still records spans for chunks that arrive with a trace
  context, because the upstream opted in.
* **Explicit beats ambient at boundaries.**  Within a process the
  current span rides a :mod:`contextvars` context (asyncio-task- and
  thread-safe; note executor threads and ``threading.Thread`` do *not*
  inherit it — use :func:`attach`).  Across the service wire and chunk
  submissions the parent travels as an explicit
  ``{"trace_id": ..., "parent_id": ...}`` dict
  (:meth:`SpanContext.to_wire` / :meth:`SpanContext.from_wire`).
* **Finished spans are plain dicts.**  A span that ends is rendered
  once (:meth:`Span.as_dict`: JSON-safe, schema below) and buffered on
  its tracer; :meth:`Tracer.drain` removes-and-returns a trace's spans
  so the server can piggyback worker spans on its reply and the client
  can assemble the full trace.  The buffer is bounded
  (``max_spans``); overflow increments ``dropped`` instead of growing.

Span dict schema::

    {"name": str, "trace_id": hex, "span_id": hex, "parent_id": hex|None,
     "ts": float epoch-seconds, "dur": float seconds,
     "pid": int, "tid": int, "proc": str, "attrs": {str: json-safe}}

``ts`` is wall clock (so spans from different processes align on one
timeline); ``dur`` is measured with ``perf_counter`` (monotonic).
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["SpanContext", "Span", "NOOP_SPAN", "Tracer", "tracer_from_env",
           "get_tracer", "set_tracer", "configure", "span", "attach",
           "current_context"]

#: Ambient current-span context (per asyncio task / per thread).
_CURRENT: ContextVar[Optional["SpanContext"]] = ContextVar(
    "repro_obs_current_span", default=None)

#: Sentinel: "derive the parent from the ambient context".
_AMBIENT = object()


def _new_id() -> str:
    return os.urandom(8).hex()


class SpanContext:
    """Immutable ``(trace_id, span_id)`` pair — the part of a span that
    crosses thread, task, process and wire boundaries."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> Dict[str, str]:
        """The request/chunk field a child process re-parents under."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id}

    @staticmethod
    def from_wire(data: Any) -> Optional["SpanContext"]:
        """Rebuild a context from a wire dict (None on absent/garbage —
        an untraced or malformed request must never error here)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        parent_id = data.get("parent_id")
        if isinstance(trace_id, str) and isinstance(parent_id, str) \
                and trace_id and parent_id:
            return SpanContext(trace_id, parent_id)
        return None

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SpanContext) and \
            other.trace_id == self.trace_id and \
            other.span_id == self.span_id

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))


class Span:
    """One recording span.  Use as a context manager (installs itself
    as the ambient parent) or call :meth:`end` explicitly (no ambient
    propagation — right for request-scoped spans whose children get
    the context passed explicitly)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "ts", "_t0",
                 "dur", "attrs", "_tracer", "_token")

    recording = True

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self.dur = 0.0
        self.attrs: Optional[Dict[str, Any]] = None
        self._tracer: Optional["Tracer"] = tracer
        self._token = None

    @property
    def ctx(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (last write per key wins)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(SpanContext(self.trace_id, self.span_id))
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end()

    def end(self) -> None:
        """Finish the span (idempotent) and buffer it on its tracer."""
        tracer = self._tracer
        if tracer is None:
            return
        self._tracer = None
        self.dur = time.perf_counter() - self._t0
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:
                pass        # ended in a different context; harmless
            self._token = None
        tracer._record(self)

    def as_dict(self) -> Dict[str, Any]:
        attrs: Dict[str, Any] = {}
        if self.attrs:
            for key, value in self.attrs.items():
                if value is None or isinstance(value, (bool, int, float,
                                                       str)):
                    attrs[key] = value
                else:
                    attrs[key] = str(value)
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "dur": self.dur,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "proc": "",              # stamped by the recording tracer
            "attrs": attrs,
        }


class _NoopSpan:
    """The shared do-nothing span disabled tracers hand out."""

    __slots__ = ()

    recording = False
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    ts = 0.0
    dur = 0.0
    attrs = None
    ctx = None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Hands out spans and buffers the finished ones (thread-safe).

    ``sample_ratio`` governs *root* spans only (see the module
    docstring); ``max_spans`` bounds the buffer; ``process`` labels
    this process in exported traces.
    """

    def __init__(self, sample_ratio: float = 0.0,
                 max_spans: int = 100_000,
                 process: Optional[str] = None) -> None:
        self.sample_ratio = float(sample_ratio)
        self.max_spans = max(1, int(max_spans))
        self.process = process or f"pid-{os.getpid()}"
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []

    @property
    def enabled(self) -> bool:
        return self.sample_ratio > 0.0

    # -- span creation (hot path) -------------------------------------------

    def span(self, name: str, parent: Any = _AMBIENT) -> Any:
        """A new span under *parent* (default: the ambient span).

        Returns :data:`NOOP_SPAN` for unsampled roots; children of a
        recording parent — including an explicit remote
        :class:`SpanContext` — always record.
        """
        if parent is _AMBIENT:
            parent = _CURRENT.get()
        if parent is None:
            ratio = self.sample_ratio
            if ratio <= 0.0 or (ratio < 1.0 and random.random() >= ratio):
                return NOOP_SPAN
            return Span(self, name, _new_id(), None)
        if isinstance(parent, SpanContext):
            return Span(self, name, parent.trace_id, parent.span_id)
        if not parent.recording:
            return NOOP_SPAN
        return Span(self, name, parent.trace_id, parent.span_id)

    # -- buffer -------------------------------------------------------------

    def _record(self, span: Span) -> None:
        rendered = span.as_dict()
        rendered["proc"] = self.process
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(rendered)

    def ingest(self, span_dicts: Iterable[Dict[str, Any]]) -> int:
        """Adopt finished spans from another process (chunk replies,
        response envelopes); returns how many were kept."""
        kept = 0
        with self._lock:
            for rendered in span_dicts or ():
                if not isinstance(rendered, dict):
                    continue
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(rendered)
                kept += 1
        return kept

    def drain(self, trace_id: Optional[str] = None
              ) -> List[Dict[str, Any]]:
        """Remove-and-return buffered spans (all, or one trace's)."""
        with self._lock:
            if trace_id is None:
                out, self._spans = self._spans, []
                return out
            out = [s for s in self._spans if s.get("trace_id") == trace_id]
            if out:
                self._spans = [s for s in self._spans
                               if s.get("trace_id") != trace_id]
            return out

    def spans(self) -> List[Dict[str, Any]]:
        """A snapshot of the buffer (spans stay buffered)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans = []
            self.dropped = 0


def tracer_from_env(environ: Optional[Dict[str, str]] = None) -> Tracer:
    """A tracer configured from ``REPRO_TRACE`` (unset/0 = disabled;
    a ratio in ``(0, 1]`` samples that fraction of root spans; the
    words ``1``/``true``/``on``/``yes`` mean ratio 1.0)."""
    raw = (environ if environ is not None else os.environ).get(
        "REPRO_TRACE", "").strip()
    if not raw:
        return Tracer(sample_ratio=0.0)
    try:
        ratio = float(raw)
    except ValueError:
        ratio = 1.0 if raw.lower() in ("true", "on", "yes") else 0.0
    return Tracer(sample_ratio=max(0.0, min(1.0, ratio)))


#: The process-wide tracer every instrumented module goes through.
_TRACER = tracer_from_env()


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process tracer; returns the previous one (tests and
    profilers install a private tracer and restore the old)."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def configure(sample_ratio: Optional[float] = None,
              process: Optional[str] = None,
              max_spans: Optional[int] = None) -> Tracer:
    """Adjust the process tracer in place (``--trace-out`` flags use
    this to flip sampling on without replacing the buffer)."""
    if sample_ratio is not None:
        _TRACER.sample_ratio = float(sample_ratio)
    if process is not None:
        _TRACER.process = process
    if max_spans is not None:
        _TRACER.max_spans = max(1, int(max_spans))
    return _TRACER


def span(name: str, parent: Any = _AMBIENT) -> Any:
    """A span from the process tracer (the instrumentation entry
    point; see :meth:`Tracer.span`)."""
    return _TRACER.span(name, parent)


def current_context() -> Optional[SpanContext]:
    return _CURRENT.get()


@contextmanager
def attach(ctx: Optional[SpanContext]):
    """Install *ctx* as the ambient parent for the ``with`` body — the
    bridge into executor threads and ``threading.Thread`` targets,
    which do not inherit the spawning context."""
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        try:
            _CURRENT.reset(token)
        except ValueError:
            pass
