"""``python -m repro.obs`` — inspect and produce trace files.

Subcommands::

    view TRACE.json          render a Chrome-trace file written by this
                             repo as a stage-breakdown tree
    export --out TRACE.json  trace a small cold compile end-to-end and
                             write a Perfetto-loadable trace_event file

``export`` is the one-command demo of the whole subsystem: it enables
a full-sampling tracer, compiles a generated workload machine through
the real pipeline (every stage/pass span the compiler emits), and
writes the result for https://ui.perfetto.dev or ``about:tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (SchemaMismatch, load_chrome_trace, stage_tree,
                     write_chrome_trace)
from .trace import Tracer, set_tracer


def _span_from_event(event):
    args = event.get("args", {})
    return {
        "name": event.get("name", "?"),
        "trace_id": args.get("trace_id"),
        "span_id": args.get("span_id"),
        "parent_id": args.get("parent_id"),
        "ts": event.get("ts", 0.0) / 1e6,
        "dur": event.get("dur", 0.0) / 1e6,
        "pid": event.get("pid", 0),
        "tid": event.get("tid", 0),
        "proc": "",
        "attrs": {k: v for k, v in args.items()
                  if k not in ("trace_id", "span_id", "parent_id")},
    }


def cmd_view(args) -> int:
    try:
        doc = load_chrome_trace(args.trace)
    except SchemaMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    events = [e for e in doc.get("traceEvents", [])
              if e.get("ph") == "X"]
    spans = [_span_from_event(e) for e in events]
    # Re-attach the process names recorded in metadata events.
    names = {e.get("pid"): e.get("args", {}).get("name", "")
             for e in doc.get("traceEvents", [])
             if e.get("ph") == "M" and e.get("name") == "process_name"}
    for s in spans:
        s["proc"] = names.get(s["pid"], "")
    print(stage_tree(spans))
    print(f"\n{len(spans)} span(s); otherData="
          f"{json.dumps(doc.get('otherData', {}), sort_keys=True)}")
    return 0


def cmd_export(args) -> int:
    from ..compiler import OptLevel
    from ..experiments.workload import WorkloadSpec, generate_machine
    from ..pipeline import compile_machine
    from ..vm.image import assemble

    tracer = Tracer(sample_ratio=1.0, process="export")
    previous = set_tracer(tracer)
    try:
        machine = generate_machine(WorkloadSpec(
            n_live=args.n_live, events_per_state=3, seed=args.seed))
        with tracer.span("obs.export"):
            result = compile_machine(machine, pattern=args.pattern,
                                     level=OptLevel(args.level))
            assemble(result.module)
    finally:
        set_tracer(previous)
    spans = tracer.spans()
    count = write_chrome_trace(args.out, spans,
                               metadata={"machine": machine.name,
                                         "pattern": args.pattern,
                                         "level": args.level})
    print(f"wrote {count} event(s) ({len(spans)} spans) to {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing, or run:"
          f"\n    python -m repro.obs view {args.out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace viewer/exporter for repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)

    p_view = sub.add_parser("view", help="print a trace as a stage tree")
    p_view.add_argument("trace", help="Chrome-trace JSON file")
    p_view.set_defaults(fn=cmd_view)

    p_export = sub.add_parser(
        "export", help="trace a small compile and write Chrome JSON")
    p_export.add_argument("--out", required=True,
                          help="output trace_event JSON path")
    p_export.add_argument("--pattern", default="state-pattern")
    p_export.add_argument("--level", default="-Os")
    p_export.add_argument("--n-live", type=int, default=8)
    p_export.add_argument("--seed", type=int, default=3)
    p_export.set_defaults(fn=cmd_export)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
