""":mod:`repro.obs` — zero-dependency tracing + metrics for every layer.

Two small, orthogonal primitives:

* :mod:`repro.obs.trace` — span-based structured tracing.  A
  :class:`~repro.obs.trace.Tracer` hands out nested
  :class:`~repro.obs.trace.Span` objects (monotonic durations,
  wall-clock anchors, attributes) whose parentage propagates through
  an ambient :mod:`contextvars` context *and* across process/wire
  boundaries via explicit ``(trace_id, parent_id)`` contexts — the
  compile service ships worker-process spans back piggybacked on chunk
  replies and re-parents them under the server's batch span, so one
  client request yields **one connected trace** across client →
  server → worker → per-unit compile.  Off by default with a no-op
  span singleton (near-zero overhead, gated in CI by
  ``scripts/check_obs_overhead.py``); enable with ``REPRO_TRACE=1``
  (or any sample ratio in ``(0, 1]``) or
  :func:`~repro.obs.trace.configure`.
* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters, gauges and log-bucketed histograms.  The engine's cache
  counters, the VM's cycle counters, the fleet harness and the
  service metrics endpoint all publish here; the service ``metrics``
  document (schema v2) is a view over it.

:mod:`repro.obs.export` renders collected spans as Chrome
``trace_event`` JSON (loadable in Perfetto / ``about:tracing``) or as
a human stage-breakdown tree; ``python -m repro.obs view|export`` is
the CLI, and the experiments/service/fuzz CLIs grow ``--trace-out``
flags on top of it.
"""

from .metrics import (REGISTRY, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .trace import (NOOP_SPAN, Span, SpanContext, Tracer, attach,
                    configure, current_context, get_tracer, set_tracer,
                    span, tracer_from_env)

__all__ = [
    "REGISTRY", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NOOP_SPAN", "Span", "SpanContext", "Tracer", "attach", "configure",
    "current_context", "get_tracer", "set_tracer", "span",
    "tracer_from_env",
]
