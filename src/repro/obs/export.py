"""Render collected spans for humans and for trace viewers.

Two formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON (the ``{"traceEvents": [...]}`` object form),
  loadable directly in Perfetto (https://ui.perfetto.dev) or Chrome's
  ``about:tracing``.  Spans become ``ph: "X"`` complete events with
  microsecond timestamps normalised so the earliest span starts at 0;
  per-process/thread metadata events name the lanes.  The current
  ``METRICS_SCHEMA_VERSION`` is stamped into ``otherData`` so a stale
  viewer of the companion metrics document fails loudly instead of
  misreading fields (:func:`load_chrome_trace` enforces the check).
* :func:`stage_tree` — a plain-text parent/child tree with millisecond
  durations, for terminals: what ``scripts/profile_compile.py`` and
  ``python -m repro.obs view`` print.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["chrome_trace", "write_chrome_trace", "load_chrome_trace",
           "SchemaMismatch", "stage_tree"]


def _metrics_schema_version() -> int:
    # Imported lazily: obs must not depend on the service package at
    # import time (the service imports obs).
    from ..service.metrics import METRICS_SCHEMA_VERSION
    return METRICS_SCHEMA_VERSION


class SchemaMismatch(RuntimeError):
    """A trace file was written under a different metrics schema than
    this code understands."""


def chrome_trace(spans: Iterable[Dict[str, Any]],
                 metadata: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """Convert span dicts (``Tracer.spans()`` / ``drain()`` output)
    into one Chrome ``trace_event`` document."""
    spans = [s for s in spans if isinstance(s, dict)]
    base = min((s.get("ts", 0.0) for s in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    lanes: Dict[Any, str] = {}
    for s in spans:
        pid = s.get("pid", 0)
        tid = s.get("tid", 0)
        proc = s.get("proc") or f"pid-{pid}"
        if pid not in lanes:
            lanes[pid] = proc
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": proc}})
        args: Dict[str, Any] = {"trace_id": s.get("trace_id"),
                                "span_id": s.get("span_id"),
                                "parent_id": s.get("parent_id")}
        attrs = s.get("attrs")
        if attrs:
            args.update(attrs)
        events.append({
            "ph": "X",
            "name": s.get("name", "?"),
            "cat": "repro",
            "ts": round((s.get("ts", 0.0) - base) * 1e6, 3),
            "dur": round(s.get("dur", 0.0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    other: Dict[str, Any] = {
        "generator": "repro.obs",
        "metrics_schema": _metrics_schema_version(),
        "span_count": len(spans),
    }
    if metadata:
        other.update(metadata)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def write_chrome_trace(path: str, spans: Iterable[Dict[str, Any]],
                       metadata: Optional[Dict[str, Any]] = None) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    doc = chrome_trace(spans, metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(doc["traceEvents"])


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Load a trace written by :func:`write_chrome_trace`, refusing
    files stamped with a different metrics schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    stamped = doc.get("otherData", {}).get("metrics_schema")
    expected = _metrics_schema_version()
    if stamped != expected:
        raise SchemaMismatch(
            f"{path}: trace stamped metrics_schema={stamped!r}, this "
            f"viewer understands {expected} — re-export the trace")
    return doc


# -- human stage tree -------------------------------------------------------


def _sort_key(span: Dict[str, Any]):
    return (span.get("ts", 0.0), span.get("name", ""))


def stage_tree(spans: Iterable[Dict[str, Any]],
               max_children: int = 40) -> str:
    """Render spans as an indented parent→child tree with millisecond
    durations and each child's share of its parent."""
    spans = sorted((s for s in spans if isinstance(s, dict)),
                   key=_sort_key)
    if not spans:
        return "(no spans)"
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None           # orphan (e.g. unsampled parent): root it
        children.setdefault(parent, []).append(s)

    lines: List[str] = []

    def emit(span: Dict[str, Any], depth: int, parent_dur: float) -> None:
        dur = span.get("dur", 0.0)
        share = f" {dur / parent_dur:>5.1%}" if parent_dur > 0 else ""
        proc = span.get("proc", "")
        label = f"{'  ' * depth}{span.get('name', '?')}"
        lines.append(f"{label:<44} {1e3 * dur:>10.3f} ms{share}"
                     f"  [{proc}]")
        kids = children.get(span["span_id"], [])
        for kid in kids[:max_children]:
            emit(kid, depth + 1, dur)
        if len(kids) > max_children:
            lines.append(f"{'  ' * (depth + 1)}"
                         f"... {len(kids) - max_children} more")

    roots = children.get(None, [])
    for root in roots:
        emit(root, 0, 0.0)
    return "\n".join(lines)
