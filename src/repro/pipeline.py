"""High-level pipeline API: model -> (optimize) -> generate -> compile.

This is the paper's "two step optimization approach" (§VI) in one call:
optimizations are performed **both** at the model level (:mod:`repro.optim`)
and in the compiler (:mod:`repro.compiler` at ``-Os``), and the existing
compiler optimizations are reused as they are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import ExperimentEngine

from .codegen import CodeGenerator, generator_by_name
from .compiler import CompileResult, OptLevel, compile_unit
from .obs.trace import span as _span
from .compiler.target import (DEFAULT_TARGET_NAME, TargetDescription,
                              resolve_target)
from .optim import OptimizationReport
from .optim.equivalence import EquivalenceReport
from .semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from .uml.statemachine import StateMachine

__all__ = ["PipelineResult", "CompareResult", "TunedCompileResult",
           "compile_machine", "compile_machine_delta", "run_pipeline",
           "optimize_and_compare", "tuned_compile"]


@dataclass
class PipelineResult:
    """Artifacts of one model -> assembly run."""

    machine: StateMachine
    pattern: str
    opt_level: OptLevel
    model_report: Optional[OptimizationReport]
    compile_result: CompileResult

    @property
    def total_size(self) -> int:
        return self.compile_result.total_size

    @property
    def target_name(self) -> str:
        target = self.compile_result.target
        return target.name if target is not None \
            else resolve_target(None).name

    def summary(self) -> str:
        lines = [f"{self.machine.name} [{self.pattern}, "
                 f"{self.opt_level.value}, {self.target_name}] -> "
                 f"{self.total_size} bytes"]
        if self.model_report is not None and self.model_report.changed:
            lines.append(self.model_report.summary())
        return "\n".join(lines)


def compile_machine(machine: StateMachine, pattern: str = "nested-switch",
                    level: OptLevel = OptLevel.OS,
                    capture_dumps: bool = False,
                    target: Union[TargetDescription, str, None] = None,
                    ) -> CompileResult:
    """Generate code for *machine* with *pattern* and compile it for
    *target* (a registered name, a description, or None = default)."""
    generator = generator_by_name(pattern)
    with _span("stage.generate"):
        unit = generator.generate(machine)
    return compile_unit(unit, level, capture_dumps=capture_dumps,
                        target=target)


def compile_machine_delta(machine: StateMachine,
                          pattern: str = "nested-switch",
                          level: OptLevel = OptLevel.OS,
                          target: Union[TargetDescription, str, None] = None,
                          unit_cache=None, stats_out=None) -> CompileResult:
    """Incremental variant of :func:`compile_machine`: generate, lower,
    split into compilation units, reuse cache-hot units, compile the
    misses and relink.  Byte-identical to the monolithic path
    (:mod:`repro.compiler.units` guarantees it); with a warm
    *unit_cache* an edit to one transition recompiles only the units it
    reaches.  *stats_out* (a :class:`~repro.compiler.DeltaStats`)
    receives the unit reuse accounting of this call.
    """
    from .compiler import compile_program_incremental
    from .compiler.frontend.lower import lower_unit
    generator = generator_by_name(pattern)
    with _span("stage.generate"):
        unit = generator.generate(machine)
    with _span("stage.lower"):
        program = lower_unit(unit)
    return compile_program_incremental(program, level=level, target=target,
                                       unit_cache=unit_cache,
                                       extra_key=pattern,
                                       stats_out=stats_out)


def run_pipeline(machine: StateMachine, pattern: str = "nested-switch",
                 level: OptLevel = OptLevel.OS,
                 model_optimizations: Optional[Sequence[str]] = None,
                 optimize_model: bool = True,
                 semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 target: Union[TargetDescription, str, None] = None,
                 engine: Optional["ExperimentEngine"] = None,
                 ) -> PipelineResult:
    """The full two-step pipeline.

    ``optimize_model=False`` reproduces the paper's baseline (compiler
    optimizations only); the default runs the model-level pipeline first.
    Passing an :class:`~repro.engine.ExperimentEngine` routes the work
    through its cache (a private single-call engine otherwise — the
    engine owns the one implementation of this workflow).
    """
    from .engine import ExperimentEngine
    eng = engine if engine is not None else ExperimentEngine()
    return eng.run_pipeline(machine, pattern=pattern, level=level,
                            model_optimizations=model_optimizations,
                            optimize_model=optimize_model,
                            semantics=semantics, target=target)


@dataclass
class TunedCompileResult:
    """What :func:`tuned_compile` hands back: the winning measured
    configuration (with its whole record) and the module compiled
    with it."""

    record: "object"          # repro.tune.TuningRecord (lazy import)
    result: PipelineResult

    @property
    def winner(self):
        return self.record.winner

    @property
    def total_size(self) -> int:
        return self.result.total_size

    def summary(self) -> str:
        return (f"{self.record.summary()}\n"
                f"compiled with winner -> {self.total_size} bytes")


def tuned_compile(machine: StateMachine,
                  target: Union[TargetDescription, str, None] = None,
                  objective=None, profile=None,
                  patterns: Optional[Sequence[str]] = None,
                  levels=None,
                  semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                  engine: Optional["ExperimentEngine"] = None,
                  ) -> TunedCompileResult:
    """Compile *machine* with the measured-best configuration.

    The profile-guided answer to "what is the fastest/smallest correct
    configuration for THIS machine and THIS event profile": run (or
    warm-load) the autotuner search
    (:meth:`repro.engine.ExperimentEngine.tune`), take the winning
    (pattern, level, model-pass subset) — conformance-verified and
    Pareto-optimal among the measured cells — and compile through the
    normal pipeline with exactly that configuration.  Raises
    :class:`repro.tune.TuningError` when every measured cell was
    rejected.
    """
    from .engine import ExperimentEngine
    eng = engine if engine is not None else ExperimentEngine()
    record = eng.tune(machine, target=target, objective=objective,
                      profile=profile, patterns=patterns, levels=levels,
                      semantics=semantics)
    winner = record.require_winner()
    result = eng.run_pipeline(machine, pattern=winner.pattern,
                              level=OptLevel(winner.level),
                              model_optimizations=list(winner.passes),
                              semantics=semantics, target=target)
    return TunedCompileResult(record=record, result=result)


@dataclass
class CompareResult:
    """Non-optimized vs model-optimized comparison for one pattern."""

    machine_name: str
    pattern: str
    size_before: int
    size_after: int
    model_report: OptimizationReport
    equivalence: EquivalenceReport
    target_name: str = DEFAULT_TARGET_NAME

    @property
    def gain_bytes(self) -> int:
        return self.size_before - self.size_after

    @property
    def gain_percent(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 100.0 * self.gain_bytes / self.size_before

    def summary(self) -> str:
        return (f"{self.machine_name} [{self.pattern}, {self.target_name}]: "
                f"{self.size_before} -> {self.size_after} bytes "
                f"({self.gain_percent:.2f} % smaller); "
                f"{self.equivalence.summary()}")


def optimize_and_compare(machine: StateMachine,
                         pattern: str = "nested-switch",
                         level: OptLevel = OptLevel.OS,
                         model_optimizations: Optional[Sequence[str]] = None,
                         check_behavior: bool = True,
                         semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                         target: Union[TargetDescription, str, None] = None,
                         engine: Optional["ExperimentEngine"] = None,
                         tuned: bool = False,
                         ) -> CompareResult:
    """The paper's experiment, end to end: compile the model as-is and
    after model-level optimization, compare assembly sizes, and verify
    the optimization was behaviour-preserving.

    *semantics* selects the semantic variation points the optimizer and
    the equivalence check run under (like :func:`run_pipeline` — passes
    whose soundness depends on a disabled variation point are skipped).
    Passing an :class:`~repro.engine.ExperimentEngine` routes the work
    through its cache (a private single-call engine otherwise — the
    engine owns the one implementation of this workflow).

    ``tuned=True`` lets the autotuner pick pattern, level and pass
    selection from measurement (see
    :meth:`~repro.engine.ExperimentEngine.optimize_and_compare`);
    the explicit ``pattern``/``level``/``model_optimizations``
    arguments are ignored then.
    """
    from .engine import ExperimentEngine
    eng = engine if engine is not None else ExperimentEngine()
    return eng.optimize_and_compare(
        machine, pattern=pattern, level=level,
        model_optimizations=model_optimizations,
        check_behavior=check_behavior, semantics=semantics, target=target,
        tuned=tuned)
