"""CLI: ``python -m repro.tune search | show | apply``.

* **search** — run the autotuner for one machine and print the winner
  plus the measured Pareto frontier (``--json``: the canonical
  :class:`~repro.tune.record.TuningRecord` rendering, byte-identical
  on warm reruns).  With ``--cache-dir`` the record and every
  measurement persist in the artifact store.
* **show** — print a previously persisted record *without* searching
  (exit 1 if the store has no record for the question asked).
* **apply** — compile the machine with the winning configuration and
  report the resulting module size (searches first if no record is
  cached; instant when warm).

Machines are named: ``hierarchical`` (the paper's Fig. 1 hierarchical
machine, the default), ``flat`` (Fig. 1 flat), or ``workload:<seed>``
(a generated workload machine).  All measurements are simulated and
deterministic; ``--stats-out FILE`` additionally writes the engine's
cache counters as JSON, which is how ``scripts/check_tune.py`` asserts
a warm rerun recomputes nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..compiler import OptLevel
from ..compiler.target import UnknownTargetError, get_target
from ..engine import ExperimentEngine
from ..engine.fingerprint import tune_fingerprint
from ..uml.statemachine import StateMachine
from .record import EventProfile, ObjectiveWeights, TuningError
from .search import DEFAULT_LEVELS

__all__ = ["main"]


def named_machine(name: str) -> StateMachine:
    from ..experiments.models import (
        flat_machine_with_unreachable_state,
        hierarchical_machine_with_shadowed_composite)
    if name == "hierarchical":
        return hierarchical_machine_with_shadowed_composite()
    if name == "flat":
        return flat_machine_with_unreachable_state()
    if name.startswith("workload:"):
        from ..experiments.workload import WorkloadSpec, generate_machine
        seed = int(name.split(":", 1)[1])
        return generate_machine(WorkloadSpec(
            n_live=8, n_dead=2, n_shadowed_composites=1,
            composite_width=3, entry_calls=2, exit_calls=1,
            events_per_state=2, guarded_fraction=0.25, seed=seed,
            name=f"TuneWorkload{seed}"))
    raise SystemExit(f"error: unknown machine {name!r} (use "
                     f"'hierarchical', 'flat', or 'workload:<seed>')")


def parse_levels(spec: Optional[str]) -> Optional[List[OptLevel]]:
    if spec is None:
        return None
    by_value = {lv.value: lv for lv in OptLevel}
    levels = []
    for item in spec.split(","):
        item = item.strip()
        if item not in by_value:
            raise SystemExit(f"error: unknown level {item!r} "
                             f"(choose from {sorted(by_value)})")
        levels.append(by_value[item])
    return levels


def render_record(record, verbose: bool) -> str:
    """Human rendering: winner line + the Pareto frontier (every
    measured cell with ``--verbose``)."""
    from ..experiments.report import render_table
    frontier = record.frontier()
    shown = record.cells if verbose else \
        [c for c in record.cells if c in frontier]
    rows = [["*" if c == record.winner else
             ("f" if c in frontier else ""),
             c.pattern, c.level, "+".join(c.passes) or "(none)",
             "yes" if c.conformant else "NO",
             f"{c.cycles_per_event:.1f}", c.text_bytes,
             c.peak_dispatch_cycles, f"{c.score:.1f}"]
            for c in shown]
    title = (f"Autotuner {'cells' if verbose else 'Pareto frontier'} - "
             f"{record.machine_name} on {record.target} "
             f"(* = winner, f = frontier)")
    table = render_table(title, ["", "pattern", "level", "model passes",
                                 "conformant", "cyc/ev", "text B", "peak",
                                 "score"], rows)
    prior = "+".join(record.prior) or "(none)"
    return (f"{table}\n"
            f"static prior (suggest_optimizations): {prior}\n"
            f"{record.summary()}")


def make_engine(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir)


def tune_args(args: argparse.Namespace) -> dict:
    return dict(target=args.target,
                objective=ObjectiveWeights(cycles=args.w_cycles,
                                           text=args.w_text,
                                           peak=args.w_peak),
                profile=EventProfile(seed=args.profile_seed),
                levels=parse_levels(args.levels))


def finish(engine: ExperimentEngine, args: argparse.Namespace) -> None:
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump({"module": engine.stats.snapshot(),
                       "unit": engine.unit_stats.snapshot()}, fh,
                      indent=2)
    if args.cache_stats:
        print(engine.describe(), file=sys.stderr)


def cmd_search(args: argparse.Namespace) -> int:
    machine = named_machine(args.machine)
    engine = make_engine(args)
    record = engine.tune(machine, **tune_args(args))
    if args.json:
        print(record.to_json())
    else:
        print(render_record(record, args.verbose))
    finish(engine, args)
    return 0 if record.winner is not None else 1


def cmd_show(args: argparse.Namespace) -> int:
    machine = named_machine(args.machine)
    engine = make_engine(args)
    params = tune_args(args)
    levels = params["levels"] or list(DEFAULT_LEVELS)
    from ..codegen import ALL_PATTERNS
    patterns = [gen_cls.name for gen_cls in ALL_PATTERNS]
    key = tune_fingerprint(machine, params["target"],
                           params["objective"].key(),
                           params["profile"].key(), patterns, levels)
    backend = getattr(engine.cache, "backend", None)
    try:
        record, _origin = backend.load(key)
    except (KeyError, AttributeError):
        print(f"no tuning record for machine {args.machine!r} on "
              f"{params['target']} under this objective/profile — run "
              f"'python -m repro.tune search' first (same --cache-dir)",
              file=sys.stderr)
        return 1
    print(record.to_json() if args.json
          else render_record(record, args.verbose))
    return 0


def cmd_apply(args: argparse.Namespace) -> int:
    from ..pipeline import tuned_compile
    machine = named_machine(args.machine)
    engine = make_engine(args)
    params = tune_args(args)
    try:
        tuned = tuned_compile(machine, engine=engine, **params)
    except TuningError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"winner": tuned.winner.to_dict(),
                          "total_size": tuned.total_size,
                          "machine": tuned.record.machine_name,
                          "target": tuned.record.target},
                         sort_keys=True, indent=2))
    else:
        print(tuned.summary())
    finish(engine, args)
    return 0


def add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--machine", default="hierarchical",
                     help="hierarchical | flat | workload:<seed> "
                          "(default: %(default)s)")
    sub.add_argument("--target", default="rt32", metavar="NAME")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persist measurements and the tuning record "
                          "in a repro.store directory")
    sub.add_argument("--jobs", type=int, default=1, metavar="N")
    sub.add_argument("--levels", default=None, metavar="-O0,-Os",
                     help="comma-separated opt levels to sweep "
                          "(default: the full ladder)")
    sub.add_argument("--w-cycles", type=float, default=1.0,
                     help="objective weight: cycles/event")
    sub.add_argument("--w-text", type=float, default=0.25,
                     help="objective weight: encoded text bytes")
    sub.add_argument("--w-peak", type=float, default=0.0,
                     help="objective weight: peak dispatch cycles")
    sub.add_argument("--profile-seed", type=int, default=0xFACE,
                     help="event-profile scenario seed")
    sub.add_argument("--json", action="store_true",
                     help="canonical machine-readable output")
    sub.add_argument("--verbose", action="store_true",
                     help="print every measured cell, not just the "
                          "Pareto frontier")
    sub.add_argument("--stats-out", default=None, metavar="FILE",
                     help="write engine cache counters as JSON "
                          "(check_tune.py's warm-rerun assertion)")
    sub.add_argument("--cache-stats", action="store_true",
                     help="print engine cache statistics to stderr")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="profile-guided optimization autotuner")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, help_text in (
            ("search", cmd_search, "measure the lattice, elect a winner"),
            ("show", cmd_show, "print a persisted record (no search)"),
            ("apply", cmd_apply, "compile with the winning config")):
        cmd = sub.add_parser(name, help=help_text)
        add_common(cmd)
        cmd.set_defaults(fn=fn)
    args = parser.parse_args(argv)
    try:
        get_target(args.target)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
