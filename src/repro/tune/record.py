"""Tuning vocabulary: objective, event profile, cells, and the record.

Everything here is plain, canonically serializable data: a
:class:`TuningRecord` persisted in the :mod:`repro.store` on one run
must reproduce **byte-identically** on a warm rerun
(``scripts/check_tune.py`` gates that in CI), so every type has a
``to_dict``/``from_dict`` pair over JSON-stable values and the record's
:meth:`TuningRecord.to_json` renders with sorted keys and fixed
separators.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..schema import schema_stamp

__all__ = ["ObjectiveWeights", "EventProfile", "CellResult",
           "TuningRecord", "TuningError"]


class TuningError(RuntimeError):
    """No usable tuning result (e.g. every measured cell rejected)."""


@dataclass(frozen=True)
class ObjectiveWeights:
    """Scalarization of the measured axes into one score (lower wins).

    ``score = cycles * cycles_per_event + text * text_bytes
    + peak * peak_dispatch_cycles``.  The defaults weight the two
    paper-relevant axes — dynamic dispatch cost and encoded code size —
    and leave peak dispatch at zero so the winner is guaranteed
    Pareto-optimal in (cycles/event, text bytes): with both active
    weights positive, any cell dominated on those two axes scores
    strictly worse, so the argmin cannot be dominated.  Give ``peak``
    a positive weight to tune for worst-case latency instead (the
    Pareto guarantee then moves to the three-axis frontier).
    """

    cycles: float = 1.0
    text: float = 0.25
    peak: float = 0.0

    def score(self, cycles_per_event: float, text_bytes: int,
              peak_dispatch_cycles: int) -> float:
        return (self.cycles * cycles_per_event
                + self.text * text_bytes
                + self.peak * peak_dispatch_cycles)

    def to_dict(self) -> Dict[str, float]:
        return {"cycles": self.cycles, "text": self.text,
                "peak": self.peak}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ObjectiveWeights":
        return cls(cycles=float(data["cycles"]), text=float(data["text"]),
                   peak=float(data["peak"]))

    def key(self) -> str:
        """Canonical string for cache fingerprints."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class EventProfile:
    """The event workload every cell is measured over.

    These are exactly the scenario-construction knobs of
    :meth:`repro.engine.ExperimentEngine.vm_conformance` — the profile
    is deterministic given the machine's alphabet and these
    parameters, and the scenarios are always generated from the
    *original* machine so every cell (however many events its
    model-optimized clone dropped) replays the same event sequences.
    """

    exhaustive_depth: int = 2
    n_random: int = 8
    random_length: int = 10
    seed: int = 0xFACE

    def params(self) -> Dict[str, int]:
        return {"exhaustive_depth": self.exhaustive_depth,
                "n_random": self.n_random,
                "random_length": self.random_length, "seed": self.seed}

    to_dict = params

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "EventProfile":
        return cls(**{k: int(v) for k, v in data.items()})

    def key(self) -> str:
        """Canonical string for cache fingerprints."""
        return json.dumps(self.params(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class CellResult:
    """One measured (pattern, level, pass subset) configuration.

    ``level`` is the :class:`~repro.compiler.OptLevel` *value* string
    (``"-Os"``) and ``passes`` the model-pass subset in pipeline order
    — plain data so records serialize canonically.  ``score`` is the
    objective scalarization (kept even for rejected cells, for the
    table); only ``conformant`` cells may win.
    """

    pattern: str
    level: str
    passes: Tuple[str, ...]
    conformant: bool
    cycles_per_event: float
    text_bytes: int
    peak_dispatch_cycles: int
    score: float

    @property
    def config_label(self) -> str:
        passes = "+".join(self.passes) if self.passes else "none"
        return f"{self.pattern} {self.level} [{passes}]"

    def sort_key(self) -> Tuple:
        """Deterministic cell ordering (and winner tie-break)."""
        return (self.score, self.pattern, self.level, self.passes)

    def dominates(self, other: "CellResult") -> bool:
        """Strict Pareto domination on (cycles/event, text bytes)."""
        return (self.cycles_per_event <= other.cycles_per_event
                and self.text_bytes <= other.text_bytes
                and (self.cycles_per_event < other.cycles_per_event
                     or self.text_bytes < other.text_bytes))

    def to_dict(self) -> Dict:
        return {"pattern": self.pattern, "level": self.level,
                "passes": list(self.passes),
                "conformant": self.conformant,
                "cycles_per_event": self.cycles_per_event,
                "text_bytes": self.text_bytes,
                "peak_dispatch_cycles": self.peak_dispatch_cycles,
                "score": self.score}

    @classmethod
    def from_dict(cls, data: Dict) -> "CellResult":
        return cls(pattern=data["pattern"], level=data["level"],
                   passes=tuple(data["passes"]),
                   conformant=bool(data["conformant"]),
                   cycles_per_event=float(data["cycles_per_event"]),
                   text_bytes=int(data["text_bytes"]),
                   peak_dispatch_cycles=int(data["peak_dispatch_cycles"]),
                   score=float(data["score"]))


@dataclass(frozen=True)
class TuningRecord:
    """The persisted result of one autotuner search.

    Schema-stamped and fingerprinted: ``schema`` is
    :func:`repro.schema.schema_stamp` at search time, and
    ``machine_fingerprint`` / ``target`` / ``objective`` / ``profile``
    identify exactly what was tuned, so a record read back from the
    :mod:`repro.store` can be checked against the question being asked
    (``python -m repro.tune show`` does).  ``cells`` is the full
    measured frontier in deterministic order; ``winner`` the
    lowest-scoring conformant cell (``None`` when every cell was
    rejected — :meth:`require_winner` raises then).
    """

    schema: str
    machine_name: str
    machine_fingerprint: str
    target: str
    objective: ObjectiveWeights
    profile: EventProfile
    prior: Tuple[str, ...]
    cells: Tuple[CellResult, ...]
    winner: Optional[CellResult] = None

    @property
    def conformant_cells(self) -> List[CellResult]:
        return [c for c in self.cells if c.conformant]

    @property
    def rejected_cells(self) -> List[CellResult]:
        return [c for c in self.cells if not c.conformant]

    def frontier(self) -> List[CellResult]:
        """Pareto-optimal conformant cells on (cycles/event, text
        bytes), in deterministic cell order."""
        conformant = self.conformant_cells
        return [c for c in conformant
                if not any(o.dominates(c) for o in conformant)]

    def require_winner(self) -> CellResult:
        if self.winner is None:
            raise TuningError(
                f"no conformant configuration for {self.machine_name!r} "
                f"on {self.target} ({len(self.cells)} cell(s) measured, "
                f"all rejected)")
        return self.winner

    def verify(self) -> List[str]:
        """Internal-consistency problems (empty = sound record): the
        winner must be a measured, conformant, Pareto-optimal,
        lowest-scoring cell.  ``scripts/check_tune.py`` gates on this.
        """
        problems: List[str] = []
        if self.winner is None:
            if self.conformant_cells:
                problems.append("no winner despite conformant cells")
            return problems
        if self.winner not in self.cells:
            problems.append("winner is not a measured cell")
        if not self.winner.conformant:
            problems.append("winner is not conformant")
        if self.winner not in self.frontier():
            problems.append("winner is Pareto-dominated "
                            "(cycles/event, text bytes)")
        best = min(self.conformant_cells, key=CellResult.sort_key,
                   default=None)
        if best is not None and best != self.winner:
            problems.append("winner is not the lowest-scoring "
                            "conformant cell")
        return problems

    def summary(self) -> str:
        head = (f"{self.machine_name} on {self.target}: "
                f"{len(self.cells)} cell(s) measured, "
                f"{len(self.conformant_cells)} conformant, "
                f"{len(self.frontier())} on the Pareto frontier")
        if self.winner is None:
            return head + "; NO conformant configuration"
        w = self.winner
        return (f"{head}; winner {w.config_label}: "
                f"{w.cycles_per_event:.1f} cycles/event, "
                f"{w.text_bytes} text bytes, peak "
                f"{w.peak_dispatch_cycles}")

    def to_dict(self) -> Dict:
        return {"schema": self.schema,
                "machine_name": self.machine_name,
                "machine_fingerprint": self.machine_fingerprint,
                "target": self.target,
                "objective": self.objective.to_dict(),
                "profile": self.profile.to_dict(),
                "prior": list(self.prior),
                "cells": [c.to_dict() for c in self.cells],
                "winner": (self.winner.to_dict()
                           if self.winner is not None else None)}

    def to_json(self) -> str:
        """Canonical rendering — byte-identical across reruns of the
        same search (what the warm-cache gate diffs)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "TuningRecord":
        return cls(
            schema=data["schema"],
            machine_name=data["machine_name"],
            machine_fingerprint=data["machine_fingerprint"],
            target=data["target"],
            objective=ObjectiveWeights.from_dict(data["objective"]),
            profile=EventProfile.from_dict(data["profile"]),
            prior=tuple(data["prior"]),
            cells=tuple(CellResult.from_dict(c) for c in data["cells"]),
            winner=(CellResult.from_dict(data["winner"])
                    if data.get("winner") is not None else None))

    @classmethod
    def fresh(cls, machine_name: str, machine_fingerprint: str,
              target: str, objective: ObjectiveWeights,
              profile: EventProfile, prior: Sequence[str],
              cells: Sequence[CellResult]) -> "TuningRecord":
        """Assemble a record: order the cells deterministically and
        elect the lowest-scoring conformant cell."""
        ordered = tuple(sorted(cells, key=CellResult.sort_key))
        winner = min((c for c in ordered if c.conformant),
                     key=CellResult.sort_key, default=None)
        return cls(schema=schema_stamp(), machine_name=machine_name,
                   machine_fingerprint=machine_fingerprint,
                   target=target, objective=objective, profile=profile,
                   prior=tuple(prior), cells=ordered, winner=winner)
