"""Profile-guided optimization autotuning (closing the paper's §VI loop).

"We plan to improve our tool in a way that it automatically executes
optimizations" — :mod:`repro.optim.advisor` answers that *statically*
(which passes will change the model); this package answers it
*dynamically*: which (pattern, opt level, model-pass subset) actually
runs fastest / smallest **for this machine and this event profile**,
measured on the :mod:`repro.vm` simulator rather than guessed from
model shape.

* :mod:`repro.tune.record` — the vocabulary: :class:`ObjectiveWeights`
  (the scalarized objective), :class:`EventProfile` (the scenario
  workload the measurements run over), :class:`CellResult` (one
  measured configuration) and the schema-stamped
  :class:`TuningRecord` (winner + full measured frontier +
  fingerprints, canonically serializable so warm reruns are
  byte-identical).
* :mod:`repro.tune.search` — the search itself: the pass-subset
  lattice pruned by :func:`repro.optim.suggest_optimizations` (the
  static prior), every cell measured through the engine's cached
  ``vm_conformance`` (simulated cycles/event, peak dispatch, encoded
  text bytes — all deterministic), non-conformant cells rejected,
  winner = minimum objective score among conformant cells.
* ``python -m repro.tune`` — ``search | show | apply``.

Entry points: :meth:`repro.engine.ExperimentEngine.tune` (cached,
cells run on the worker pool) and :func:`repro.pipeline.tuned_compile`
(compile with the winning configuration).
"""

from .record import (CellResult, EventProfile, ObjectiveWeights,
                     TuningError, TuningRecord)
from .search import pass_subsets, run_search

__all__ = ["CellResult", "EventProfile", "ObjectiveWeights",
           "TuningError", "TuningRecord", "pass_subsets", "run_search"]
