"""The autotuner search: measure the lattice, reject, elect.

The search space is **pattern x opt level x model-pass subset**.  Left
unpruned, the subset axis alone is 2^|catalog|; the static prior cuts
it down: :func:`repro.optim.suggest_optimizations` names exactly the
passes that will change *this* machine (its documented ordering
contract — suggestions come back in ``DEFAULT_PIPELINE`` order — is
what makes the subsets canonical), and :func:`pass_subsets` takes every
subset of that list, preserving pipeline order.  Passes the advisor
did not suggest cannot change the model, so omitting them loses no
measurement.

A second pruning happens for free in the engine: two subsets that
produce the *same* optimized machine fingerprint share one cached
``vm_conformance`` measurement, so the number of simulations is
``patterns x levels x distinct optimized machines``, not
``x 2^|prior|``.

Every cell is measured on the :mod:`repro.vm` simulator over the
*original* machine's :class:`~repro.tune.record.EventProfile`
scenarios (simulated cycles — deterministic on any host).  Cells whose
executed trace diverges from the reference interpreter are **rejected**
(``tune_cells_total{outcome="rejected"}``): a fast wrong configuration
is not a configuration.  The winner is the lowest
:class:`~repro.tune.record.ObjectiveWeights` score among conformant
cells, tie-broken by (pattern, level, passes) so the election is
deterministic.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..codegen import ALL_PATTERNS
from ..compiler import OptLevel
from ..compiler.target import TargetDescription, resolve_target
from ..obs.metrics import REGISTRY
from ..obs.trace import span as _span
from ..optim.advisor import suggest_optimizations
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .record import CellResult, EventProfile, ObjectiveWeights, TuningRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import ExperimentEngine

__all__ = ["DEFAULT_LEVELS", "pass_subsets", "run_search"]

#: Levels the tuner sweeps by default: the full ladder, not just the
#: paper's -Os — "fastest" at O2 vs "smallest" at -Os is exactly the
#: trade the frontier exists to show.
DEFAULT_LEVELS: Tuple[OptLevel, ...] = (OptLevel.O0, OptLevel.O1,
                                        OptLevel.O2, OptLevel.OS)

_CELLS = REGISTRY.counter(
    "tune_cells_total",
    "autotuner cells measured, by outcome (conformant / rejected)")


def pass_subsets(prior: Sequence[str]) -> List[Tuple[str, ...]]:
    """Every subset of the static prior, each in pipeline order.

    The prior is already pipeline-ordered (the advisor's contract) and
    :func:`itertools.combinations` preserves input order, so each
    subset is a valid pass selection as-is.  Subsets are enumerated
    smallest-first (the empty subset — the unoptimized baseline —
    always measured first)."""
    ordered = list(dict.fromkeys(prior))
    return [subset for size in range(len(ordered) + 1)
            for subset in combinations(ordered, size)]


def run_search(engine: "ExperimentEngine", machine: StateMachine,
               target: Union[TargetDescription, str, None] = None,
               objective: Optional[ObjectiveWeights] = None,
               profile: Optional[EventProfile] = None,
               patterns: Optional[Sequence[str]] = None,
               levels: Optional[Sequence[OptLevel]] = None,
               semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
               ) -> TuningRecord:
    """Measure the pruned lattice through *engine* and elect a winner.

    Callers normally reach this through the caching wrapper
    :meth:`repro.engine.ExperimentEngine.tune`; calling it directly
    re-runs the election but still hits the engine's per-measurement
    caches.  Cells run on the engine's worker pool (``jobs=N``); the
    result is deterministic for any pool width.
    """
    from ..engine.fingerprint import machine_fingerprint
    tgt = resolve_target(target)
    objective = objective if objective is not None else ObjectiveWeights()
    profile = profile if profile is not None else EventProfile()
    pattern_names = list(patterns) if patterns is not None \
        else [gen_cls.name for gen_cls in ALL_PATTERNS]
    level_list = list(levels) if levels is not None else list(DEFAULT_LEVELS)

    prior = tuple(s.pass_name
                  for s in suggest_optimizations(machine, semantics))
    subsets = pass_subsets(prior)
    cells = [(pattern, level, subset) for pattern in pattern_names
             for level in level_list for subset in subsets]

    def measure(cell) -> CellResult:
        pattern, level, subset = cell
        sp = _span("tune.cell")
        if sp.recording:
            sp.set(pattern=pattern, level=level.value,
                   passes="+".join(subset) or "none")
        with sp:
            optimized = engine.optimize_model(
                machine, selection=list(subset),
                semantics=semantics).optimized
            report = engine.vm_conformance(
                optimized, pattern=pattern, level=level, target=tgt,
                semantics=semantics, scenario_machine=machine,
                **profile.params())
            outcome = "conformant" if report.conformant else "rejected"
            _CELLS.inc(outcome=outcome)
            if sp.recording:
                sp.set(outcome=outcome)
            return CellResult(
                pattern=pattern, level=level.value, passes=subset,
                conformant=report.conformant,
                cycles_per_event=report.cycles_per_event,
                text_bytes=report.text_bytes,
                peak_dispatch_cycles=report.peak_dispatch_cycles,
                score=objective.score(report.cycles_per_event,
                                      report.text_bytes,
                                      report.peak_dispatch_cycles))

    sp = _span("tune.search")
    if sp.recording:
        sp.set(machine=machine.name, target=tgt.name, cells=len(cells),
               prior="+".join(prior) or "none")
    with sp:
        measured = engine.map(measure, cells)
    return TuningRecord.fresh(
        machine_name=machine.name,
        machine_fingerprint=machine_fingerprint(machine),
        target=tgt.name, objective=objective, profile=profile,
        prior=prior, cells=measured)
