"""Semantic variation points for state machine execution.

UML intentionally leaves parts of the state-machine semantics open
("semantic variation points", paper §III.B, citing Chauvel & Jézéquel).
The paper fixes one execution semantics before generating code; we make
the choice explicit and configurable so the same model can be executed —
and code-generated — under different, documented interpretations.

The variation points modeled here are the ones the paper calls out
(event handling and transition selection policy):

* ``event_pool`` — dispatch order of pooled events (FIFO is the common
  choice for RTES runtimes, LIFO and PRIORITY are offered);
* ``unconsumed_events`` — what happens to an event no transition accepts
  (DISCARD, the usual RTES choice, or DEFER);
* ``conflict_resolution`` — which transition wins when several are
  enabled at different nesting depths (INNERMOST_FIRST is the UML
  default);
* ``completion_priority`` — whether completion events outrank pooled
  events (UML mandates True; turning it off demonstrates how the paper's
  "S3 is never active" conclusion *depends* on this variation point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = ["EventPoolPolicy", "UnconsumedPolicy", "ConflictPolicy",
           "SemanticsConfig", "UML_DEFAULT_SEMANTICS"]


class EventPoolPolicy(enum.Enum):
    """Order in which pooled events are dequeued."""

    FIFO = "fifo"
    LIFO = "lifo"
    PRIORITY = "priority"  # uses Event priority attribute via env mapping


class UnconsumedPolicy(enum.Enum):
    """Fate of an event that enables no transition."""

    DISCARD = "discard"
    DEFER = "defer"


class ConflictPolicy(enum.Enum):
    """Priority among enabled transitions at different nesting depths."""

    INNERMOST_FIRST = "innermost_first"  # UML default
    OUTERMOST_FIRST = "outermost_first"


@dataclass(frozen=True)
class SemanticsConfig:
    """A fixed choice for every variation point.

    Instances are immutable; derive variants with :meth:`with_`.
    """

    event_pool: EventPoolPolicy = EventPoolPolicy.FIFO
    unconsumed_events: UnconsumedPolicy = UnconsumedPolicy.DISCARD
    conflict_resolution: ConflictPolicy = ConflictPolicy.INNERMOST_FIRST
    completion_priority: bool = True
    max_run_to_completion_steps: int = 10_000

    def with_(self, **changes) -> "SemanticsConfig":
        """Return a copy with the given variation points changed."""
        return replace(self, **changes)

    def describe(self) -> str:
        return (f"pool={self.event_pool.value}, "
                f"unconsumed={self.unconsumed_events.value}, "
                f"conflict={self.conflict_resolution.value}, "
                f"completion_priority={self.completion_priority}")


#: The semantics the paper fixes before generating code: UML defaults.
UML_DEFAULT_SEMANTICS = SemanticsConfig()
