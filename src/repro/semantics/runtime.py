"""Run-to-completion interpreter for the UML subset.

This is the executable semantics the paper's tooling assumes: the same
semantics the code generators implement, so that a model and its
generated C++ behave identically.  The interpreter serves three roles:

* a *reference semantics* against which generated code is validated;
* the *model debugger* role discussed in paper §IV.B (traces record
  entries/exits/transitions);
* the oracle for the optimizer's behaviour-preservation checks
  (:mod:`repro.optim.equivalence`).

Supported: hierarchical (single region per level) machines, entry/exit
behaviors, guards over context attributes, completion transitions with
UML priority, choice/junction pseudostates, shallow/deep history,
terminate, internal transitions, event deferral/discard, and the
variation points of :mod:`repro.semantics.variation`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..uml.actions import (Assign, Behavior, CallStmt, EmitStmt, EvalError,
                           eval_expr)
from ..uml.events import AnyEvent, Event
from ..uml.statemachine import (FinalState, Pseudostate, PseudostateKind,
                                Region, State, StateMachine, Vertex)
from ..uml.transitions import Transition, TransitionKind
from .trace import Trace, TraceKind
from .variation import (ConflictPolicy, EventPoolPolicy, SemanticsConfig,
                        UnconsumedPolicy, UML_DEFAULT_SEMANTICS)

__all__ = ["MachineInstance", "ExecutionError", "run_scenario"]


class ExecutionError(Exception):
    """Raised on runtime-semantic violations (stuck choice, step overflow,
    multiple orthogonal regions, ...)."""


def _enclosing_states(vertex: Vertex) -> Set[int]:
    """Element ids of the states (strictly) enclosing *vertex*."""
    ids: Set[int] = set()
    for anc in vertex.owner_chain():
        if isinstance(anc, State):
            ids.add(anc.element_id)
    return ids


class MachineInstance:
    """One executing instance of a state machine.

    Parameters
    ----------
    machine:
        The (validated) state machine to execute.
    config:
        Semantic variation point choices; defaults to UML semantics.
    externals:
        Mapping from external operation names to Python callables used to
        evaluate opaque calls.  Unmapped operations return 0; every call
        is recorded in the trace either way.
    """

    def __init__(self, machine: StateMachine,
                 config: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 externals: Optional[Mapping[str, Callable]] = None) -> None:
        self.machine = machine
        self.config = config
        self.externals = dict(externals or {})
        self.attributes: Dict[str, int] = dict(machine.context.attributes)
        self._env_memo: Optional[Dict[str, Callable]] = None
        self.trace = Trace()
        # Active configuration: path of states, outermost -> innermost.
        self._active: List[State] = []
        self._history: Dict[int, str] = {}   # region id -> last substate name
        self._pool: deque = deque()
        #: High-water mark of the event pool.  The generated runtimes
        #: implement the paper's single-slot pending event, which is
        #: FIFO-equivalent exactly while this never exceeds 1; the fuzz
        #: oracle screens on it (a model that emits while another event
        #: is already pending is outside the fixed-code contract).
        self.max_pool_depth = 0
        self._deferred: List[Tuple[str, int]] = []
        self._completion_queue: deque = deque()
        self._completion_consumed: Set[int] = set()
        self._region_done: Dict[int, bool] = {}
        self._terminated = False
        self._started = False
        self._steps = 0
        if len(machine.regions) != 1:
            raise ExecutionError(
                "interpreter supports exactly one top region "
                f"(machine has {len(machine.regions)})")
        for state in machine.all_states():
            if len(state.regions) > 1:
                raise ExecutionError(
                    f"orthogonal regions not supported (state {state.label!r} "
                    f"has {len(state.regions)})")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start(self) -> "MachineInstance":
        """Take the top region's initial transition and run to completion."""
        if self._started:
            raise ExecutionError("machine already started")
        self._started = True
        top = self.machine.regions[0]
        initial = top.initial
        if initial is None:
            raise ExecutionError("top region has no initial pseudostate")
        transition = initial.outgoing()[0]
        self._run_effect(transition.effect)
        self._enter_target(transition.target)
        self._drain_completions()
        return self

    def dispatch(self, event: object, priority: int = 0) -> "MachineInstance":
        """Queue an event (by name or Event object) and run to completion."""
        if not self._started:
            raise ExecutionError("dispatch before start()")
        name = event.name if isinstance(event, Event) else str(event)
        self._pool.append((name, priority))
        self.max_pool_depth = max(self.max_pool_depth, len(self._pool))
        self._run_to_completion()
        return self

    def send_all(self, events: Sequence[object]) -> "MachineInstance":
        for event in events:
            self.dispatch(event)
        return self

    # -- observers -------------------------------------------------------
    @property
    def is_started(self) -> bool:
        return self._started

    @property
    def is_terminated(self) -> bool:
        return self._terminated

    @property
    def active_states(self) -> List[str]:
        """Names of active states, outermost first."""
        return [s.name for s in self._active]

    @property
    def current_state(self) -> Optional[str]:
        """Innermost active state name (None before start / after final)."""
        return self._active[-1].name if self._active else None

    @property
    def in_final(self) -> bool:
        """True when the top region reached its final state."""
        return self._started and not self._active and not self._terminated

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------
    def _run_to_completion(self) -> None:
        self._drain_completions()
        while self._pool and not self._terminated:
            name, priority = self._take_pooled_event()
            self.trace.append(TraceKind.EVENT_DISPATCH, name)
            fired = self._fire_on_event(name)
            if fired:
                self._drain_completions()
                self._recall_deferred()
            elif self.config.unconsumed_events is UnconsumedPolicy.DEFER:
                self._deferred.append((name, priority))
                self.trace.append(TraceKind.EVENT_DROPPED, name, "deferred")
            else:
                self.trace.append(TraceKind.EVENT_DROPPED, name, "discarded")

    def _take_pooled_event(self) -> Tuple[str, int]:
        policy = self.config.event_pool
        if policy is EventPoolPolicy.FIFO:
            return self._pool.popleft()
        if policy is EventPoolPolicy.LIFO:
            return self._pool.pop()
        best_idx = max(range(len(self._pool)),
                       key=lambda i: (self._pool[i][1], -i))
        item = self._pool[best_idx]
        del self._pool[best_idx]
        return item

    def _recall_deferred(self) -> None:
        if not self._deferred:
            return
        recalled, self._deferred = self._deferred, []
        # Deferred events return to the pool ahead of newer arrivals.
        for item in reversed(recalled):
            self._pool.appendleft(item)
        self.max_pool_depth = max(self.max_pool_depth, len(self._pool))

    def _drain_completions(self) -> None:
        """Dispatch completion events, which outrank pooled events when the
        UML-mandated variation point is on (the property that kills the
        paper's composite state S3)."""
        self._queue_ripe_completions()
        while self._completion_queue and not self._terminated:
            state_name = self._completion_queue.popleft()
            state = self._find_active(state_name)
            if state is None:
                continue  # state was exited before its completion dispatched
            self._completion_consumed.add(state.element_id)
            self.trace.append(TraceKind.EVENT_DISPATCH,
                              f"__completion__({state_name})")
            transition = self._select_completion_transition(state)
            if transition is not None:
                self._fire(transition)
                self._queue_ripe_completions()

    def _queue_ripe_completions(self) -> None:
        """Queue completion events for active, complete states that still
        have an unconsumed completion event."""
        for state in list(self._active):
            if not state.completion_transitions():
                continue
            if state.element_id in self._completion_consumed:
                continue
            if state.name in self._completion_queue:
                continue
            if state.is_simple or self._region_done.get(state.element_id):
                self._completion_queue.append(state.name)

    # ------------------------------------------------------------------
    # transition selection
    # ------------------------------------------------------------------
    def _find_active(self, name: str) -> Optional[State]:
        for state in self._active:
            if state.name == name:
                return state
        return None

    def _select_completion_transition(self, state: State) -> Optional[Transition]:
        for transition in state.completion_transitions():
            if self._guard_true(transition):
                return transition
        return None

    def _fire_on_event(self, event_name: str) -> bool:
        """Find and fire the highest-priority enabled transition for a
        pooled event; returns True if one fired."""
        for state in self._active_path_by_policy():
            for transition in state.event_transitions():
                if self._trigger_matches(transition, event_name) and \
                        self._guard_true(transition):
                    self._fire(transition)
                    return True
        return False

    def _active_path_by_policy(self) -> List[State]:
        if self.config.conflict_resolution is ConflictPolicy.INNERMOST_FIRST:
            return list(reversed(self._active))
        return list(self._active)

    @staticmethod
    def _trigger_matches(transition: Transition, event_name: str) -> bool:
        for trig in transition.triggers:
            if isinstance(trig, AnyEvent) or trig.name == event_name:
                return True
        return False

    def _guard_true(self, transition: Transition) -> bool:
        if transition.guard is None:
            return True
        try:
            return bool(eval_expr(transition.guard, self.attributes,
                                  self._external_env()))
        except EvalError as exc:
            raise ExecutionError(
                f"guard of {transition.describe()} failed: {exc}") from exc

    # ------------------------------------------------------------------
    # firing machinery
    # ------------------------------------------------------------------
    def _fire(self, transition: Transition) -> None:
        self._check_step_budget()
        self.trace.append(TraceKind.TRANSITION, transition.describe())
        if transition.kind is TransitionKind.INTERNAL:
            self._run_effect(transition.effect)
            return
        source = transition.source
        # 1. Exit the source state (and everything nested in it).
        if isinstance(source, State) and source in self._active:
            while self._active:
                top = self._active[-1]
                self._exit_state(top)
                if top is source:
                    break
        # 2. Keep unwinding to the least common ancestor: the innermost
        #    active state must enclose the target.
        target_enclosure = _enclosing_states(transition.target)
        while self._active and \
                self._active[-1].element_id not in target_enclosure:
            self._exit_state(self._active[-1])
        # 3. Effect runs between exits and entries (UML order).
        self._run_effect(transition.effect)
        # 4. Enter the target (resolving pseudostate chains).
        self._enter_target(transition.target)

    def _exit_state(self, state: State) -> None:
        if not self._active or self._active[-1] is not state:
            raise ExecutionError(f"cannot exit inactive state {state.label!r}")
        container = state.container
        if container is not None:
            self._history[container.element_id] = state.name
        self._run_effect(state.exit)
        self.trace.append(TraceKind.STATE_EXIT, state.name)
        self._active.pop()
        self._region_done.pop(state.element_id, None)
        self._completion_consumed.discard(state.element_id)
        # Completion of an exited state is stale.
        try:
            self._completion_queue.remove(state.name)
        except ValueError:
            pass

    def _enter_target(self, target: Vertex) -> None:
        """Enter *target*, resolving pseudostate chains and performing
        default entry into composite states."""
        self._check_step_budget()
        if isinstance(target, State):
            self._enter_state_path(target)
            self._default_entry(target)
            return
        if isinstance(target, FinalState):
            self._enter_state_path_to_region(target)
            self._complete_region(target)
            return
        if isinstance(target, Pseudostate):
            self._enter_state_path_to_region(target)
            self._enter_pseudostate(target)
            return
        raise ExecutionError(f"cannot enter vertex {target!r}")

    def _enter_state_path(self, target: State) -> None:
        """Enter every not-yet-active composite enclosing *target*, outermost
        first, then *target* itself."""
        path = [target]
        for anc in target.ancestors():
            path.append(anc)
        for state in reversed(path):
            if state in self._active:
                continue
            self._active.append(state)
            self._run_effect(state.entry)
            self.trace.append(TraceKind.STATE_ENTER, state.name)

    def _enter_state_path_to_region(self, vertex: Vertex) -> None:
        """Ensure the composites enclosing a non-state vertex are active
        (needed when a transition targets a pseudostate/final nested in a
        composite the machine is not currently in)."""
        enclosing = [anc for anc in vertex.owner_chain()
                     if isinstance(anc, State)]
        for state in reversed(enclosing):
            if state not in self._active:
                self._active.append(state)
                self._run_effect(state.entry)
                self.trace.append(TraceKind.STATE_ENTER, state.name)

    def _default_entry(self, state: State) -> None:
        """Default entry of a composite: follow the nested region's initial
        transition (if the region has one)."""
        if not state.is_composite:
            return
        region = state.regions[0]
        initial = region.initial
        if initial is None:
            return  # region not entered (composite behaves like a simple state)
        transition = initial.outgoing()[0]
        self._run_effect(transition.effect)
        self._enter_target(transition.target)

    def _enter_pseudostate(self, pseudo: Pseudostate) -> None:
        kind = pseudo.kind
        if kind is PseudostateKind.TERMINATE:
            self._terminated = True
            self.trace.append(TraceKind.COMPLETED, "terminated")
            return
        if kind in (PseudostateKind.CHOICE, PseudostateKind.JUNCTION):
            chosen: Optional[Transition] = None
            fallback: Optional[Transition] = None
            for transition in pseudo.outgoing():
                if transition.guard is None:
                    fallback = fallback or transition  # the [else] branch
                elif self._guard_true(transition):
                    chosen = transition
                    break
            transition = chosen or fallback
            if transition is None:
                raise ExecutionError(
                    f"choice/junction {pseudo.qualified_name} is stuck: "
                    "no outgoing guard evaluates to true")
            self._run_effect(transition.effect)
            self._enter_target(transition.target)
            return
        if kind in (PseudostateKind.SHALLOW_HISTORY,
                    PseudostateKind.DEEP_HISTORY):
            region = pseudo.container
            assert region is not None
            last = self._history.get(region.element_id)
            if last is not None:
                for vertex in region.vertices:
                    if isinstance(vertex, State) and vertex.name == last:
                        self._enter_state_path(vertex)
                        self._default_entry(vertex)
                        return
            # No history yet: use the history's default transition, else the
            # region's initial transition.
            out = pseudo.outgoing()
            if out:
                self._run_effect(out[0].effect)
                self._enter_target(out[0].target)
                return
            initial = region.initial
            if initial is not None:
                self._enter_target(initial.outgoing()[0].target)
                return
            raise ExecutionError(
                f"history {pseudo.qualified_name} has no default entry")
        if kind in (PseudostateKind.ENTRY_POINT, PseudostateKind.EXIT_POINT):
            out = pseudo.outgoing()
            if not out:
                raise ExecutionError(
                    f"{kind.value} {pseudo.qualified_name} has no "
                    "outgoing transition")
            self._run_effect(out[0].effect)
            self._enter_target(out[0].target)
            return
        raise ExecutionError(f"unsupported pseudostate kind {kind!r}")

    def _complete_region(self, final: FinalState) -> None:
        """Entering a final state completes its region (and possibly the
        owning composite state / whole machine)."""
        region = final.container
        assert region is not None
        owner = region.owner
        self.trace.append(TraceKind.COMPLETED, region.label)
        if isinstance(owner, StateMachine):
            # Top region completed: exit everything.
            while self._active:
                self._exit_state(self._active[-1])
            return
        assert isinstance(owner, State)
        # Unwind the active path down to (but excluding) the composite.
        while self._active and self._active[-1] is not owner:
            self._exit_state(self._active[-1])
        self._region_done[owner.element_id] = True
        self._completion_consumed.discard(owner.element_id)

    # ------------------------------------------------------------------
    # behaviors
    # ------------------------------------------------------------------
    def _run_effect(self, behavior: Behavior) -> None:
        for stmt in behavior.statements:
            if isinstance(stmt, Assign):
                value = int(eval_expr(stmt.value, self.attributes,
                                      self._external_env()))
                self.attributes[stmt.target] = value
                self.trace.append(TraceKind.ASSIGN, stmt.target, value)
            elif isinstance(stmt, CallStmt):
                env = self._external_env()
                args = tuple(int(eval_expr(a, self.attributes, env))
                             for a in stmt.call.args)
                # One tracer for every call position: statement calls
                # go through the same traced wrapper as calls inside
                # guard/assign expressions (undeclared operations get a
                # wrapper on the fly — unvalidated machines only).
                fn = env.get(stmt.call.func)
                if fn is None:
                    fn = self._traced_external(
                        stmt.call.func, self.externals.get(stmt.call.func))
                fn(*args)
            elif isinstance(stmt, EmitStmt):
                self.trace.append(TraceKind.EMIT, stmt.event_name)
                self._pool.append((stmt.event_name, 0))
                self.max_pool_depth = max(self.max_pool_depth,
                                          len(self._pool))
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown statement {stmt!r}")

    def _external_env(self) -> Dict[str, Callable]:
        """Expression-evaluation environment: mapped externals plus a
        zero-returning default for declared but unmapped operations.

        Every callable is wrapped in a tracer: an external call is
        observable no matter where it appears syntactically — a call
        *statement*, an assign's right-hand side, a guard — because the
        generated code performs a real ``call`` instruction in each of
        those positions (the VM harness logs them all).  Tracing at
        call time keeps the record order identical to the compiled
        code's evaluation order (arguments left to right, ``&&``/``||``
        short-circuiting).
        """
        if self._env_memo is None:
            # Built once per instance: operations and the externals
            # mapping are fixed at construction, and guards/effects
            # request this environment on every single evaluation.
            env: Dict[str, Callable] = {
                name: self._traced_external(name, self.externals.get(name))
                for name in self.machine.context.operations
            }
            for name, fn in self.externals.items():
                if name not in env:
                    env[name] = self._traced_external(name, fn)
            self._env_memo = env
        return self._env_memo

    def _traced_external(self, name: str, fn: Optional[Callable]) -> Callable:
        def call(*args):
            int_args = tuple(int(a) for a in args)
            self.trace.append(TraceKind.CALL, name, int_args)
            if fn is None:
                return 0
            result = fn(*int_args)
            return 0 if result is None else result
        return call

    def _check_step_budget(self) -> None:
        self._steps += 1
        if self._steps > self.config.max_run_to_completion_steps:
            raise ExecutionError(
                "run-to-completion step budget exceeded "
                f"({self.config.max_run_to_completion_steps}); "
                "the model likely has an unguarded completion cycle")


def run_scenario(machine: StateMachine, events: Sequence[object],
                 config: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 externals: Optional[Mapping[str, Callable]] = None,
                 ) -> MachineInstance:
    """Start *machine*, dispatch *events* in order, return the instance.

    .. deprecated::
        Thin shim over the :mod:`repro.exec` protocol — new callers
        should use ``repro.exec.run_scenario(InterpreterExecutor(config),
        machine, events)``, which works unchanged across all backends.
    """
    import warnings
    warnings.warn(
        "repro.semantics.runtime.run_scenario is deprecated; use "
        "repro.exec.run_scenario(InterpreterExecutor(config), machine, "
        "events) instead", DeprecationWarning, stacklevel=2)
    from ..exec.adapters import InterpreterExecutor
    adapter = InterpreterExecutor(config).load(machine,
                                               externals=externals)
    adapter.start()
    for event in events:
        if adapter.is_terminated:
            break
        adapter.dispatch(event)
    return adapter.inner
