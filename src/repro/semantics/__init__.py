"""Executable semantics: variation points, interpreter, traces."""

from .runtime import ExecutionError, MachineInstance, run_scenario
from .trace import Trace, TraceKind, TraceRecord, observable_equal
from .variation import (ConflictPolicy, EventPoolPolicy, SemanticsConfig,
                        UnconsumedPolicy, UML_DEFAULT_SEMANTICS)

__all__ = [
    "ExecutionError", "MachineInstance", "run_scenario",
    "Trace", "TraceKind", "TraceRecord", "observable_equal",
    "ConflictPolicy", "EventPoolPolicy", "SemanticsConfig",
    "UnconsumedPolicy", "UML_DEFAULT_SEMANTICS",
]
