"""Executable semantics: variation points, interpreter, traces.

The reference behavior every implementation is judged against.  Main
public names: :class:`MachineInstance` / :func:`run_scenario` (the
run-to-completion interpreter), :class:`SemanticsConfig` and its
variation-point enums (:class:`EventPoolPolicy`,
:class:`UnconsumedPolicy`, :class:`ConflictPolicy`) with
:data:`UML_DEFAULT_SEMANTICS`, and :class:`Trace` /
:class:`TraceRecord` / :class:`TraceKind` / :func:`observable_equal` —
the observable-trace equality that defines behavioral equivalence for
:mod:`repro.optim` and :mod:`repro.vm` alike.
"""

from .runtime import ExecutionError, MachineInstance, run_scenario
from .trace import Trace, TraceKind, TraceRecord, observable_equal
from .variation import (ConflictPolicy, EventPoolPolicy, SemanticsConfig,
                        UnconsumedPolicy, UML_DEFAULT_SEMANTICS)

__all__ = [
    "ExecutionError", "MachineInstance", "run_scenario",
    "Trace", "TraceKind", "TraceRecord", "observable_equal",
    "ConflictPolicy", "EventPoolPolicy", "SemanticsConfig",
    "UnconsumedPolicy", "UML_DEFAULT_SEMANTICS",
]
