"""Execution traces and observational equivalence.

A trace records what an external observer of the running system can see:
opaque platform calls (with evaluated arguments), events emitted to self,
and — for debugging — state entries/exits and fired transitions.

*Observational equivalence* compares only the observable prefix of two
traces (calls + emissions); state entries/exits are internal bookkeeping
that model optimizations are allowed to change (e.g. removing a state
nobody can enter).  This is the correctness criterion used by
:mod:`repro.optim.equivalence` to check that model transformations are
behaviour-preserving, the property the paper's refactoring framing
requires (§V: "keeping unchanged its behavior").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["TraceKind", "TraceRecord", "Trace", "observable_equal"]


class TraceKind(enum.Enum):
    """Kinds of trace records."""

    CALL = "call"              # observable: external operation invoked
    EMIT = "emit"              # observable: event sent to self
    ASSIGN = "assign"          # observable: context attribute updated
    STATE_ENTER = "enter"      # internal
    STATE_EXIT = "exit"        # internal
    TRANSITION = "transition"  # internal
    EVENT_DISPATCH = "dispatch"  # internal
    EVENT_DROPPED = "dropped"    # internal
    COMPLETED = "completed"      # internal: region reached final state


_OBSERVABLE = {TraceKind.CALL, TraceKind.EMIT, TraceKind.ASSIGN}


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry.

    ``detail`` holds the payload: call name + argument values, state name,
    transition description, ... always plain data, never model objects,
    so traces survive model mutation and can be compared across models.
    """

    step: int
    kind: TraceKind
    detail: Tuple

    @property
    def is_observable(self) -> bool:
        return self.kind in _OBSERVABLE

    def __str__(self) -> str:
        payload = ", ".join(str(d) for d in self.detail)
        return f"{self.step:4d} {self.kind.value:10s} {payload}"


class Trace:
    """An append-only sequence of :class:`TraceRecord`."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._step = 0

    def append(self, kind: TraceKind, *detail) -> TraceRecord:
        record = TraceRecord(self._step, kind, tuple(detail))
        self.records.append(record)
        self._step += 1
        return record

    # -- views -----------------------------------------------------------
    def observable(self) -> List[TraceRecord]:
        """Only the records an external observer can see."""
        return [r for r in self.records if r.is_observable]

    def observable_payloads(self) -> List[Tuple]:
        """Kind+detail pairs of observable records (step numbers dropped,
        so traces with different amounts of internal bookkeeping still
        compare equal)."""
        return [(r.kind, r.detail) for r in self.records if r.is_observable]

    def calls(self) -> List[Tuple]:
        return [r.detail for r in self.records if r.kind is TraceKind.CALL]

    def entered_states(self) -> List[str]:
        return [r.detail[0] for r in self.records
                if r.kind is TraceKind.STATE_ENTER]

    def fired_transitions(self) -> List[str]:
        return [r.detail[0] for r in self.records
                if r.kind is TraceKind.TRANSITION]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def dump(self) -> str:
        """Multi-line textual rendering (model-debugger style)."""
        return "\n".join(str(r) for r in self.records)


def observable_equal(a: Trace, b: Trace) -> bool:
    """True when two traces are observationally equivalent."""
    return a.observable_payloads() == b.observable_payloads()
