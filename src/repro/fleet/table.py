"""Compile a state machine into flat, table-driven dispatch arrays.

This is the paper's state-table pattern pushed to fleet scale: instead
of interpreting the model object graph per event (what
:class:`repro.semantics.runtime.MachineInstance` does), the machine's
*entire* reachable behavior is compiled once into

* a **configuration space** — every active configuration the machine
  can settle in.  With one region per level (the subset the whole
  pipeline supports) an active configuration is a root-to-leaf path of
  states, so it is identified by its leaf plus a "region done" bit for
  composites whose nested region reached its final state;
* a **dispatch table** ``cells[config][event] -> Cell``: the ordered
  candidate transitions a dispatch would try, exactly in the reference
  interpreter's order (innermost state first, document order within a
  state), each carrying its **guard pre-compiled to a Python closure**
  and a :class:`FireProgram` — the exit/effect/entry sequence resolved
  at compile time down to the destination configuration;
* a **completion table** ``completion[config]`` for the UML-priority
  completion dispatch that runs after every fired transition.

Guards and behaviors are compiled to Python functions (via
``compile()``) over a per-lane variable bank, so a fleet of N instances
shares one table and pays no model-graph traversal per event.  Cells
whose outcome cannot depend on per-lane state are classified **static**
(:attr:`Cell.static_end`): advancing a whole group of lanes in one
vectorized store is sound for them (see :mod:`repro.fleet.engine`).

Shapes outside the supported subset (choice/junction/history/terminate
pseudostates, non-default semantics, orthogonal regions) raise
:class:`FleetUnsupported` — the same "documented feature gap" contract
the codegen patterns use, which the fuzz oracle counts as a skipped
cell rather than a divergence.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..uml.actions import (Assign, Behavior, BinOp, BoolLit, CallExpr,
                           CallStmt, EmitStmt, Expr, IntLit, UnaryOp, VarRef)
from ..uml.events import AnyEvent
from ..uml.statemachine import (FinalState, Pseudostate, PseudostateKind,
                                State, StateMachine, Vertex)
from ..uml.transitions import Transition, TransitionKind
from ..semantics.variation import (ConflictPolicy, EventPoolPolicy,
                                   SemanticsConfig, UML_DEFAULT_SEMANTICS,
                                   UnconsumedPolicy)

__all__ = ["FleetUnsupported", "FleetExecutionError", "TableProgram",
           "Cell", "Candidate", "FireProgram", "compile_table",
           "FINAL_CONFIG"]

#: Config id of "top region completed" (machine in final).  Always 0 so
#: engines can test ``config == FINAL_CONFIG`` vectorized.
FINAL_CONFIG = 0


class FleetUnsupported(Exception):
    """The machine (or semantics) is outside the table engine's subset."""


class FleetExecutionError(Exception):
    """Runtime-semantic violation in a fleet lane (step-budget overflow,
    division by zero — the analogues of
    :class:`repro.semantics.runtime.ExecutionError`)."""


# ---------------------------------------------------------------------------
# expression / behavior compilation
# ---------------------------------------------------------------------------

def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise FleetExecutionError("division by zero")
    return int(a / b)          # C-style truncation, as the interpreter


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise FleetExecutionError("division by zero")
    return a - int(a / b) * b


class _ExprCompiler:
    """Expr -> Python source over ``(f, l)`` = (fleet, lane).

    Variable reads index the fleet's bank ``f.V[attr][lane]`` (coerced
    to Python int so arithmetic is exact); external calls go through
    ``f.call`` which evaluates, traces and dispatches to the mapped
    callable — mirroring the interpreter's traced-environment rule that
    a call is observable wherever it appears syntactically.
    """

    def __init__(self, attr_index: Dict[str, int]) -> None:
        self.attr_index = attr_index
        self.has_call = False

    def source(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return repr(expr.value)
        if isinstance(expr, BoolLit):
            return repr(expr.value)
        if isinstance(expr, VarRef):
            if expr.name not in self.attr_index:
                raise FleetUnsupported(
                    f"unbound context attribute {expr.name!r}")
            return f"int(V[{self.attr_index[expr.name]}][l])"
        if isinstance(expr, UnaryOp):
            inner = self.source(expr.operand)
            if expr.op == "!":
                return f"(not bool({inner}))"
            return f"(-int({inner}))"
        if isinstance(expr, BinOp):
            lhs, rhs = self.source(expr.lhs), self.source(expr.rhs)
            if expr.op == "&&":
                return f"(bool({lhs}) and bool({rhs}))"
            if expr.op == "||":
                return f"(bool({lhs}) or bool({rhs}))"
            if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                return f"(int({lhs}) {expr.op} int({rhs}))"
            if expr.op in ("+", "-", "*"):
                return f"(int({lhs}) {expr.op} int({rhs}))"
            if expr.op == "/":
                return f"_div(int({lhs}), int({rhs}))"
            return f"_mod(int({lhs}), int({rhs}))"
        if isinstance(expr, CallExpr):
            self.has_call = True
            args = ", ".join(self.source(a) for a in expr.args)
            trail = "," if expr.args else ""
            return f"f.call(l, {expr.func!r}, ({args}{trail}))"
        raise FleetUnsupported(f"cannot compile expression {expr!r}")


_COMPILE_ENV = {"_div": _c_div, "_mod": _c_mod}


def _compile_fn(name: str, body_src: str) -> Callable:
    namespace = dict(_COMPILE_ENV)
    code = compile(body_src, f"<fleet:{name}>", "exec")
    exec(code, namespace)
    return namespace[name]


class _BehaviorCompiler:
    """Compiles guards and behaviors once per machine (memoized by
    object identity — behaviors are shared between table cells)."""

    def __init__(self, attr_index: Dict[str, int],
                 attr_names: Sequence[str],
                 event_column: Dict[str, int], other_column: int) -> None:
        self.attr_index = attr_index
        self.attr_names = list(attr_names)
        self.event_column = event_column
        self.other_column = other_column
        self._behaviors: Dict[int, Optional["_CompiledBehavior"]] = {}
        self._guards: Dict[int, Tuple[Callable, bool]] = {}
        self._n = 0

    def guard(self, expr: Expr) -> Tuple[Callable, bool]:
        """``(closure, has_call)`` for a guard expression."""
        try:
            return self._guards[id(expr)]
        except KeyError:
            pass
        ec = _ExprCompiler(self.attr_index)
        src = ec.source(expr)
        self._n += 1
        name = f"_guard_{self._n}"
        fn = _compile_fn(
            name, f"def {name}(f, l):\n    V = f.V\n    return bool({src})\n")
        self._guards[id(expr)] = (fn, ec.has_call)
        return fn, ec.has_call


    def behavior(self, behavior: Behavior) -> Optional["_CompiledBehavior"]:
        """Compiled behavior, or None when it has no statements."""
        if not behavior:
            return None
        try:
            return self._behaviors[id(behavior)]
        except KeyError:
            pass
        ec = _ExprCompiler(self.attr_index)
        lines: List[str] = []
        has_assign = has_emit = False
        for stmt in behavior.statements:
            if isinstance(stmt, Assign):
                has_assign = True
                if stmt.target not in self.attr_index:
                    raise FleetUnsupported(
                        f"assignment to undeclared attribute "
                        f"{stmt.target!r}")
                idx = self.attr_index[stmt.target]
                lines.append(f"    _v = int({ec.source(stmt.value)})")
                lines.append(f"    V[{idx}][l] = _v")
                lines.append(f"    f.t_assign(l, {stmt.target!r}, _v)")
            elif isinstance(stmt, CallStmt):
                lines.append(f"    {ec.source(stmt.call)}")
            elif isinstance(stmt, EmitStmt):
                has_emit = True
                col = self.event_column.get(stmt.event_name,
                                            self.other_column)
                lines.append(
                    f"    f.emit(l, {col}, {stmt.event_name!r})")
            else:  # pragma: no cover - metamodel is closed
                raise FleetUnsupported(f"unknown statement {stmt!r}")
        self._n += 1
        name = f"_beh_{self._n}"
        src = f"def {name}(f, l):\n    V = f.V\n" + "\n".join(lines) + "\n"
        compiled = _CompiledBehavior(
            fn=_compile_fn(name, src), has_assign=has_assign,
            has_emit=has_emit, has_call=ec.has_call)
        self._behaviors[id(behavior)] = compiled
        return compiled


class _CompiledBehavior:
    __slots__ = ("fn", "has_assign", "has_emit", "has_call")

    def __init__(self, fn: Callable, has_assign: bool, has_emit: bool,
                 has_call: bool) -> None:
        self.fn = fn
        self.has_assign = has_assign
        self.has_emit = has_emit
        self.has_call = has_call


# ---------------------------------------------------------------------------
# fire programs and table cells
# ---------------------------------------------------------------------------

class FireProgram:
    """One transition firing, resolved at compile time.

    ``ops`` is the exit/effect/entry sequence as ``(f, l)`` closures in
    the interpreter's exact execution order; ``end`` is the destination
    configuration id.  ``internal`` marks effect-only firings (the lane's
    configuration — and its consumed-completion flag — survive)."""

    __slots__ = ("ops", "end", "internal", "has_assign", "has_emit",
                 "has_call", "desc")

    def __init__(self, ops: Sequence[Callable], end: int, internal: bool,
                 has_assign: bool, has_emit: bool, has_call: bool,
                 desc: str) -> None:
        self.ops = tuple(ops)
        self.end = end
        self.internal = internal
        self.has_assign = has_assign
        self.has_emit = has_emit
        self.has_call = has_call
        self.desc = desc


class Candidate:
    """One transition a dispatch may try: pre-compiled guard + program."""

    __slots__ = ("guard", "guard_has_call", "program")

    def __init__(self, guard: Optional[Callable], guard_has_call: bool,
                 program: FireProgram) -> None:
        self.guard = guard
        self.guard_has_call = guard_has_call
        self.program = program


class Cell:
    """Dispatch table entry for one (configuration, event) pair.

    ``static_end`` (when not None) is the configuration every lane in
    this cell lands in regardless of per-lane state: the first candidate
    is unguarded, its program performs no assignments or emissions, and
    the completion chain from its destination resolves statically.
    ``static_consumed`` is the consumed-completion flag those lanes end
    up with (None = keep the lane's current flag — internal firings).
    ``static_has_call`` notes whether that static route performs
    external calls — a vectorized jump may skip them only when nobody
    observes calls (no tracing, no mapped externals)."""

    __slots__ = ("candidates", "static_end", "static_consumed",
                 "static_has_call")

    def __init__(self, candidates: Sequence[Candidate]) -> None:
        self.candidates = tuple(candidates)
        self.static_end: Optional[int] = None
        self.static_consumed: Optional[bool] = None
        self.static_has_call = False

    @property
    def empty(self) -> bool:
        return not self.candidates


class TableProgram:
    """The compiled machine: configurations + dispatch/completion tables.

    * ``cells[config][column]`` — event dispatch (one column per
      alphabet event, plus a trailing out-of-alphabet column that only
      wildcard triggers populate);
    * ``completion[config]`` — completion candidates when the
      configuration is *ripe* (simple leaf, or composite leaf whose
      region is done), else None;
    * ``start`` — the initial transition's program (config
      :data:`FINAL_CONFIG` is 0; the start program never ends there for
      a machine whose initial targets a state).
    """

    def __init__(self, machine: StateMachine,
                 semantics: SemanticsConfig) -> None:
        self.machine = machine
        self.semantics = semantics
        self.attr_names: List[str] = list(machine.context.attributes)
        self.attr_defaults: List[int] = [
            machine.context.attributes[a] for a in self.attr_names]
        self.attr_index = {a: i for i, a in enumerate(self.attr_names)}
        self.event_names: List[str] = []
        for event in machine.events.values():
            if isinstance(event, AnyEvent):
                continue
            if event.name not in self.event_names:
                self.event_names.append(event.name)
        self.event_column = {n: i for i, n in enumerate(self.event_names)}
        self.other_column = len(self.event_names)
        self.n_columns = self.other_column + 1
        self.config_names: List[str] = ["<final>"]
        #: leaf state per config (None for the final config).
        self.leaves: List[Optional[State]] = [None]
        self.cells: List[List[Cell]] = []
        self.completion: List[Optional[Cell]] = []
        self.start: Optional[FireProgram] = None

    @property
    def n_configs(self) -> int:
        return len(self.config_names)

    def column_of(self, event_name: str) -> int:
        """Dispatch column of an event name (unknown names land in the
        wildcard-only column, like an out-of-alphabet dispatch)."""
        return self.event_column.get(event_name, self.other_column)

    def describe(self) -> str:
        static = sum(1 for row in self.cells for cell in row
                     if cell.static_end is not None or cell.empty)
        total = len(self.cells) * self.n_columns
        return (f"table[{self.machine.name}]: {self.n_configs} configs x "
                f"{self.n_columns} columns, {static}/{total} static cells")


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

_DEFAULTS = UML_DEFAULT_SEMANTICS


def _check_semantics(semantics: SemanticsConfig) -> None:
    if semantics.event_pool is not EventPoolPolicy.FIFO or \
            semantics.unconsumed_events is not UnconsumedPolicy.DISCARD or \
            semantics.conflict_resolution is not \
            ConflictPolicy.INNERMOST_FIRST or \
            not semantics.completion_priority:
        raise FleetUnsupported(
            "fleet tables implement the UML-default semantics "
            f"(got {semantics.describe()})")


class _TableBuilder:
    def __init__(self, machine: StateMachine,
                 semantics: SemanticsConfig) -> None:
        _check_semantics(semantics)
        if len(machine.regions) != 1:
            raise FleetUnsupported(
                "fleet tables support exactly one top region "
                f"(machine has {len(machine.regions)})")
        for state in machine.all_states():
            if len(state.regions) > 1:
                raise FleetUnsupported(
                    f"orthogonal regions not supported "
                    f"(state {state.label!r})")
        for vertex in machine.all_vertices():
            if isinstance(vertex, Pseudostate) and \
                    vertex.kind is not PseudostateKind.INITIAL:
                raise FleetUnsupported(
                    f"pseudostate kind {vertex.kind.value!r} not supported")
        self.machine = machine
        self.program = TableProgram(machine, semantics)
        self.bc = _BehaviorCompiler(self.program.attr_index,
                                    self.program.attr_names,
                                    self.program.event_column,
                                    self.program.other_column)
        #: (leaf element_id, done) -> config id; FINAL_CONFIG preassigned.
        self._ids: Dict[Tuple[int, bool], int] = {}
        self._leaves: List[Optional[Tuple[State, bool]]] = [None]
        self._worklist: List[int] = []

    # -- configuration ids ------------------------------------------------

    def _config_id(self, leaf: State, done: bool) -> int:
        key = (leaf.element_id, done)
        try:
            return self._ids[key]
        except KeyError:
            cid = len(self.program.config_names)
            self._ids[key] = cid
            suffix = " (done)" if done else ""
            self.program.config_names.append(f"{leaf.name}{suffix}")
            self.program.leaves.append(leaf)
            self._leaves.append((leaf, done))
            self._worklist.append(cid)
            return cid

    @staticmethod
    def _path_of(leaf: State) -> List[State]:
        """Active path for a leaf, outermost -> innermost."""
        path = [leaf]
        path.extend(leaf.ancestors())
        path.reverse()
        return path

    # -- program resolution ----------------------------------------------

    def _ops_exit(self, ops: List, flags: Dict[str, bool],
                  state: State) -> None:
        beh = self.bc.behavior(state.exit)
        name = state.name
        if beh is not None:
            self._merge(flags, beh)
            fn = beh.fn

            def op(f, l, fn=fn, name=name):
                fn(f, l)
                f.t_exit(l, name)
        else:
            def op(f, l, name=name):
                f.t_exit(l, name)
        ops.append(op)

    def _ops_enter(self, ops: List, flags: Dict[str, bool],
                   state: State) -> None:
        beh = self.bc.behavior(state.entry)
        name = state.name
        if beh is not None:
            self._merge(flags, beh)
            fn = beh.fn

            def op(f, l, fn=fn, name=name):
                fn(f, l)
                f.t_enter(l, name)
        else:
            def op(f, l, name=name):
                f.t_enter(l, name)
        ops.append(op)

    def _ops_effect(self, ops: List, flags: Dict[str, bool],
                    behavior: Behavior) -> None:
        beh = self.bc.behavior(behavior)
        if beh is None:
            return
        self._merge(flags, beh)
        ops.append(beh.fn)

    def _ops_completed(self, ops: List, label: str) -> None:
        def op(f, l, label=label):
            f.t_completed(l, label)
        ops.append(op)

    @staticmethod
    def _merge(flags: Dict[str, bool], beh: _CompiledBehavior) -> None:
        flags["assign"] = flags["assign"] or beh.has_assign
        flags["emit"] = flags["emit"] or beh.has_emit
        flags["call"] = flags["call"] or beh.has_call

    def _enter_state_path(self, active: List[State], target: State,
                          ops: List, flags: Dict[str, bool]) -> None:
        """Mirror of the interpreter's ``_enter_state_path``."""
        chain = [target]
        chain.extend(target.ancestors())
        for state in reversed(chain):
            if state not in active:
                active.append(state)
                self._ops_enter(ops, flags, state)

    def _enter_enclosing(self, active: List[State], vertex: Vertex,
                         ops: List, flags: Dict[str, bool]) -> None:
        """Mirror of ``_enter_state_path_to_region``."""
        enclosing = [anc for anc in vertex.owner_chain()
                     if isinstance(anc, State)]
        for state in reversed(enclosing):
            if state not in active:
                active.append(state)
                self._ops_enter(ops, flags, state)

    def _initial_transition(self, region) -> Transition:
        initial = region.initial
        if initial is None:
            raise FleetUnsupported(
                f"region {region.label!r} has no initial pseudostate")
        out = initial.outgoing()
        if not out:
            raise FleetUnsupported(
                f"initial of region {region.label!r} has no outgoing "
                "transition")
        return out[0]

    def _resolve_enter(self, active: List[State], target: Vertex,
                       ops: List, flags: Dict[str, bool]) -> int:
        """Enter *target* (resolving default entries and finals);
        returns the destination config id."""
        if isinstance(target, State):
            self._enter_state_path(active, target, ops, flags)
            return self._default_entry(active, target, ops, flags)
        if isinstance(target, FinalState):
            self._enter_enclosing(active, target, ops, flags)
            return self._complete_region(active, target, ops, flags)
        raise FleetUnsupported(f"cannot enter vertex {target!r}")

    def _default_entry(self, active: List[State], state: State,
                       ops: List, flags: Dict[str, bool]) -> int:
        current = state
        for _ in range(4096):
            if not current.is_composite:
                return self._config_id(current, False)
            region = current.regions[0]
            if region.initial is None:
                # Region never entered: the composite behaves like a
                # simple state (and can never complete).
                return self._config_id(current, False)
            transition = self._initial_transition(region)
            self._ops_effect(ops, flags, transition.effect)
            target = transition.target
            if isinstance(target, State):
                self._enter_state_path(active, target, ops, flags)
                current = target
                continue
            if isinstance(target, FinalState):
                self._enter_enclosing(active, target, ops, flags)
                return self._complete_region(active, target, ops, flags)
            raise FleetUnsupported(
                f"initial transition targets {target!r}")
        raise FleetUnsupported("default-entry chain does not terminate")

    def _complete_region(self, active: List[State], final: FinalState,
                         ops: List, flags: Dict[str, bool]) -> int:
        region = final.container
        assert region is not None
        owner = region.owner
        self._ops_completed(ops, region.label)
        if isinstance(owner, StateMachine):
            while active:
                self._ops_exit(ops, flags, active.pop())
            return FINAL_CONFIG
        assert isinstance(owner, State)
        while active and active[-1] is not owner:
            self._ops_exit(ops, flags, active.pop())
        if not active:        # pragma: no cover - model invariant
            raise FleetUnsupported(
                f"final state {final.label!r} completes an inactive region")
        return self._config_id(owner, True)

    def _resolve_fire(self, path: Sequence[State], config_id: int,
                      transition: Transition) -> FireProgram:
        flags = {"assign": False, "emit": False, "call": False}
        ops: List[Callable] = []
        if transition.kind is TransitionKind.INTERNAL:
            self._ops_effect(ops, flags, transition.effect)
            return FireProgram(ops, config_id, True, flags["assign"],
                               flags["emit"], flags["call"],
                               transition.describe())
        active = list(path)
        source = transition.source
        if isinstance(source, State) and source in active:
            while active:
                top = active.pop()
                self._ops_exit(ops, flags, top)
                if top is source:
                    break
        enclosure = {anc.element_id for anc in
                     transition.target.owner_chain()
                     if isinstance(anc, State)}
        while active and active[-1].element_id not in enclosure:
            self._ops_exit(ops, flags, active.pop())
        self._ops_effect(ops, flags, transition.effect)
        end = self._resolve_enter(active, transition.target, ops, flags)
        return FireProgram(ops, end, False, flags["assign"],
                           flags["emit"], flags["call"],
                           transition.describe())

    # -- cells ------------------------------------------------------------

    def _candidate(self, path: Sequence[State], config_id: int,
                   transition: Transition) -> Candidate:
        guard_fn = None
        guard_call = False
        if transition.guard is not None:
            guard_fn, guard_call = self.bc.guard(transition.guard)
        program = self._resolve_fire(path, config_id, transition)
        return Candidate(guard_fn, guard_call, program)

    def _matches(self, transition: Transition, column: int) -> bool:
        for trig in transition.triggers:
            if isinstance(trig, AnyEvent):
                return True
            if column != self.program.other_column and \
                    trig.name == self.program.event_names[column]:
                return True
        return False

    def _build_config(self, config_id: int) -> None:
        leaf, done = self._leaves[config_id]
        path = self._path_of(leaf)
        row: List[Cell] = []
        for column in range(self.program.n_columns):
            candidates: List[Candidate] = []
            for state in reversed(path):     # innermost first
                for transition in state.event_transitions():
                    if self._matches(transition, column):
                        candidates.append(
                            self._candidate(path, config_id, transition))
            row.append(Cell(candidates))
        completions = leaf.completion_transitions()
        ripe = bool(completions) and (leaf.is_simple or done)
        completion_cell: Optional[Cell] = None
        if ripe:
            completion_cell = Cell([
                self._candidate(path, config_id, t) for t in completions])
        # Rows are keyed by config id; fill any gap left by configs
        # discovered out of order.
        while len(self.program.cells) <= config_id:
            self.program.cells.append([])
            self.program.completion.append(None)
        self.program.cells[config_id] = row
        self.program.completion[config_id] = completion_cell

    # -- static classification -------------------------------------------

    def _classify(self, program: FireProgram
                  ) -> Tuple[Optional[int], Optional[bool], bool]:
        """Static destination of a program, completion chain included.

        Returns ``(end_config, consumed, has_call)`` when every lane
        taking this program provably lands in ``end_config`` with
        unchanged variables and no emissions; ``(None, None, False)``
        otherwise.  ``consumed`` is the lane's resulting
        consumed-completion flag: None keeps the current one (internal
        event transitions), True when the route ends by consuming a
        completion on an internal completion transition, False when the
        final configuration was freshly entered."""
        miss = (None, None, False)
        if program.has_assign or program.has_emit:
            return miss
        has_call = program.has_call
        config = program.end
        if program.internal:
            # Internal firings keep the (already consumed — settle
            # invariant) completion flag and never re-dispatch one.
            return config, None, has_call
        seen = set()
        while True:
            cell = self.program.completion[config]
            if cell is None:
                # Landing configuration is not ripe: a fresh entry
                # leaves the completion unconsumed.
                return config, False, has_call
            first = cell.candidates[0]
            if first.guard is not None:
                return miss
            prog = first.program
            if prog.has_assign or prog.has_emit:
                return miss
            has_call = has_call or prog.has_call
            if prog.internal:
                # The completion was consumed; the effect-only firing
                # keeps the lane in the (ripe) configuration.
                return config, True, has_call
            if config in seen:
                # Unguarded completion cycle: the runtime step budget
                # must catch it, lane by lane.
                return miss
            seen.add(config)
            config = prog.end

    def _classify_cells(self) -> None:
        for row in self.program.cells:
            for cell in row:
                if not cell.candidates:
                    continue
                first = cell.candidates[0]
                if first.guard is not None:
                    continue
                end, consumed, has_call = self._classify(first.program)
                if end is not None:
                    cell.static_end = end
                    cell.static_consumed = consumed
                    cell.static_has_call = has_call

    # -- entry point ------------------------------------------------------

    def build(self) -> TableProgram:
        top = self.machine.regions[0]
        transition = self._initial_transition(top)
        flags = {"assign": False, "emit": False, "call": False}
        ops: List[Callable] = []
        self._ops_effect(ops, flags, transition.effect)
        end = self._resolve_enter([], transition.target, ops, flags)
        self.program.start = FireProgram(
            ops, end, False, flags["assign"], flags["emit"], flags["call"],
            "initial")
        while self._worklist:
            self._build_config(self._worklist.pop(0))
        # FINAL row: every dispatch is a drop.
        if not self.program.cells:
            self.program.cells.append(
                [Cell(()) for _ in range(self.program.n_columns)])
            self.program.completion.append(None)
        else:
            self.program.cells[FINAL_CONFIG] = \
                [Cell(()) for _ in range(self.program.n_columns)]
            self.program.completion[FINAL_CONFIG] = None
        self._classify_cells()
        return self.program


def compile_table(machine: StateMachine,
                  semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                  ) -> TableProgram:
    """Compile *machine* into a :class:`TableProgram` (raises
    :class:`FleetUnsupported` outside the supported subset)."""
    return _TableBuilder(machine, semantics).build()
