"""Differential conformance: the fleet engine vs. the reference
semantics.

Two checks per scenario, because the fleet has two execution paths:

* **traced lane** — a width-1 traced fleet (scalar path) must produce
  a trace `observable_equal` to the interpreter's, plus final-state
  agreement;
* **vectorized fleet** — a wide, untraced fleet (static cells advance
  by masked stores) must put *every* lane in the interpreter's final
  configuration with the interpreter's attribute values.

Both run through the :class:`repro.exec` protocol — the conformance
grid is itself a caller of the redesigned API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..semantics.runtime import ExecutionError
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .engine import Fleet
from .table import FleetExecutionError, FleetUnsupported, compile_table

__all__ = ["FleetConformanceReport", "check_fleet_conformance"]


@dataclass
class FleetConformanceReport:
    """Interpreter-vs-fleet comparison over a scenario set."""

    machine_name: str
    scenarios_run: int = 0
    mismatches: List[Tuple[Tuple[str, ...], str]] = field(
        default_factory=list)
    unsupported: Optional[str] = None
    #: vectorized-path accounting over the wide runs
    wide_lanes: int = 0
    fast_lane_events: int = 0
    scalar_lane_events: int = 0

    @property
    def conformant(self) -> bool:
        return not self.mismatches and self.unsupported is None

    @property
    def fast_fraction(self) -> float:
        total = self.fast_lane_events + self.scalar_lane_events
        return self.fast_lane_events / total if total else 0.0

    def summary(self) -> str:
        if self.unsupported is not None:
            return (f"{self.machine_name}: fleet-unsupported "
                    f"({self.unsupported})")
        if self.conformant:
            return (f"{self.machine_name}: conformant on "
                    f"{self.scenarios_run} scenario(s); vectorized "
                    f"fraction {self.fast_fraction:.0%} over "
                    f"{self.wide_lanes} lanes")
        first = self.mismatches[0]
        return (f"{self.machine_name}: {len(self.mismatches)} of "
                f"{self.scenarios_run} scenario(s) diverge; first: "
                f"events={list(first[0])} ({first[1]})")


def check_fleet_conformance(machine: StateMachine,
                            semantics: SemanticsConfig =
                            UML_DEFAULT_SEMANTICS,
                            scenarios: Optional[Sequence[Tuple[str, ...]]]
                            = None,
                            wide_lanes: int = 64,
                            ) -> FleetConformanceReport:
    """Run every scenario on interpreter + fleet (both paths)."""
    # Imported here, not at module top: repro.exec adapts this package,
    # so a top-level import would be circular.
    from ..exec.adapters import FleetExecutor, InterpreterExecutor
    from ..exec.protocol import run_scenario
    report = FleetConformanceReport(machine_name=machine.name,
                                    wide_lanes=wide_lanes)
    if scenarios is None:
        from ..vm.conformance import conformance_scenarios
        scenarios = conformance_scenarios(machine)
    try:
        table = compile_table(machine, semantics)
    except FleetUnsupported as exc:
        report.unsupported = str(exc)
        return report
    interp = InterpreterExecutor(semantics)
    traced = FleetExecutor(semantics)
    traced._tables[machine] = table     # share the compile

    for events in scenarios:
        report.scenarios_run += 1
        try:
            ref = run_scenario(interp, machine, events)
        except ExecutionError as exc:
            report.mismatches.append((tuple(events),
                                      f"interpreter raised: {exc}"))
            continue
        try:
            lane = run_scenario(traced, machine, events)
        except FleetExecutionError as exc:
            report.mismatches.append((tuple(events),
                                      f"fleet raised: {exc}"))
            continue
        if ref.trace.observable_payloads() != \
                lane.trace.observable_payloads():
            report.mismatches.append((tuple(events),
                                      "observable trace mismatch"))
            continue
        if ref.in_final != lane.in_final:
            report.mismatches.append((tuple(events),
                                      "final-state mismatch"))
            continue
        # Vectorized path: every lane of a wide, untraced fleet must
        # land exactly where the interpreter did.
        try:
            wide = Fleet(table, wide_lanes).start()
            for event in events:
                wide.dispatch_all(event)
        except FleetExecutionError as exc:
            report.mismatches.append((tuple(events),
                                      f"wide fleet raised: {exc}"))
            continue
        report.fast_lane_events += wide.stats.fast_lane_events
        report.scalar_lane_events += wide.stats.scalar_lane_events
        expected_attrs = ref.attributes()
        for l in range(wide.n):
            if wide.lane_in_final(l) != ref.in_final:
                report.mismatches.append(
                    (tuple(events), f"lane {l}: final-state mismatch "
                     "on vectorized path"))
                break
            if wide.attributes_of(l) != expected_attrs:
                report.mismatches.append(
                    (tuple(events), f"lane {l}: attribute mismatch on "
                     f"vectorized path ({wide.attributes_of(l)} != "
                     f"{expected_attrs})"))
                break
    return report
