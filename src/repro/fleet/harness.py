"""Fleet harness: N instances, sharded event queues, batch dispatch.

The ROADMAP's production framing is a service advancing very many
machine instances against a shared event stream.  The harness models
exactly that:

* it instantiates **N lanes** of one or more compiled machines,
  partitioned over ``n_shards`` shards (each shard owns one
  :class:`~repro.fleet.engine.Fleet` per machine — lanes of one shard
  advance together in the vectorized dispatch);
* events are **routed** to shards (``round-robin`` spreads a stream
  over sub-populations; ``broadcast`` delivers every event to every
  lane — the mode benchmarks use to compare against per-instance
  interpretation);
* routed events park in per-shard **queues** and are dispatched in
  **batches** of ``batch_size``; each batch flush is timed, giving the
  per-shard latency distribution the throughput report summarizes.

Everything is wall-clock here — this module quantifies the table
engine, it does not participate in the deterministic experiment
tables (which is why the experiments CLI only prints it under an
explicit flag).
"""

from __future__ import annotations

import time
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..obs.metrics import REGISTRY
from ..obs.trace import span as _span
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .engine import Fleet
from .table import TableProgram, compile_table

__all__ = ["FleetHarness", "ThroughputReport", "ShardReport"]

_FLEET_BATCHES = REGISTRY.counter("fleet_batches_total",
                                  "batch flushes by shard")
_FLEET_LANE_EVENTS = REGISTRY.counter("fleet_lane_events_total",
                                      "lane-events delivered by runs")

MachineSpec = Union[StateMachine, TableProgram,
                    Tuple[Union[StateMachine, TableProgram], int]]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class ShardReport:
    """One shard's share of a run: lanes, events, batch latencies."""

    __slots__ = ("shard", "lanes", "events_routed", "lane_events",
                 "fast_fraction", "p50_ms", "p90_ms", "p99_ms", "max_ms")

    def __init__(self, shard: int, lanes: int, events_routed: int,
                 lane_events: int, fast_fraction: float,
                 latencies_s: Sequence[float]) -> None:
        self.shard = shard
        self.lanes = lanes
        self.events_routed = events_routed
        self.lane_events = lane_events
        self.fast_fraction = fast_fraction
        ordered = sorted(latencies_s)
        self.p50_ms = _percentile(ordered, 0.50) * 1e3
        self.p90_ms = _percentile(ordered, 0.90) * 1e3
        self.p99_ms = _percentile(ordered, 0.99) * 1e3
        self.max_ms = (ordered[-1] if ordered else 0.0) * 1e3

    def summary(self) -> str:
        return (f"shard {self.shard}: {self.lanes} lanes, "
                f"{self.events_routed} events -> {self.lane_events} "
                f"lane-events ({self.fast_fraction:.0%} vectorized); "
                f"batch p50/p90/p99 = {self.p50_ms:.3f}/"
                f"{self.p90_ms:.3f}/{self.p99_ms:.3f} ms")


class ThroughputReport:
    """Sustained throughput of one harness run."""

    def __init__(self, n_lanes: int, n_shards: int, routing: str,
                 events_routed: int, lane_events: int, fired: int,
                 elapsed_s: float, shards: List[ShardReport]) -> None:
        self.n_lanes = n_lanes
        self.n_shards = n_shards
        self.routing = routing
        self.events_routed = events_routed
        self.lane_events = lane_events
        self.fired = fired
        self.elapsed_s = elapsed_s
        self.shards = shards

    @property
    def events_per_sec(self) -> float:
        """Sustained lane-events per second — the fleet throughput
        number (one stream event delivered to L lanes counts L)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.lane_events / self.elapsed_s

    def summary(self) -> str:
        lines = [(f"{self.n_lanes} lanes / {self.n_shards} shard(s), "
                  f"{self.routing} routing: {self.lane_events} "
                  f"lane-events in {self.elapsed_s:.3f}s = "
                  f"{self.events_per_sec:,.0f} events/sec "
                  f"({self.fired} transitions fired)")]
        lines.extend(s.summary() for s in self.shards)
        return "\n".join(lines)


class _Shard:
    def __init__(self, fleets: List[Fleet], batch_size: int,
                 index: int = 0) -> None:
        self.fleets = fleets
        self.batch_size = batch_size
        self.index = index
        self.queue: List[str] = []
        self.events_routed = 0
        self.latencies_s: List[float] = []

    @property
    def lanes(self) -> int:
        return sum(f.n for f in self.fleets)

    def push(self, name: str) -> None:
        self.queue.append(name)
        if len(self.queue) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if not self.queue:
            return
        batch, self.queue = self.queue, []
        sp = _span("fleet.batch")
        if sp.recording:
            sp.set(shard=self.index, events=len(batch))
        with sp:
            began = time.perf_counter()
            for name in batch:
                for fleet in self.fleets:
                    fleet.dispatch_all(name)
            self.latencies_s.append(time.perf_counter() - began)
        self.events_routed += len(batch)
        _FLEET_BATCHES.inc(shard=self.index)


class FleetHarness:
    """N instances of one or more machines behind sharded event queues.

    Parameters
    ----------
    specs:
        What to instantiate: a machine (or precompiled
        :class:`TableProgram`), a ``(machine, n_instances)`` pair, or a
        list of those.  A bare machine takes the full *n_instances*
        default.
    n_instances:
        Default instance count for specs that do not carry their own.
    n_shards:
        Number of shards; each machine's lanes are split evenly across
        shards (first shards take the remainder).
    batch_size:
        Events buffered per shard queue before a dispatch flush.
    routing:
        ``"round-robin"`` sends each stream event to one shard in turn;
        ``"broadcast"`` delivers every event to every shard (so every
        lane sees the full stream — the apples-to-apples mode against
        per-instance execution).
    step_budget:
        Per-lane transition budget forwarded to the fleets; defaults to
        None (unbounded) because throughput streams legitimately exceed
        the interpreter's debugging budget.
    """

    def __init__(self, specs: Union[MachineSpec, Sequence[MachineSpec]],
                 n_instances: int = 1024, n_shards: int = 4,
                 batch_size: int = 64, routing: str = "round-robin",
                 externals: Optional[Mapping[str, Callable]] = None,
                 semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 step_budget: Optional[int] = None) -> None:
        if routing not in ("round-robin", "broadcast"):
            raise ValueError(f"unknown routing policy {routing!r}")
        self.routing = routing
        if isinstance(specs, (StateMachine, TableProgram, tuple)):
            specs = [specs]
        resolved: List[Tuple[TableProgram, int]] = []
        for spec in specs:
            count = n_instances
            if isinstance(spec, tuple):
                spec, count = spec
            if isinstance(spec, StateMachine):
                spec = compile_table(spec, semantics)
            if count < 1:
                raise ValueError("instance count must be >= 1")
            resolved.append((spec, count))
        n_shards = max(1, min(n_shards, min(c for _, c in resolved)))
        self.n_shards = n_shards
        self._shards: List[_Shard] = []
        for shard_index in range(n_shards):
            fleets = []
            for program, count in resolved:
                width = count // n_shards + \
                    (1 if shard_index < count % n_shards else 0)
                if width:
                    fleets.append(Fleet(program, width,
                                        externals=externals,
                                        step_budget=step_budget))
            self._shards.append(_Shard(fleets, batch_size,
                                       index=shard_index))
        self.n_lanes = sum(s.lanes for s in self._shards)
        self._started = False
        self._next_shard = 0

    def start(self) -> "FleetHarness":
        for shard in self._shards:
            for fleet in shard.fleets:
                fleet.start()
        self._started = True
        return self

    def route(self, event: object) -> None:
        """Queue one stream event according to the routing policy."""
        name = getattr(event, "name", None) or str(event)
        if self.routing == "broadcast":
            for shard in self._shards:
                shard.push(name)
        else:
            self._shards[self._next_shard].push(name)
            self._next_shard = (self._next_shard + 1) % self.n_shards

    def run(self, events: Sequence[object]) -> ThroughputReport:
        """Route a whole stream, flush every queue, report throughput."""
        if not self._started:
            self.start()
        sp = _span("fleet.run")
        if sp.recording:
            sp.set(lanes=self.n_lanes, shards=self.n_shards,
                   routing=self.routing, events=len(events))
        with sp:
            began = time.perf_counter()
            for event in events:
                self.route(event)
            for shard in self._shards:
                shard.flush()
            elapsed = time.perf_counter() - began
        reports = []
        lane_events = fired = routed = 0
        for shard in self._shards:
            stats = [f.stats for f in shard.fleets]
            shard_lane_events = sum(s.lane_events for s in stats)
            shard_fast = sum(s.fast_lane_events for s in stats)
            reports.append(ShardReport(
                len(reports),
                shard.lanes, shard.events_routed, shard_lane_events,
                shard_fast / shard_lane_events if shard_lane_events else 0.0,
                shard.latencies_s))
            lane_events += shard_lane_events
            fired += sum(s.fired for s in stats)
            routed += shard.events_routed
        if lane_events:
            _FLEET_LANE_EVENTS.inc(lane_events)
        return ThroughputReport(self.n_lanes, self.n_shards, self.routing,
                                routed, lane_events, fired, elapsed,
                                reports)

    def finals(self) -> int:
        """Lanes (across all shards and machines) in their final state."""
        return sum(f.finals() for s in self._shards for f in s.fleets)
