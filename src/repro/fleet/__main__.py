"""CLI: fleet throughput smoke and benchmarks.

``python -m repro.fleet smoke`` runs a fixed-seed fleet (default 10^4
instances of a generator workload machine), measures sustained
events/sec through the sharded harness, measures the per-instance
interpreter on a small sample of the same workload, and reports the
speedup.  ``--json`` prints a machine-readable result (consumed by
``scripts/check_bench.py --fleet-smoke``); ``--min-events-per-sec`` /
``--min-speedup`` turn the run into an asserting gate.

All numbers here are wall-clock — this tool quantifies the engine and
never feeds the deterministic experiment tables.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List

from ..experiments.workload import WorkloadSpec, generate_machine
from .baseline import interpreter_dispatch_rate
from .harness import FleetHarness
from .table import compile_table

__all__ = ["main"]


def smoke_machine(seed: int):
    """The smoke workload: a live ring with a shadowed composite and a
    guarded fraction, so the stream exercises hierarchy, guards and
    calls — not just bare jumps."""
    return generate_machine(WorkloadSpec(
        n_live=8, n_dead=2, n_shadowed_composites=1, composite_width=3,
        entry_calls=2, exit_calls=1, events_per_state=2,
        guarded_fraction=0.25, seed=seed, name="FleetSmoke"))


def event_stream(machine, n_events: int, seed: int) -> List[str]:
    alphabet = [e.name for e in machine.signal_alphabet()]
    rng = random.Random(seed)
    return [rng.choice(alphabet) for _ in range(n_events)]


def interpreter_rate(machine, events: List[str], sample: int) -> float:
    """Per-instance interpreter lane-events/sec over a *sample* of
    instances (running 10^4 interpreters would dominate the smoke).
    Dispatch-only: setup is hoisted out of the timed region
    (:func:`repro.fleet.baseline.interpreter_dispatch_rate`)."""
    return interpreter_dispatch_rate(machine, events, sample)


def cmd_smoke(args: argparse.Namespace) -> int:
    machine = smoke_machine(args.seed)
    table = compile_table(machine)
    events = event_stream(machine, args.events, args.seed + 1)

    harness = FleetHarness(table, n_instances=args.instances,
                           n_shards=args.shards,
                           batch_size=args.batch_size,
                           routing="broadcast")
    harness.start()
    report = harness.run(events)

    sample = min(args.interp_sample, args.instances)
    interp_eps = interpreter_rate(machine, events, sample)
    # None, not inf, when the baseline rate is 0: "infx" is a
    # measurement artifact and raw inf is not even valid JSON.
    speedup = (report.events_per_sec / interp_eps if interp_eps
               else None)

    result = {
        "machine": machine.name,
        "table": table.describe(),
        "instances": harness.n_lanes,
        "shards": harness.n_shards,
        "stream_events": len(events),
        "lane_events": report.lane_events,
        "elapsed_s": round(report.elapsed_s, 6),
        "events_per_sec": round(report.events_per_sec, 1),
        "interp_sample": sample,
        "interp_events_per_sec": round(interp_eps, 1),
        "speedup_vs_interp": (round(speedup, 2)
                              if speedup is not None else None),
        "shard_p99_ms": [round(s.p99_ms, 3) for s in report.shards],
    }
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(report.summary())
        print(f"interpreter sample ({sample} instances): "
              f"{interp_eps:,.0f} events/sec per lane")
        display = "n/a" if speedup is None else f"{speedup:.1f}x"
        print(f"fleet speedup vs per-instance interpretation: {display}")

    failed = []
    if args.min_events_per_sec and \
            report.events_per_sec < args.min_events_per_sec:
        failed.append(f"events/sec {report.events_per_sec:,.0f} < floor "
                      f"{args.min_events_per_sec:,.0f}")
    if args.min_speedup and (speedup is None
                             or speedup < args.min_speedup):
        failed.append("speedup n/a (interpreter baseline rate is 0) "
                      f"< floor {args.min_speedup:.1f}x"
                      if speedup is None else
                      f"speedup {speedup:.1f}x < floor "
                      f"{args.min_speedup:.1f}x")
    for message in failed:
        print(f"fleet-smoke FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="fleet throughput smoke (wall-clock)")
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser("smoke", help="fixed-seed throughput smoke")
    smoke.add_argument("--instances", type=int, default=10_000)
    smoke.add_argument("--events", type=int, default=200,
                       help="stream length (every instance sees all of "
                            "it: broadcast routing)")
    smoke.add_argument("--shards", type=int, default=4)
    smoke.add_argument("--batch-size", type=int, default=32)
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument("--interp-sample", type=int, default=25,
                       help="interpreter instances for the baseline rate")
    smoke.add_argument("--min-events-per-sec", type=float, default=0.0)
    smoke.add_argument("--min-speedup", type=float, default=0.0)
    smoke.add_argument("--json", action="store_true")
    smoke.set_defaults(fn=cmd_smoke)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
