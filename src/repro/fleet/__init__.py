"""repro.fleet — vectorized table-driven execution of machine fleets.

The paper's state-table codegen pattern, scaled out: a machine's
state x event transition relation compiles into flat dispatch arrays
(:mod:`~repro.fleet.table`), one shared table advances N per-lane
variable banks (:mod:`~repro.fleet.engine`), and a sharded harness
routes high-volume event streams and measures sustained events/sec
(:mod:`~repro.fleet.harness`).  Differential conformance against the
reference interpreter lives in :mod:`~repro.fleet.conformance`.
"""

from .table import (FINAL_CONFIG, FleetExecutionError, FleetUnsupported,
                    TableProgram, compile_table)
from .engine import Fleet, FleetStats
from .harness import FleetHarness, ThroughputReport
from .baseline import interpreter_dispatch_rate
from .conformance import FleetConformanceReport, check_fleet_conformance

__all__ = ["compile_table", "TableProgram", "FleetUnsupported",
           "FleetExecutionError", "FINAL_CONFIG", "Fleet", "FleetStats",
           "FleetHarness", "ThroughputReport", "interpreter_dispatch_rate",
           "FleetConformanceReport", "check_fleet_conformance"]
