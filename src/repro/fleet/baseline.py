"""The per-instance interpreter baseline the fleet is measured against.

One function, shared by the ``--throughput`` experiment table and the
``python -m repro.fleet smoke`` gate, so both report the same quantity:
sustained **dispatch** events/sec of per-instance interpretation.

The timed region contains *only* ``dispatch`` calls.  Instance
construction and ``start()`` (initial-transition execution, entry
behaviors) happen before the clock starts — the fleet side's
``ThroughputReport`` also times only its dispatch loop, and folding
per-instance setup into the interpreter denominator inflated the
reported fleet speedup (the bug this module fixes).  A regression test
pins the ordering via the injectable *clock*.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..semantics.runtime import MachineInstance
from ..uml.statemachine import StateMachine

__all__ = ["interpreter_dispatch_rate"]


def interpreter_dispatch_rate(machine: StateMachine,
                              events: Sequence[str], sample: int,
                              clock: Callable[[], float] =
                              time.perf_counter) -> float:
    """Dispatch-only events/sec of *sample* interpreter instances each
    consuming *events*; 0.0 when there is nothing to time."""
    instances = []
    for _ in range(max(0, sample)):
        instance = MachineInstance(machine)
        instance.start()
        instances.append(instance)
    began = clock()
    for instance in instances:
        for name in events:
            instance.dispatch(name)
    elapsed = clock() - began
    total = len(instances) * len(events)
    return total / elapsed if elapsed > 0 and total else 0.0
