"""Fleet runtime: advance N instances of one compiled table per step.

A :class:`Fleet` holds the *per-lane* state of N machine instances that
share one :class:`~repro.fleet.table.TableProgram`:

* ``config``  — int32 lane -> configuration id;
* ``V``       — int64 bank per context attribute (``V[attr][lane]``);
* ``consumed``— bool lane -> "the current leaf's completion event has
  been dispatched" (the one sticky bit the run-to-completion semantics
  needs per lane — see the table module's configuration-space argument);
* sparse per-lane pending-event queues (non-empty only between
  ``start()`` and the first dispatch: emissions drain within the
  run-to-completion step that produced them, exactly like the
  interpreter's pool).

``dispatch_all(event)`` is the throughput primitive.  Lanes are grouped
by configuration (one ``config == c`` mask each, snapshotted *before*
any lane moves so a lane never sees the same event twice); groups whose
dispatch cell is **static** advance with one vectorized store, the rest
fall back to the scalar run-to-completion loop — compiled-closure
candidate scan, guard evaluation on that lane only, completion settle —
which is also the only path taken when tracing is on (traces are
per-lane objects) or when external callables must observe calls.

NumPy supplies the banks when available; a pure-list fallback keeps the
engine importable (and correct, just slower) without it.
"""

from __future__ import annotations

from collections import deque
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

try:                                   # the container bakes numpy in,
    import numpy as _np                # but the engine must not require it
except Exception:                      # pragma: no cover
    _np = None

from ..semantics.trace import Trace, TraceKind
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .table import (FINAL_CONFIG, FleetExecutionError, TableProgram,
                    compile_table)

__all__ = ["Fleet", "FleetStats"]


class FleetStats:
    """Dispatch accounting for one fleet (lane-events, not wall time)."""

    __slots__ = ("batches", "fast_lane_events", "scalar_lane_events",
                 "fired", "max_pool_depth")

    def __init__(self) -> None:
        self.batches = 0
        self.fast_lane_events = 0
        self.scalar_lane_events = 0
        self.fired = 0
        self.max_pool_depth = 0

    @property
    def lane_events(self) -> int:
        return self.fast_lane_events + self.scalar_lane_events

    @property
    def fast_fraction(self) -> float:
        total = self.lane_events
        return self.fast_lane_events / total if total else 0.0

    def summary(self) -> str:
        return (f"{self.lane_events} lane-events in {self.batches} "
                f"batches ({self.fast_fraction:.0%} vectorized, "
                f"{self.fired} transitions fired)")


def _int_bank(n: int, fill: int):
    if _np is not None:
        return _np.full(n, fill, dtype=_np.int64)
    return [fill] * n


def _config_bank(n: int, fill: int):
    if _np is not None:
        return _np.full(n, fill, dtype=_np.int32)
    return [fill] * n


def _bool_bank(n: int, fill: bool):
    if _np is not None:
        return _np.full(n, fill, dtype=bool)
    return [fill] * n


class Fleet:
    """N lanes of one machine, stepped together.

    Parameters
    ----------
    program:
        A :class:`TableProgram` (or a :class:`StateMachine`, compiled on
        the spot with *semantics*).
    n_lanes:
        Fleet width.
    externals:
        Mapping of external operation names to callables, shared by all
        lanes (callables take the call's integer arguments; lane order
        within one batch is ascending, so side effects are
        deterministic).  Mapping any external disables the vectorized
        skip of call-bearing routes.
    trace:
        Keep a per-lane :class:`~repro.semantics.trace.Trace`.  Forces
        the scalar path for every lane (records are per-lane), so turn
        it on only for conformance-sized fleets.
    step_budget:
        Per-lane lifetime budget of transition firings, mirroring the
        interpreter's run-to-completion step budget (its counter ticks
        at least as fast as this one, so a scenario the interpreter
        survives never trips the fleet).  ``None`` removes the guard —
        for long throughput streams; unguarded completion cycles then
        spin forever, exactly as a generated runtime would.
    """

    def __init__(self, program, n_lanes: int, *,
                 externals: Optional[Mapping[str, Callable]] = None,
                 trace: bool = False,
                 semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                 step_budget: Optional[int] = -1) -> None:
        if isinstance(program, StateMachine):
            program = compile_table(program, semantics)
        if n_lanes < 1:
            raise ValueError("a fleet needs at least one lane")
        self.program: TableProgram = program
        self.n = int(n_lanes)
        self.externals: Dict[str, Callable] = dict(externals or {})
        if step_budget == -1:
            step_budget = program.semantics.max_run_to_completion_steps
        self.step_budget = step_budget
        self.stats = FleetStats()
        self._started = False
        #: calls are observable per lane: the fast path must not skip
        #: call-bearing static routes.
        self._calls_observable = bool(self.externals) or trace
        self.V = [_int_bank(self.n, default)
                  for default in program.attr_defaults]
        self.config = _config_bank(self.n, FINAL_CONFIG)
        self.consumed = _bool_bank(self.n, False)
        self._steps = _int_bank(self.n, 0)
        self._pending: Dict[int, deque] = {}
        self._traces: Optional[List[Trace]] = (
            [Trace() for _ in range(self.n)] if trace else None)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    @property
    def is_started(self) -> bool:
        return self._started

    def trace_of(self, lane: int) -> Trace:
        if self._traces is None:
            raise FleetExecutionError(
                "fleet was built without tracing (pass trace=True)")
        return self._traces[lane]

    def lane_in_final(self, lane: int) -> bool:
        return int(self.config[lane]) == FINAL_CONFIG

    def finals(self) -> int:
        """Number of lanes whose top region completed."""
        if _np is not None:
            return int((self.config == FINAL_CONFIG).sum())
        return sum(1 for c in self.config if c == FINAL_CONFIG)

    def attribute(self, lane: int, name: str) -> int:
        return int(self.V[self.program.attr_index[name]][lane])

    def attributes_of(self, lane: int) -> Dict[str, int]:
        return {name: int(self.V[i][lane])
                for i, name in enumerate(self.program.attr_names)}

    def config_name(self, lane: int) -> str:
        return self.program.config_names[int(self.config[lane])]

    def current_state(self, lane: int) -> Optional[str]:
        """Innermost active state name (None once in final)."""
        leaf = self.program.leaves[int(self.config[lane])]
        return leaf.name if leaf is not None else None

    def active_states(self, lane: int) -> List[str]:
        """Active state names, outermost first (interpreter order)."""
        leaf = self.program.leaves[int(self.config[lane])]
        if leaf is None:
            return []
        path = [leaf.name]
        path.extend(s.name for s in leaf.ancestors())
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Fleet":
        """Run every lane's initial transition to completion.

        All lanes are identical at boot, so without per-lane observers
        (traces, externals) the start program runs once on lane 0 and
        the result is broadcast."""
        if self._started:
            raise FleetExecutionError("fleet already started")
        self._started = True
        start = self.program.start
        if start is None:   # pragma: no cover - compile_table always sets it
            raise FleetExecutionError("table has no start program")
        if not self._calls_observable and self.n > 1:
            self._start_lane(0)
            for bank in self.V:
                if _np is not None:
                    bank[1:] = bank[0]
                else:
                    bank[1:] = [bank[0]] * (self.n - 1)
            first_cfg = self.config[0]
            first_consumed = self.consumed[0]
            first_steps = self._steps[0]
            if _np is not None:
                self.config[1:] = first_cfg
                self.consumed[1:] = first_consumed
                self._steps[1:] = first_steps
            else:
                self.config[1:] = [first_cfg] * (self.n - 1)
                self.consumed[1:] = [first_consumed] * (self.n - 1)
                self._steps[1:] = [first_steps] * (self.n - 1)
            leftovers = self._pending.get(0)
            if leftovers:
                for lane in range(1, self.n):
                    self._pending[lane] = deque(leftovers)
        else:
            for lane in range(self.n):
                self._start_lane(lane)
        return self

    def _start_lane(self, lane: int) -> None:
        start = self.program.start
        try:
            for op in start.ops:
                op(self, lane)
            self.config[lane] = start.end
            self._settle(lane)
        except OverflowError as exc:   # int64 bank overflow
            raise FleetExecutionError(
                f"lane {lane}: attribute value out of 64-bit range "
                f"({exc})") from exc

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch_all(self, event: object) -> "Fleet":
        """Route one event to every lane and run each to completion."""
        if not self._started:
            raise FleetExecutionError("dispatch before start()")
        name = getattr(event, "name", None) or str(event)
        col = self.program.column_of(name)
        self.stats.batches += 1
        if self._traces is not None or _np is None:
            # Per-lane observers (or no numpy): scalar everywhere.
            for lane in range(self.n):
                self._rtc(lane, col, name)
            self.stats.scalar_lane_events += self.n
            return self

        snap = self.config.copy()   # group before any lane moves
        pend_lanes = sorted(self._pending) if self._pending else ()
        pend_mask = None
        if pend_lanes:
            pend_mask = _np.zeros(self.n, dtype=bool)
            pend_mask[_np.array(pend_lanes, dtype=_np.int64)] = True
        cells = self.program.cells
        for c in _np.unique(snap):
            cell = cells[int(c)][col]
            mask = snap == c
            if pend_mask is not None:
                mask &= ~pend_mask
            if cell.empty:
                # Nobody can consume the event: vectorized discard.
                self.stats.fast_lane_events += int(mask.sum())
                continue
            if cell.static_end is not None and \
                    not (cell.static_has_call and self._calls_observable):
                lanes = int(mask.sum())
                self.config[mask] = cell.static_end
                if cell.static_consumed is not None:
                    self.consumed[mask] = cell.static_consumed
                self.stats.fast_lane_events += lanes
                self.stats.fired += lanes
            else:
                for lane in _np.nonzero(mask)[0]:
                    self._rtc(int(lane), col, name)
                    self.stats.scalar_lane_events += 1
        for lane in pend_lanes:
            self._rtc(lane, col, name)
            self.stats.scalar_lane_events += 1
        return self

    def dispatch_lane(self, lane: int, event: object) -> "Fleet":
        """Route one event to one lane (conformance / adapter use)."""
        if not self._started:
            raise FleetExecutionError("dispatch before start()")
        name = getattr(event, "name", None) or str(event)
        self._rtc(lane, self.program.column_of(name), name)
        self.stats.batches += 1
        self.stats.scalar_lane_events += 1
        return self

    def run_stream(self, events: Sequence[object]) -> "Fleet":
        for event in events:
            self.dispatch_all(event)
        return self

    # ------------------------------------------------------------------
    # scalar run-to-completion (the reference-faithful path)
    # ------------------------------------------------------------------
    def _rtc(self, lane: int, col: int, name: str) -> None:
        q = self._pending.get(lane)
        if q is None:
            q = deque()
            self._pending[lane] = q
        q.append((col, name))
        if len(q) > self.stats.max_pool_depth:
            self.stats.max_pool_depth = len(q)
        try:
            while q:
                c, n = q.popleft()
                self._dispatch_lane_event(lane, c, n)
        except OverflowError as exc:   # int64 bank overflow
            raise FleetExecutionError(
                f"lane {lane}: attribute value out of 64-bit range "
                f"({exc})") from exc
        finally:
            if not q:
                del self._pending[lane]

    def _dispatch_lane_event(self, lane: int, col: int, name: str) -> None:
        trace = self._traces[lane] if self._traces is not None else None
        if trace is not None:
            trace.append(TraceKind.EVENT_DISPATCH, name)
        cell = self.program.cells[int(self.config[lane])][col]
        for cand in cell.candidates:
            if cand.guard is None or cand.guard(self, lane):
                self._fire(lane, cand.program, trace)
                self._settle(lane)
                return
        if trace is not None:
            trace.append(TraceKind.EVENT_DROPPED, name, "discarded")

    def _fire(self, lane: int, program, trace: Optional[Trace]) -> None:
        self._budget(lane)
        if trace is not None:
            trace.append(TraceKind.TRANSITION, program.desc)
        for op in program.ops:
            op(self, lane)
        self.config[lane] = program.end
        if not program.internal:
            self.consumed[lane] = False
        self.stats.fired += 1

    def _settle(self, lane: int) -> None:
        """Completion-priority drain: dispatch the (single possible)
        ripe completion until the lane is stable."""
        trace = self._traces[lane] if self._traces is not None else None
        while True:
            cfg = int(self.config[lane])
            cell = self.program.completion[cfg]
            if cell is None or self.consumed[lane]:
                return
            self.consumed[lane] = True
            if trace is not None:
                leaf = self.program.leaves[cfg]
                trace.append(TraceKind.EVENT_DISPATCH,
                             f"__completion__({leaf.name})")
            for cand in cell.candidates:
                if cand.guard is None or cand.guard(self, lane):
                    self._fire(lane, cand.program, trace)
                    break

    def _budget(self, lane: int) -> None:
        if self.step_budget is None:
            return
        steps = self._steps[lane] + 1
        self._steps[lane] = steps
        if steps > self.step_budget:
            raise FleetExecutionError(
                f"lane {lane}: run-to-completion step budget exceeded "
                f"({self.step_budget}); the model likely has an "
                "unguarded completion cycle")

    # ------------------------------------------------------------------
    # hooks for compiled closures (see table._ExprCompiler)
    # ------------------------------------------------------------------
    def call(self, lane: int, name: str, args: Tuple) -> int:
        int_args = tuple(int(a) for a in args)
        if self._traces is not None:
            self._traces[lane].append(TraceKind.CALL, name, int_args)
        fn = self.externals.get(name)
        if fn is None:
            return 0
        result = fn(*int_args)
        return 0 if result is None else int(result)

    def emit(self, lane: int, col: int, name: str) -> None:
        if self._traces is not None:
            self._traces[lane].append(TraceKind.EMIT, name)
        q = self._pending.get(lane)
        if q is None:   # pragma: no cover - emits happen mid-RTC
            q = deque()
            self._pending[lane] = q
        q.append((col, name))
        if len(q) > self.stats.max_pool_depth:
            self.stats.max_pool_depth = len(q)

    def t_assign(self, lane: int, name: str, value: int) -> None:
        if self._traces is not None:
            self._traces[lane].append(TraceKind.ASSIGN, name, value)

    def t_enter(self, lane: int, name: str) -> None:
        if self._traces is not None:
            self._traces[lane].append(TraceKind.STATE_ENTER, name)

    def t_exit(self, lane: int, name: str) -> None:
        if self._traces is not None:
            self._traces[lane].append(TraceKind.STATE_EXIT, name)

    def t_completed(self, lane: int, label: str) -> None:
        if self._traces is not None:
            self._traces[lane].append(TraceKind.COMPLETED, label)
