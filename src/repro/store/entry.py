"""On-disk entry codec: self-describing, self-verifying artifact files.

One entry file holds one cached artifact::

    repro-store1 {"key": ..., "schema": ..., "sha256": ..., "size": N}\\n
    <N bytes of pickled payload>

The first line is the *header*: a magic token naming the entry format
generation, then a JSON object carrying the cache key the entry was
written under, the serialization schema stamp of the writing code
(:func:`repro.schema.schema_stamp`), and the SHA-256 + length of the
payload bytes that follow.

:func:`decode_entry` re-derives everything the header claims and raises
on any mismatch:

* :class:`SchemaMismatchError` — the entry was written by a different
  repro serialization generation (or a different entry format); its
  payload would unpickle into stale objects, so it must be dropped;
* :class:`CorruptEntryError` — truncation, bit rot, a key collision, or
  an unparseable header; the bytes cannot be trusted.

Both are :class:`EntryError`\\ s; the store maps any of them to a cache
miss and deletes the file (corrupted-entry recovery).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from typing import Any, Optional

from ..schema import schema_stamp

__all__ = ["ENTRY_MAGIC", "EntryError", "CorruptEntryError",
           "SchemaMismatchError", "encode_entry", "decode_entry"]

#: Format generation of the entry file layout itself (header + payload).
#: Distinct from the payload schema stamp: this names *how* the file is
#: framed, the stamp names *what* the payload deserializes to.
ENTRY_MAGIC = b"repro-store1"

_HASH = "sha256"


class EntryError(Exception):
    """An on-disk entry could not be decoded; treat it as a miss."""


class CorruptEntryError(EntryError):
    """Truncated, bit-rotted, mis-keyed or unparseable entry bytes."""


class SchemaMismatchError(EntryError):
    """Entry written by a different repro serialization generation."""


def _payload_digest(payload: bytes) -> str:
    return hashlib.new(_HASH, payload).hexdigest()


def encode_entry(key: str, value: Any) -> bytes:
    """Serialize *value* into a self-verifying entry file body."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps({
        "key": key,
        "schema": schema_stamp(),
        _HASH: _payload_digest(payload),
        "size": len(payload),
    }, sort_keys=True, separators=(",", ":"))
    return b"%s %s\n%s" % (ENTRY_MAGIC, header.encode("ascii"), payload)


def decode_entry(key: str, data: bytes,
                 expected_schema: Optional[str] = None) -> Any:
    """Verify and deserialize an entry file body written for *key*.

    The payload is re-hashed against the header digest and the header's
    schema stamp is compared to the running code's
    (*expected_schema* overrides the latter — tests use this).  Raises
    :class:`EntryError` subclasses on any inconsistency.
    """
    magic, sep, rest = data.partition(b" ")
    if not sep or magic != ENTRY_MAGIC:
        raise SchemaMismatchError(
            f"entry magic {magic[:32]!r} != {ENTRY_MAGIC!r}")
    header_line, sep, payload = rest.partition(b"\n")
    if not sep:
        raise CorruptEntryError("entry has no header/payload separator")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise CorruptEntryError(f"unparseable entry header: {exc}") from exc
    if not isinstance(header, dict):
        raise CorruptEntryError("entry header is not an object")
    stamp = expected_schema if expected_schema is not None \
        else schema_stamp()
    if header.get("schema") != stamp:
        raise SchemaMismatchError(
            f"entry schema {header.get('schema')!r} != running {stamp!r}")
    if header.get("key") != key:
        raise CorruptEntryError(
            f"entry key {header.get('key')!r} != requested {key!r}")
    if header.get("size") != len(payload):
        raise CorruptEntryError(
            f"payload is {len(payload)} bytes, header claims "
            f"{header.get('size')!r} (truncated write?)")
    if header.get(_HASH) != _payload_digest(payload):
        raise CorruptEntryError("payload digest mismatch (bit rot?)")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # unpicklable despite intact digest
        raise CorruptEntryError(f"payload does not unpickle: {exc}") from exc
