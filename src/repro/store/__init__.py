"""Persistent, content-addressed artifact store.

The experiment engine's cache keys (:mod:`repro.engine.fingerprint`)
are stable across processes, so the results they address can outlive a
process: this package stores them on disk, content-addressed by
fingerprint, so every CLI invocation, CI job and service worker that
shares a ``--cache-dir`` shares one warm cache.

* :mod:`~repro.store.entry` — the on-disk entry codec: a JSON header
  (schema stamp, key, payload digest) followed by the pickled payload;
  any mismatch — truncation, bit rot, a stale schema generation —
  raises and the entry is treated as a miss;
* :mod:`~repro.store.artifact` — :class:`ArtifactStore`: two-level
  sharded object directories, atomic write-rename publication
  (``O_EXCL`` temp files, lockless reads), LRU metadata via entry
  mtimes, a ``gc(max_bytes)`` sweep, and corrupted-entry recovery;
* :mod:`~repro.store.sharding` — :class:`HashRing`, the consistent-hash
  assignment of fingerprints to store shards the compile cluster's
  :class:`~repro.engine.backends.ShardedBackend` routes through.

Safe for concurrent use from multiple processes: writers never publish
partial files, readers never block writers, and duplicate writers of
one key converge on equivalent content.
"""

from .artifact import ArtifactStore, GcReport, StoreStats
from .entry import (ENTRY_MAGIC, CorruptEntryError, EntryError,
                    SchemaMismatchError, decode_entry, encode_entry)
from .sharding import HashRing

__all__ = [
    "ArtifactStore", "GcReport", "StoreStats", "HashRing",
    "ENTRY_MAGIC", "EntryError", "CorruptEntryError",
    "SchemaMismatchError", "encode_entry", "decode_entry",
]
