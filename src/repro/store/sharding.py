"""Consistent-hash ring: stable assignment of keys to store shards.

A cluster spreads engine fingerprints over N :class:`ArtifactStore`
shards.  Naive modulo hashing (``hash(key) % N``) reassigns nearly
every key when N changes; a consistent-hash ring reassigns only the
keys that land on the touched shard — on average ``1/N`` of the key
space — so growing or shrinking a warm store farm keeps almost all of
it warm.

Each node contributes *replicas* points to the ring (the classic
virtual-node trick, which evens out the per-node share); a key is
owned by the first point clockwise from its own hash.  Two exact
guarantees fall out of the construction, and the property tests assert
both:

* **removal** — keys not owned by the removed node keep their owner;
* **addition** — a key either keeps its owner or moves to the new
  node; it never migrates between surviving nodes.

The ring is immutable; "add/remove a shard" is building a new ring
over the new node set.  Hashes are SHA-256 (the repo-wide fingerprint
hash), so assignment is stable across processes and Python versions —
no dependence on ``hash()`` randomization.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

__all__ = ["HashRing"]


def _point(data: str) -> int:
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of node names."""

    def __init__(self, nodes: Iterable[str], replicas: int = 64) -> None:
        self.nodes: Tuple[str, ...] = tuple(sorted(set(nodes)))
        if not self.nodes:
            raise ValueError("a hash ring needs at least one node")
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for i in range(self.replicas):
                # Tie-break collisions by node name (the sort below):
                # identical point sets must resolve identically no
                # matter the construction order.
                points.append((_point(f"{node}#{i}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def lookup(self, key: str) -> str:
        """The node owning *key* (first ring point clockwise)."""
        h = _point(key)
        index = bisect.bisect_right(self._hashes, h)
        if index == len(self._hashes):
            index = 0                    # wrap: the ring is a circle
        return self._owners[index]

    def with_node(self, node: str) -> "HashRing":
        """A new ring with *node* added."""
        return HashRing(self.nodes + (node,), replicas=self.replicas)

    def without_node(self, node: str) -> "HashRing":
        """A new ring with *node* removed."""
        remaining = tuple(n for n in self.nodes if n != node)
        return HashRing(remaining, replicas=self.replicas)

    def assignment(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: owning node}`` for every key in *keys*."""
        return {key: self.lookup(key) for key in keys}

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (f"HashRing(nodes={list(self.nodes)!r}, "
                f"replicas={self.replicas})")
