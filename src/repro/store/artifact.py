""":class:`ArtifactStore` — the on-disk half of the compile cache.

Layout (all under one *root* directory, safe to share between
processes)::

    root/
      objects/ab/cdef0123...   one entry file per key (two-level shard
                               by the first byte of the key address)
      tmp/                     O_EXCL scratch files, renamed into place

Concurrency model — the classic content-addressed-store discipline:

* **writers** serialize into a fresh ``O_EXCL`` temp file and publish
  with ``os.replace`` — atomic on POSIX, so readers observe either the
  old entry, the new entry, or no entry, never a partial file;
* **readers** take no locks: they read whole files and verify the
  embedded digest (:mod:`repro.store.entry`), so a reader that loses a
  race with a writer still gets a consistent artifact;
* duplicate writers of one key are harmless: both hold equivalent
  content (keys are content fingerprints) and the last rename wins.

Eviction is LRU over entry **mtimes**: every verified read touches the
entry, ``gc(max_bytes)`` drops the least-recently-used entries until
the store fits the budget.  Any entry that fails verification — stale
schema generation, truncation, bit rot — is deleted on sight and
reported as a miss (corrupted-entry recovery).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

from ..obs.trace import span as _span
from .entry import EntryError, decode_entry, encode_entry

__all__ = ["ArtifactStore", "StoreStats", "GcReport", "FsckReport"]

#: Stray temp files older than this are reaped by ``gc``/``fsck`` —
#: generous enough that no live writer is ever this old.
_TMP_MAX_AGE_SECONDS = 3600.0


@dataclass
class StoreStats:
    """Best-effort per-process counters of one store handle."""

    reads: int = 0
    read_hits: int = 0
    writes: int = 0
    corrupt_dropped: int = 0
    evicted: int = 0

    @property
    def read_misses(self) -> int:
        return self.reads - self.read_hits

    def summary(self) -> str:
        return (f"store: {self.read_hits}/{self.reads} reads served, "
                f"{self.writes} writes, {self.corrupt_dropped} corrupt "
                f"dropped, {self.evicted} evicted")


@dataclass
class GcReport:
    """Outcome of one ``gc`` sweep."""

    scanned: int = 0
    dropped: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    def summary(self) -> str:
        return (f"gc: {self.dropped}/{self.scanned} entries dropped "
                f"({self.bytes_before} -> {self.bytes_after} bytes)")


@dataclass
class FsckReport:
    """Outcome of one full-store verification pass."""

    checked: int = 0
    dropped: int = 0
    dropped_paths: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.dropped == 0


class ArtifactStore:
    """Content-addressed artifact files under *root*.

    *max_bytes*, when given, bounds the store: every :meth:`put` that
    pushes the total past the budget triggers an LRU :meth:`gc` sweep.
    Keys are arbitrary strings (the engine passes fingerprint digests);
    the file address is the SHA-256 of the key, so hostile or oversized
    keys cannot escape the object directory.
    """

    def __init__(self, root: "os.PathLike[str] | str",
                 max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)
        #: Running estimate of entry bytes, so a bounded put is O(1)
        #: instead of rescanning the tree; None until first needed.
        #: Drifts when other processes write — gc() rescans and resyncs.
        self._approx_bytes: Optional[int] = None

    # -- addressing ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Entry file of *key* (whether or not it exists)."""
        address = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self._objects / address[:2] / address[2:]

    # -- primitives ---------------------------------------------------------

    def load(self, key: str) -> Any:
        """Verified value of *key*; :class:`KeyError` on miss.

        A present-but-invalid entry (stale schema, corruption) is
        deleted and reported as a miss.  A verified read refreshes the
        entry's LRU position.
        """
        sp = _span("store.read")
        with sp:
            self.stats.reads += 1
            path = self.path_for(key)
            try:
                data = path.read_bytes()
            except OSError:
                if sp.recording:
                    sp.set(outcome="miss")
                raise KeyError(key) from None
            try:
                value = decode_entry(key, data)
            except EntryError:
                self._drop(path)
                self.stats.corrupt_dropped += 1
                if sp.recording:
                    sp.set(outcome="corrupt")
                raise KeyError(key) from None
            try:
                os.utime(path)          # LRU touch; entry may be racing gc
            except OSError:
                pass
            self.stats.read_hits += 1
            if sp.recording:
                sp.set(outcome="hit", bytes=len(data))
            return value

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self.load(key)
        except KeyError:
            return default

    def put(self, key: str, value: Any) -> None:
        """Publish *value* under *key* (atomic, last writer wins)."""
        sp = _span("store.write")
        with sp:
            data = encode_entry(key, value)
            if sp.recording:
                sp.set(bytes=len(data))
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            replaced = 0
            if self.max_bytes is not None:
                try:
                    replaced = path.stat().st_size   # overwrite, not growth
                except OSError:
                    pass
            fd, tmp_name = tempfile.mkstemp(dir=self._tmp, prefix="put-")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
            if self.max_bytes is not None:
                if self._approx_bytes is None:
                    self._approx_bytes = self.total_bytes()
                else:
                    self._approx_bytes += len(data) - replaced
                if self._approx_bytes > self.max_bytes:
                    self.gc()

    def __contains__(self, key: str) -> bool:
        """Fast presence probe (no integrity verification)."""
        return self.path_for(key).exists()

    # -- enumeration --------------------------------------------------------

    def _entry_paths(self) -> Iterator[Path]:
        for shard in sorted(self._objects.iterdir()):
            if shard.is_dir():
                yield from sorted(p for p in shard.iterdir() if p.is_file())

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def total_bytes(self) -> int:
        """Bytes currently held by entry files."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def keys(self) -> List[str]:
        """Keys of every decodable entry header (unverified payloads)."""
        found = []
        for path in self._entry_paths():
            key = self._header_key(path)
            if key is not None:
                found.append(key)
        return sorted(found)

    @staticmethod
    def _key_of_header_line(line: bytes) -> Optional[str]:
        try:
            _, _, header = line.partition(b" ")
            key = json.loads(header).get("key")
        except (ValueError, AttributeError):
            return None
        return key if isinstance(key, str) else None

    @classmethod
    def _header_key(cls, path: Path) -> Optional[str]:
        # readline() is unbounded: the header line ends at the first
        # newline, and keys are arbitrary strings, so a fixed cap would
        # misread (and fsck would then wrongly condemn) long-key entries.
        try:
            with open(path, "rb") as fh:
                line = fh.readline()
        except OSError:
            return None
        return cls._key_of_header_line(line)

    # -- maintenance --------------------------------------------------------

    def _drop(self, path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _reap_stale_tmp(self) -> None:
        cutoff = time.time() - _TMP_MAX_AGE_SECONDS
        try:
            stray = list(self._tmp.iterdir())
        except OSError:
            return
        for path in stray:
            try:
                if path.stat().st_mtime < cutoff:
                    os.unlink(path)
            except OSError:
                pass

    def gc(self, max_bytes: Optional[int] = None) -> GcReport:
        """LRU sweep: drop oldest-read entries until under *max_bytes*
        (default: the store's configured budget; 0 empties the store)."""
        sp = _span("store.gc")
        with sp:
            budget = self.max_bytes if max_bytes is None else max_bytes
            self._reap_stale_tmp()
            entries: List[Tuple[float, int, Path]] = []
            for path in self._entry_paths():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
            report = GcReport(scanned=len(entries),
                              bytes_before=sum(e[1] for e in entries))
            report.bytes_after = report.bytes_before
            if budget is None:
                return report
            entries.sort(key=lambda e: (e[0], e[2].name))
            for mtime, size, path in entries:
                if report.bytes_after <= budget:
                    break
                self._drop(path)
                report.dropped += 1
                report.bytes_after -= size
            self.stats.evicted += report.dropped
            self._approx_bytes = report.bytes_after   # resync the estimate
            if sp.recording:
                sp.set(scanned=report.scanned, dropped=report.dropped,
                       bytes_after=report.bytes_after)
            return report

    def fsck(self) -> FsckReport:
        """Verify every entry end to end; drop (and report) the bad."""
        self._reap_stale_tmp()
        report = FsckReport()
        for path in self._entry_paths():
            try:
                data = path.read_bytes()
                key = self._key_of_header_line(data.split(b"\n", 1)[0])
                decode_entry(key if key is not None else "", data)
            except (OSError, EntryError):
                self._drop(path)
                report.dropped += 1
                report.dropped_paths.append(str(path))
                continue
            report.checked += 1
        return report

    def clear(self) -> None:
        """Drop every entry and scratch file (the root dirs remain)."""
        for path in self._entry_paths():
            self._drop(path)
        try:
            for path in self._tmp.iterdir():
                self._drop(path)
        except OSError:
            pass
        self._approx_bytes = 0

    def describe(self) -> str:
        return (f"ArtifactStore({self.root}, entries={len(self)}, "
                f"bytes={self.total_bytes()}"
                + (f", max_bytes={self.max_bytes}" if self.max_bytes
                   is not None else "") + ")")
