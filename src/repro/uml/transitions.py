"""Transitions of the UML state machine subset."""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

from .actions import Behavior, Expr
from .elements import ModelError, NamedElement
from .events import CompletionEvent, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker
    from .statemachine import Vertex

__all__ = ["Transition", "TransitionKind"]


class TransitionKind(enum.Enum):
    """UML transition kinds.

    * ``EXTERNAL`` — exits the source (and possibly more), the default;
    * ``INTERNAL`` — no exit/entry, source must equal target (a State);
    * ``LOCAL``    — within a composite state, does not exit it.
    """

    EXTERNAL = "external"
    INTERNAL = "internal"
    LOCAL = "local"


class Transition(NamedElement):
    """A transition between two vertices.

    A transition with an empty ``triggers`` list whose source is a State is
    a *completion transition*: it is dispatched on the source state's
    implicit completion event and — per UML semantics — takes priority over
    every event-triggered transition from the same state.  This priority is
    exactly what makes the composite state in the paper's Figure 1 (second
    row) dead code at the model level.
    """

    def __init__(self, source: "Vertex", target: "Vertex",
                 triggers: Optional[List[Event]] = None,
                 guard: Optional[Expr] = None,
                 effect: Optional[Behavior] = None,
                 kind: TransitionKind = TransitionKind.EXTERNAL,
                 name: str = "") -> None:
        super().__init__(name)
        if source is None or target is None:
            raise ModelError("transition requires both a source and a target")
        self.source = source
        self.target = target
        self.triggers: List[Event] = list(triggers or [])
        self.guard: Optional[Expr] = guard
        self.effect: Behavior = effect or Behavior()
        self.kind = kind
        for trig in self.triggers:
            if isinstance(trig, CompletionEvent):
                raise ModelError(
                    "completion events may not be used as explicit triggers; "
                    "leave the trigger list empty instead")
        if kind is TransitionKind.INTERNAL and source is not target:
            raise ModelError("internal transitions must have source == target")

    # -- classification ------------------------------------------------
    @property
    def is_completion(self) -> bool:
        """True if this is a completion transition (no explicit trigger)."""
        from .statemachine import State  # local import: cycle breaker
        return not self.triggers and isinstance(self.source, State)

    @property
    def is_guarded(self) -> bool:
        return self.guard is not None

    @property
    def is_internal(self) -> bool:
        return self.kind is TransitionKind.INTERNAL

    def trigger_keys(self) -> List[str]:
        """Dispatch keys of the explicit triggers (empty for completion)."""
        return [t.key() for t in self.triggers]

    def describe(self) -> str:
        """Human-readable ``src -[trigger/guard]-> dst`` description."""
        trig = ",".join(t.name for t in self.triggers) if self.triggers else "ε"
        guard = " [guarded]" if self.guard is not None else ""
        return f"{self.source.label} -{trig}{guard}-> {self.target.label}"
