"""JSON serialization of state machines ("XMI-lite").

The paper's tooling exchanges models as Papyrus XMI files.  For the
reproduction a compact JSON document serves the same purpose: it lets the
optimizer framework snapshot/restore models, enables golden-file tests,
and gives examples a portable artifact format.  The format round-trips
everything the metamodel carries: hierarchy, pseudostates, triggers,
guards (as expression trees), behaviors, context attributes/operations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .actions import (Assign, Behavior, BinOp, BoolLit, CallExpr, CallStmt,
                      EmitStmt, Expr, IntLit, Stmt, UnaryOp, VarRef)
from .elements import ModelError
from .events import (AnyEvent, CallEvent, Event, SignalEvent, TimeEvent)
from .statemachine import (ContextClass, FinalState, Pseudostate,
                           PseudostateKind, Region, State, StateMachine,
                           Vertex)
from .transitions import Transition, TransitionKind

__all__ = ["machine_to_dict", "machine_from_dict", "dumps_machine",
           "loads_machine", "save_machine", "load_machine"]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# expressions / statements
# ---------------------------------------------------------------------------

def expr_to_dict(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, IntLit):
        return {"k": "int", "v": expr.value}
    if isinstance(expr, BoolLit):
        return {"k": "bool", "v": expr.value}
    if isinstance(expr, VarRef):
        return {"k": "var", "name": expr.name}
    if isinstance(expr, UnaryOp):
        return {"k": "un", "op": expr.op, "e": expr_to_dict(expr.operand)}
    if isinstance(expr, BinOp):
        return {"k": "bin", "op": expr.op,
                "l": expr_to_dict(expr.lhs), "r": expr_to_dict(expr.rhs)}
    if isinstance(expr, CallExpr):
        return {"k": "call", "f": expr.func,
                "args": [expr_to_dict(a) for a in expr.args]}
    raise ModelError(f"unserializable expression {expr!r}")


def expr_from_dict(data: Dict[str, Any]) -> Expr:
    kind = data["k"]
    if kind == "int":
        return IntLit(data["v"])
    if kind == "bool":
        return BoolLit(data["v"])
    if kind == "var":
        return VarRef(data["name"])
    if kind == "un":
        return UnaryOp(data["op"], expr_from_dict(data["e"]))
    if kind == "bin":
        return BinOp(data["op"], expr_from_dict(data["l"]),
                     expr_from_dict(data["r"]))
    if kind == "call":
        return CallExpr(data["f"], tuple(expr_from_dict(a) for a in data["args"]))
    raise ModelError(f"unknown expression kind {kind!r}")


def _stmt_to_dict(stmt: Stmt) -> Dict[str, Any]:
    if isinstance(stmt, Assign):
        return {"k": "assign", "t": stmt.target, "v": expr_to_dict(stmt.value)}
    if isinstance(stmt, CallStmt):
        return {"k": "call", "c": expr_to_dict(stmt.call)}
    if isinstance(stmt, EmitStmt):
        return {"k": "emit", "ev": stmt.event_name}
    raise ModelError(f"unserializable statement {stmt!r}")


def _stmt_from_dict(data: Dict[str, Any]) -> Stmt:
    kind = data["k"]
    if kind == "assign":
        return Assign(data["t"], expr_from_dict(data["v"]))
    if kind == "call":
        call = expr_from_dict(data["c"])
        if not isinstance(call, CallExpr):
            raise ModelError("call statement must wrap a call expression")
        return CallStmt(call)
    if kind == "emit":
        return EmitStmt(data["ev"])
    raise ModelError(f"unknown statement kind {kind!r}")


def _behavior_to_dict(behavior: Behavior) -> Optional[Dict[str, Any]]:
    if not behavior:
        return None
    return {"name": behavior.name,
            "stmts": [_stmt_to_dict(s) for s in behavior.statements]}


def _behavior_from_dict(data: Optional[Dict[str, Any]]) -> Behavior:
    if data is None:
        return Behavior()
    return Behavior(name=data.get("name", ""),
                    statements=tuple(_stmt_from_dict(s) for s in data["stmts"]))


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------

_EVENT_KINDS = {"signal": SignalEvent, "call": CallEvent}


def _event_to_dict(event: Event) -> Dict[str, Any]:
    if isinstance(event, TimeEvent):
        return {"kind": "time", "name": event.name,
                "duration_ms": event.duration_ms}
    if isinstance(event, AnyEvent):
        return {"kind": "any", "name": event.name}
    if isinstance(event, CallEvent):
        return {"kind": "call", "name": event.name}
    if isinstance(event, SignalEvent):
        return {"kind": "signal", "name": event.name}
    raise ModelError(f"unserializable event {event!r}")


def _event_from_dict(data: Dict[str, Any]) -> Event:
    kind = data["kind"]
    if kind == "time":
        return TimeEvent(name=data["name"], duration_ms=data["duration_ms"])
    if kind == "any":
        return AnyEvent()
    if kind in _EVENT_KINDS:
        return _EVENT_KINDS[kind](data["name"])
    raise ModelError(f"unknown event kind {kind!r}")


# ---------------------------------------------------------------------------
# vertices / regions / machine
# ---------------------------------------------------------------------------

def _vertex_to_dict(vertex: Vertex) -> Dict[str, Any]:
    if isinstance(vertex, State):
        return {
            "kind": "state",
            "name": vertex.name,
            "entry": _behavior_to_dict(vertex.entry),
            "exit": _behavior_to_dict(vertex.exit),
            "do": _behavior_to_dict(vertex.do_activity),
            "regions": [_region_to_dict(r) for r in vertex.regions],
        }
    if isinstance(vertex, FinalState):
        return {"kind": "final", "name": vertex.name}
    if isinstance(vertex, Pseudostate):
        return {"kind": "pseudo", "name": vertex.name,
                "pkind": vertex.kind.value}
    raise ModelError(f"unserializable vertex {vertex!r}")


def _vertex_from_dict(data: Dict[str, Any]) -> Vertex:
    kind = data["kind"]
    if kind == "state":
        state = State(data["name"],
                      entry=_behavior_from_dict(data.get("entry")),
                      exit=_behavior_from_dict(data.get("exit")),
                      do_activity=_behavior_from_dict(data.get("do")))
        for region_data in data.get("regions", []):
            state.add_region(_region_from_dict(region_data))
        return state
    if kind == "final":
        return FinalState(data["name"])
    if kind == "pseudo":
        return Pseudostate(PseudostateKind(data["pkind"]), data["name"])
    raise ModelError(f"unknown vertex kind {kind!r}")


def _vertex_path(vertex: Vertex, machine: StateMachine) -> str:
    """Stable path of a vertex: region indices + vertex index."""
    indices: List[str] = []
    node: Any = vertex
    while node is not machine:
        owner = node.owner
        if isinstance(node, Vertex):
            indices.append(str(owner.vertices.index(node)))
        elif isinstance(node, Region):
            if isinstance(owner, State):
                indices.append("r" + str(owner.regions.index(node)))
            else:
                indices.append("R" + str(owner.regions.index(node)))
        node = owner
    return "/".join(reversed(indices))


def _resolve_path(path: str, machine: StateMachine) -> Vertex:
    node: Any = machine
    for part in path.split("/"):
        if part.startswith("R"):
            node = node.regions[int(part[1:])]
        elif part.startswith("r"):
            node = node.regions[int(part[1:])]
        else:
            node = node.vertices[int(part)]
    if not isinstance(node, Vertex):
        raise ModelError(f"path {path!r} does not resolve to a vertex")
    return node


def _region_to_dict(region: Region) -> Dict[str, Any]:
    return {
        "name": region.name,
        "vertices": [_vertex_to_dict(v) for v in region.vertices],
    }


def _region_from_dict(data: Dict[str, Any]) -> Region:
    region = Region(data["name"])
    for vdata in data["vertices"]:
        region.add_vertex(_vertex_from_dict(vdata))
    return region


def machine_to_dict(machine: StateMachine) -> Dict[str, Any]:
    """Serialize *machine* to a JSON-compatible dict."""
    transitions = []
    for region in machine.all_regions():
        for tr in region.transitions:
            transitions.append({
                "region": _region_path(region, machine),
                "name": tr.name,
                "source": _vertex_path(tr.source, machine),
                "target": _vertex_path(tr.target, machine),
                "triggers": [_event_to_dict(t) for t in tr.triggers],
                "guard": expr_to_dict(tr.guard) if tr.guard is not None else None,
                "effect": _behavior_to_dict(tr.effect),
                "kind": tr.kind.value,
            })
    return {
        "format": FORMAT_VERSION,
        "name": machine.name,
        "context": {
            "name": machine.context.name,
            "attributes": dict(machine.context.attributes),
            "operations": list(machine.context.operations),
        },
        "events": [_event_to_dict(e) for e in machine.events.values()],
        "regions": [_region_to_dict(r) for r in machine.regions],
        "transitions": transitions,
    }


def _region_path(region: Region, machine: StateMachine) -> str:
    indices: List[str] = []
    node: Any = region
    while node is not machine:
        owner = node.owner
        if isinstance(node, Region):
            if isinstance(owner, State):
                indices.append("r" + str(owner.regions.index(node)))
            else:
                indices.append("R" + str(owner.regions.index(node)))
        else:
            indices.append(str(owner.vertices.index(node)))
        node = owner
    return "/".join(reversed(indices))


def _resolve_region(path: str, machine: StateMachine) -> Region:
    node: Any = machine
    for part in path.split("/"):
        if part.startswith(("R", "r")):
            node = node.regions[int(part[1:])]
        else:
            node = node.vertices[int(part)]
    if not isinstance(node, Region):
        raise ModelError(f"path {path!r} does not resolve to a region")
    return node


def machine_from_dict(data: Dict[str, Any]) -> StateMachine:
    """Deserialize a machine produced by :func:`machine_to_dict`."""
    if data.get("format") != FORMAT_VERSION:
        raise ModelError(f"unsupported format version {data.get('format')!r}")
    context = ContextClass(data["context"]["name"])
    for attr, init in data["context"]["attributes"].items():
        context.attribute(attr, init)
    for op in data["context"]["operations"]:
        context.operation(op)
    machine = StateMachine(data["name"], context=context)
    for event_data in data["events"]:
        machine.declare_event(_event_from_dict(event_data))
    for region_data in data["regions"]:
        machine.add_region(_region_from_dict(region_data))
    for tdata in data["transitions"]:
        region = _resolve_region(tdata["region"], machine)
        triggers = []
        for trig_data in tdata["triggers"]:
            event = _event_from_dict(trig_data)
            triggers.append(machine.declare_event(event))
        tr = Transition(
            _resolve_path(tdata["source"], machine),
            _resolve_path(tdata["target"], machine),
            triggers=triggers,
            guard=(expr_from_dict(tdata["guard"])
                   if tdata["guard"] is not None else None),
            effect=_behavior_from_dict(tdata.get("effect")),
            kind=TransitionKind(tdata["kind"]),
            name=tdata.get("name", ""),
        )
        region.add_transition(tr)
    return machine


def dumps_machine(machine: StateMachine, indent: int = 2) -> str:
    """Serialize *machine* to a JSON string."""
    return json.dumps(machine_to_dict(machine), indent=indent, sort_keys=True)


def loads_machine(text: str) -> StateMachine:
    """Deserialize a machine from a JSON string."""
    return machine_from_dict(json.loads(text))


def save_machine(machine: StateMachine, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_machine(machine))


def load_machine(path: str) -> StateMachine:
    with open(path, "r", encoding="utf-8") as fh:
        return loads_machine(fh.read())
