"""A small action language for guards, effects and state behaviors.

UML leaves the concrete action language open; tools like Papyrus attach
"opaque" expressions/behaviors written in the target language.  For this
reproduction we define a tiny, well-typed language that

* the model interpreter (:mod:`repro.semantics.runtime`) can evaluate,
* the analyses (:mod:`repro.analysis`) can reason about (e.g. constant
  guards), and
* the code generators (:mod:`repro.codegen`) can translate into the C++
  subset consumed by the compiler substrate.

The language has integer and boolean expressions over named context
attributes, plus statements: assignment, external function calls (opaque
platform actions such as ``motor_start()``) and event emission to self.

Expressions are immutable value objects; structural equality and hashing
are provided so analyses can use them in sets/dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Sequence, Tuple, Union

__all__ = [
    "Expr",
    "IntLit",
    "BoolLit",
    "VarRef",
    "UnaryOp",
    "BinOp",
    "CallExpr",
    "Stmt",
    "Assign",
    "CallStmt",
    "EmitStmt",
    "Behavior",
    "EvalError",
    "free_variables",
    "called_functions",
    "eval_expr",
    "const_fold",
    "TRUE_GUARD",
    "FALSE_GUARD",
    "parse_expr",
    "ParseError",
]

_INT_BIN_OPS = {"+", "-", "*", "/", "%"}
_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}
_BOOL_BIN_OPS = {"&&", "||"}
_ALL_BIN_OPS = _INT_BIN_OPS | _CMP_OPS | _BOOL_BIN_OPS


class EvalError(Exception):
    """Raised when an expression cannot be evaluated (missing variable,
    division by zero, unknown operator)."""


class Expr:
    """Base class for expressions (immutable)."""

    def children(self) -> Iterator["Expr"]:
        return iter(())

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    """Boolean literal."""

    value: bool


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a context attribute by name."""

    name: str


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: ``!`` (logical not) or ``-`` (negation)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("!", "-"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def children(self) -> Iterator[Expr]:
        yield self.operand


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator over the arithmetic/comparison/boolean op sets."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _ALL_BIN_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self) -> Iterator[Expr]:
        yield self.lhs
        yield self.rhs


@dataclass(frozen=True)
class CallExpr(Expr):
    """Call of an opaque external function returning int.

    External functions model platform services (sensor reads, RNG, ...).
    The interpreter resolves them through an environment mapping; code
    generation emits an ``extern "C"`` call.
    """

    func: str
    args: Tuple[Expr, ...] = ()

    def children(self) -> Iterator[Expr]:
        return iter(self.args)


TRUE_GUARD = BoolLit(True)
FALSE_GUARD = BoolLit(False)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for statements appearing in behaviors."""

    def expressions(self) -> Iterator[Expr]:
        return iter(())


@dataclass(frozen=True)
class Assign(Stmt):
    """Assignment to a context attribute: ``target = value``."""

    target: str
    value: Expr

    def expressions(self) -> Iterator[Expr]:
        yield self.value


@dataclass(frozen=True)
class CallStmt(Stmt):
    """Opaque external call for effect, e.g. ``led_on()``."""

    call: CallExpr

    def expressions(self) -> Iterator[Expr]:
        yield self.call


@dataclass(frozen=True)
class EmitStmt(Stmt):
    """Send a signal event to the owning state machine itself."""

    event_name: str


@dataclass(frozen=True)
class Behavior:
    """A named sequence of statements (entry/exit/effect bodies)."""

    name: str = ""
    statements: Tuple[Stmt, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.statements)

    def expressions(self) -> Iterator[Expr]:
        for stmt in self.statements:
            yield from stmt.expressions()


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------

def free_variables(expr: Expr) -> frozenset:
    """Set of context attribute names referenced by *expr*."""
    return frozenset(node.name for node in expr.walk() if isinstance(node, VarRef))


def called_functions(expr: Expr) -> frozenset:
    """Set of external function names called by *expr*."""
    return frozenset(node.func for node in expr.walk() if isinstance(node, CallExpr))


Value = Union[int, bool]


def _as_int(value: Value) -> int:
    return int(value)


def _as_bool(value: Value) -> bool:
    return bool(value)


def eval_expr(expr: Expr, env: Mapping[str, Value],
              externals: Mapping[str, object] = None) -> Value:
    """Evaluate *expr* in variable environment *env*.

    ``externals`` maps external function names to Python callables; a
    missing external raises :class:`EvalError` (guards in the paper's
    models never call externals, effects may).
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, VarRef):
        if expr.name not in env:
            raise EvalError(f"unbound variable {expr.name!r}")
        return env[expr.name]
    if isinstance(expr, UnaryOp):
        val = eval_expr(expr.operand, env, externals)
        if expr.op == "!":
            return not _as_bool(val)
        return -_as_int(val)
    if isinstance(expr, BinOp):
        if expr.op in _BOOL_BIN_OPS:
            lhs = _as_bool(eval_expr(expr.lhs, env, externals))
            # Short-circuit like C++.
            if expr.op == "&&":
                return lhs and _as_bool(eval_expr(expr.rhs, env, externals))
            return lhs or _as_bool(eval_expr(expr.rhs, env, externals))
        lhs_v = eval_expr(expr.lhs, env, externals)
        rhs_v = eval_expr(expr.rhs, env, externals)
        if expr.op in _CMP_OPS:
            li, ri = _as_int(lhs_v), _as_int(rhs_v)
            return {
                "<": li < ri, "<=": li <= ri, ">": li > ri,
                ">=": li >= ri, "==": li == ri, "!=": li != ri,
            }[expr.op]
        li, ri = _as_int(lhs_v), _as_int(rhs_v)
        if expr.op == "+":
            return li + ri
        if expr.op == "-":
            return li - ri
        if expr.op == "*":
            return li * ri
        if ri == 0:
            raise EvalError(f"division by zero in {expr.op!r}")
        if expr.op == "/":
            return int(li / ri)  # C-style truncation toward zero
        return li - int(li / ri) * ri
    if isinstance(expr, CallExpr):
        if externals is None or expr.func not in externals:
            raise EvalError(f"unbound external function {expr.func!r}")
        args = [eval_expr(a, env, externals) for a in expr.args]
        return int(externals[expr.func](*args))
    raise EvalError(f"cannot evaluate {expr!r}")


def const_fold(expr: Expr) -> Expr:
    """Fold constant sub-expressions; returns a (possibly) simpler Expr.

    Used by the model-level guard-simplification pass.  External calls are
    never folded (they may have side effects / vary between calls).
    """
    if isinstance(expr, (IntLit, BoolLit, VarRef)):
        return expr
    if isinstance(expr, UnaryOp):
        operand = const_fold(expr.operand)
        if isinstance(operand, (IntLit, BoolLit)):
            try:
                return _lit(eval_expr(UnaryOp(expr.op, operand), {}))
            except EvalError:
                pass
        return UnaryOp(expr.op, operand)
    if isinstance(expr, BinOp):
        lhs = const_fold(expr.lhs)
        rhs = const_fold(expr.rhs)
        folded = BinOp(expr.op, lhs, rhs)
        if isinstance(lhs, (IntLit, BoolLit)) and isinstance(rhs, (IntLit, BoolLit)):
            try:
                return _lit(eval_expr(folded, {}))
            except EvalError:
                return folded
        # Boolean identities with one constant side.  Dropping the
        # constant operand may only keep the other side when that side is
        # itself boolean-valued: `&&`/`||` normalize to true/false, so
        # `true && x` is 0-or-1 while bare `x` is an arbitrary int.
        if expr.op == "&&":
            if _is_true(lhs) and _is_boolean_valued(rhs):
                return rhs
            if _is_true(rhs) and _is_boolean_valued(lhs):
                return lhs
            # `false && x` never evaluates x (short-circuit), but
            # `x && false` still evaluates x first — dropping x is only
            # sound when it performs no external calls (calls are
            # observable platform actions, even from inside a guard).
            if _is_false(lhs):
                return BoolLit(False)
            if _is_false(rhs) and _is_pure(lhs):
                return BoolLit(False)
        if expr.op == "||":
            if _is_false(lhs) and _is_boolean_valued(rhs):
                return rhs
            if _is_false(rhs) and _is_boolean_valued(lhs):
                return lhs
            if _is_true(lhs):
                return BoolLit(True)
            if _is_true(rhs) and _is_pure(lhs):
                return BoolLit(True)
        return folded
    if isinstance(expr, CallExpr):
        return CallExpr(expr.func, tuple(const_fold(a) for a in expr.args))
    return expr


def _lit(value: Value) -> Expr:
    if isinstance(value, bool):
        return BoolLit(value)
    return IntLit(value)


def _is_true(expr: Expr) -> bool:
    return isinstance(expr, BoolLit) and expr.value is True


def _is_false(expr: Expr) -> bool:
    return isinstance(expr, BoolLit) and expr.value is False


def _is_pure(expr: Expr) -> bool:
    """No external calls anywhere in *expr* (safe to not evaluate)."""
    return not called_functions(expr)


_BOOLEAN_OPS = {"&&", "||", "<", "<=", ">", ">=", "==", "!="}


def _is_boolean_valued(expr: Expr) -> bool:
    """Does *expr* always evaluate to a normalized boolean (0 or 1)?"""
    if isinstance(expr, BoolLit):
        return True
    if isinstance(expr, UnaryOp):
        return expr.op == "!"
    if isinstance(expr, BinOp):
        return expr.op in _BOOLEAN_OPS
    return False


# ---------------------------------------------------------------------------
# Expression parser (for convenient model construction / serialization)
# ---------------------------------------------------------------------------

class ParseError(Exception):
    """Raised on malformed guard expression text."""


_TOKEN_CHARS2 = {"&&", "||", "<=", ">=", "==", "!="}
_TOKEN_CHARS1 = {"+", "-", "*", "/", "%", "<", ">", "!", "(", ")", ","}


def _tokenize(text: str):
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        pair = text[i:i + 2]
        if pair in _TOKEN_CHARS2:
            tokens.append(pair)
            i += 2
            continue
        if ch in _TOKEN_CHARS1:
            tokens.append(ch)
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(("int", int(text[i:j])))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(("name", text[i:j]))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r} at offset {i}")
    return tokens


class _Parser:
    """Recursive-descent parser with C-like precedence:
    ``||`` < ``&&`` < comparisons < additive < multiplicative < unary.
    """

    def __init__(self, tokens) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self):
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.take()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r}")

    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.peek() is not None:
            raise ParseError(f"trailing tokens starting at {self.peek()!r}")
        return expr

    def parse_or(self) -> Expr:
        lhs = self.parse_and()
        while self.peek() == "||":
            self.take()
            lhs = BinOp("||", lhs, self.parse_and())
        return lhs

    def parse_and(self) -> Expr:
        lhs = self.parse_cmp()
        while self.peek() == "&&":
            self.take()
            lhs = BinOp("&&", lhs, self.parse_cmp())
        return lhs

    def parse_cmp(self) -> Expr:
        lhs = self.parse_add()
        while self.peek() in _CMP_OPS:
            op = self.take()
            lhs = BinOp(op, lhs, self.parse_add())
        return lhs

    def parse_add(self) -> Expr:
        lhs = self.parse_mul()
        while self.peek() in ("+", "-"):
            op = self.take()
            lhs = BinOp(op, lhs, self.parse_mul())
        return lhs

    def parse_mul(self) -> Expr:
        lhs = self.parse_unary()
        while self.peek() in ("*", "/", "%"):
            op = self.take()
            lhs = BinOp(op, lhs, self.parse_unary())
        return lhs

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok == "!":
            self.take()
            return UnaryOp("!", self.parse_unary())
        if tok == "-":
            self.take()
            return UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.take()
        if tok == "(":
            inner = self.parse_or()
            self.expect(")")
            return inner
        if isinstance(tok, tuple) and tok[0] == "int":
            return IntLit(tok[1])
        if isinstance(tok, tuple) and tok[0] == "name":
            name = tok[1]
            if name == "true":
                return BoolLit(True)
            if name == "false":
                return BoolLit(False)
            if self.peek() == "(":
                self.take()
                args = []
                if self.peek() != ")":
                    args.append(self.parse_or())
                    while self.peek() == ",":
                        self.take()
                        args.append(self.parse_or())
                self.expect(")")
                return CallExpr(name, tuple(args))
            return VarRef(name)
        raise ParseError(f"unexpected token {tok!r}")


def parse_expr(text: str) -> Expr:
    """Parse a guard expression from C-like text, e.g. ``"n > 0 && !busy"``."""
    return _Parser(_tokenize(text)).parse()
