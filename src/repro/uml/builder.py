"""Fluent builder for state machines.

The builder keeps construction code close to how the paper's diagrams
read::

    b = StateMachineBuilder("Fig1Flat")
    b.state("S1"); b.state("S2"); b.state("S3")
    b.initial_to("S1")
    b.transition("S1", "S3", on="e1")
    b.transition("S3", "S1", on="e3")
    b.transition("S2", "S3", on="e2")      # S2 is unreachable
    b.transition("S3", "final", on="e4")
    machine = b.build()

Vertices are addressed by name; ``"final"`` denotes the final state of the
region being built (created on demand).  ``composite()`` returns a nested
builder scoped to a sub-region.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .actions import Behavior, CallExpr, CallStmt, Expr, Stmt, parse_expr
from .elements import ModelError
from .events import Event, SignalEvent, TimeEvent
from .statemachine import (ContextClass, FinalState, Pseudostate,
                           PseudostateKind, Region, State, StateMachine)
from .transitions import Transition, TransitionKind
from .validate import validate_machine

__all__ = ["StateMachineBuilder", "RegionBuilder", "effect", "calls"]

GuardLike = Union[str, Expr, None]
BehaviorLike = Union[str, Behavior, Sequence[Stmt], None]


def effect(*statements: Stmt) -> Behavior:
    """Build a :class:`Behavior` from statements."""
    return Behavior(statements=tuple(statements))


def calls(*names: str) -> Behavior:
    """Build a behavior that calls each named external operation in order."""
    return Behavior(statements=tuple(CallStmt(CallExpr(n)) for n in names))


def _as_behavior(value: BehaviorLike) -> Optional[Behavior]:
    if value is None:
        return None
    if isinstance(value, Behavior):
        return value
    if isinstance(value, str):
        return calls(value)
    return Behavior(statements=tuple(value))


def _as_guard(value: GuardLike) -> Optional[Expr]:
    if value is None or isinstance(value, Expr):
        return value
    return parse_expr(value)


class RegionBuilder:
    """Builds the content of one region."""

    def __init__(self, region: Region, machine: StateMachine) -> None:
        self._region = region
        self._machine = machine
        self._final: Optional[FinalState] = None

    @property
    def region(self) -> Region:
        return self._region

    # -- vertices ------------------------------------------------------
    def state(self, name: str, entry: BehaviorLike = None,
              exit: BehaviorLike = None,
              do_activity: BehaviorLike = None) -> State:
        """Add a simple state to this region."""
        state = State(name,
                      entry=_as_behavior(entry),
                      exit=_as_behavior(exit),
                      do_activity=_as_behavior(do_activity))
        self._region.add_vertex(state)
        return state

    def composite(self, name: str, entry: BehaviorLike = None,
                  exit: BehaviorLike = None) -> "RegionBuilder":
        """Add a composite state and return a builder for its sub-region."""
        state = self.state(name, entry=entry, exit=exit)
        sub = state.region()
        return RegionBuilder(sub, self._machine)

    def pseudostate(self, kind: PseudostateKind, name: str = "") -> Pseudostate:
        ps = Pseudostate(kind, name)
        self._region.add_vertex(ps)
        return ps

    def choice(self, name: str = "choice") -> Pseudostate:
        return self.pseudostate(PseudostateKind.CHOICE, name)

    def junction(self, name: str = "junction") -> Pseudostate:
        return self.pseudostate(PseudostateKind.JUNCTION, name)

    @property
    def final(self) -> FinalState:
        """The region's final state (created on first access)."""
        if self._final is None:
            existing = self._region.final_states()
            if existing:
                self._final = existing[0]
            else:
                self._final = FinalState("final")
                self._region.add_vertex(self._final)
        return self._final

    def _initial(self) -> Pseudostate:
        existing = self._region.initial
        if existing is not None:
            return existing
        ps = Pseudostate(PseudostateKind.INITIAL, "initial")
        self._region.add_vertex(ps)
        return ps

    # -- lookup ----------------------------------------------------------
    def vertex(self, ref: Union[str, "State", FinalState, Pseudostate]):
        """Resolve a vertex reference (object, name, or ``"final"``)."""
        if not isinstance(ref, str):
            return ref
        if ref == "final":
            return self.final
        if ref == "initial":
            return self._initial()
        for v in self._region.vertices:
            if v.name == ref:
                return v
        # Allow targeting vertices in nested regions (inter-level
        # transitions into composites are resolved machine-wide).
        for v in self._region.all_vertices():
            if v.name == ref:
                return v
        raise ModelError(f"no vertex named {ref!r} in region "
                         f"{self._region.label!r}")

    # -- transitions -------------------------------------------------------
    def _event(self, name_or_event: Union[str, Event]) -> Event:
        if isinstance(name_or_event, Event):
            return self._machine.declare_event(name_or_event)
        return self._machine.declare_event(SignalEvent(name_or_event))

    def initial_to(self, target: Union[str, State],
                   effect: BehaviorLike = None) -> Transition:
        """Add the region's initial transition."""
        tr = Transition(self._initial(), self.vertex(target),
                        effect=_as_behavior(effect))
        self._region.add_transition(tr)
        return tr

    def transition(self, source, target, on: Union[str, Event, Sequence, None] = None,
                   guard: GuardLike = None, effect: BehaviorLike = None,
                   kind: TransitionKind = TransitionKind.EXTERNAL,
                   name: str = "") -> Transition:
        """Add a transition.

        ``on=None`` builds a *completion transition* (no trigger), matching
        the paper's unlabeled arcs.  ``on`` may be an event name, an
        :class:`Event`, or a sequence of either (multiple triggers).
        """
        triggers: List[Event] = []
        if on is not None:
            items = on if isinstance(on, (list, tuple)) else [on]
            triggers = [self._event(item) for item in items]
        tr = Transition(self.vertex(source), self.vertex(target),
                        triggers=triggers, guard=_as_guard(guard),
                        effect=_as_behavior(effect), kind=kind, name=name)
        self._region.add_transition(tr)
        return tr

    def completion(self, source, target, guard: GuardLike = None,
                   effect: BehaviorLike = None) -> Transition:
        """Add an explicit completion transition (no trigger)."""
        return self.transition(source, target, on=None, guard=guard,
                               effect=effect)

    def internal(self, state, on, guard: GuardLike = None,
                 effect: BehaviorLike = None) -> Transition:
        """Add an internal transition on *state*."""
        vertex = self.vertex(state)
        return self.transition(vertex, vertex, on=on, guard=guard,
                               effect=effect, kind=TransitionKind.INTERNAL)


class StateMachineBuilder(RegionBuilder):
    """Builds a whole state machine (delegates to the top region)."""

    def __init__(self, name: str, context: Optional[ContextClass] = None) -> None:
        machine = StateMachine(name, context=context)
        super().__init__(machine.top, machine)
        self._machine = machine

    @property
    def machine(self) -> StateMachine:
        return self._machine

    @property
    def context(self) -> ContextClass:
        return self._machine.context

    def attribute(self, name: str, initial: int = 0) -> "StateMachineBuilder":
        self._machine.context.attribute(name, initial)
        return self

    def operation(self, name: str) -> "StateMachineBuilder":
        self._machine.context.operation(name)
        return self

    def event(self, name: str) -> Event:
        """Declare a signal event without attaching it to a transition."""
        return self._event(name)

    def time_event(self, duration_ms: int) -> Event:
        return self._machine.declare_event(TimeEvent(duration_ms=duration_ms))

    def build(self, validate: bool = True) -> StateMachine:
        """Finish construction; optionally run well-formedness checks."""
        if validate:
            validate_machine(self._machine)
        return self._machine
