"""Well-formedness validation for state machines.

Implements the UML constraints the rest of the pipeline relies on.  The
validator reports *all* violations (not just the first) so model authors
can fix a batch at once; :func:`validate_machine` raises on any error.

Checked constraints:

* the machine has at least one region; each region at most one initial
  pseudostate;
* an initial pseudostate has exactly one outgoing transition, with no
  trigger and no guard, and no incoming transitions;
* final states have no outgoing transitions;
* transitions connect vertices of the same machine;
* internal transitions are self-transitions on states;
* choice/junction pseudostates have at least one outgoing transition;
* names of sibling vertices are unique (needed by code generation);
* guard expressions only reference declared context attributes;
* behaviors only reference declared context attributes.

Validation also *normalizes* the context: every external operation
called anywhere — call statements, assign values, guard expressions —
is auto-declared on the context class, so code generation can emit one
``extern`` declaration per call target without a separate collection
pass (an undeclared call would lower with no return slot and compile
to the constant 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .actions import CallExpr, VarRef, Behavior
from .elements import ModelError
from .statemachine import (FinalState, Pseudostate, PseudostateKind, Region,
                           State, StateMachine, Vertex)
from .transitions import Transition, TransitionKind

__all__ = ["ValidationIssue", "ValidationError", "validate_machine",
           "check_machine"]


@dataclass(frozen=True)
class ValidationIssue:
    """One well-formedness violation."""

    code: str
    message: str
    element: str  # qualified name of the offending element

    def __str__(self) -> str:
        return f"[{self.code}] {self.element}: {self.message}"


class ValidationError(ModelError):
    """Raised when a machine violates well-formedness constraints."""

    def __init__(self, issues: List[ValidationIssue]) -> None:
        self.issues = issues
        lines = "\n".join(str(i) for i in issues)
        super().__init__(f"{len(issues)} validation issue(s):\n{lines}")


def check_machine(machine: StateMachine) -> List[ValidationIssue]:
    """Return the list of well-formedness violations (possibly empty)."""
    issues: List[ValidationIssue] = []
    issues.extend(_check_regions(machine))
    issues.extend(_check_vertices(machine))
    issues.extend(_check_transitions(machine))
    issues.extend(_check_behaviors(machine))
    return issues


def validate_machine(machine: StateMachine) -> StateMachine:
    """Validate *machine*, raising :class:`ValidationError` on violations."""
    issues = check_machine(machine)
    if issues:
        raise ValidationError(issues)
    return machine


# ---------------------------------------------------------------------------
# individual constraint groups
# ---------------------------------------------------------------------------

def _check_regions(machine: StateMachine) -> Iterator[ValidationIssue]:
    if not machine.regions:
        yield ValidationIssue("SM001", "state machine has no region",
                              machine.qualified_name)
        return
    for region in machine.all_regions():
        initials = [v for v in region.vertices
                    if isinstance(v, Pseudostate) and v.is_initial]
        if len(initials) > 1:
            yield ValidationIssue(
                "RG001", f"region has {len(initials)} initial pseudostates "
                "(at most one allowed)", region.qualified_name)
        names: dict = {}
        for vertex in region.vertices:
            if not vertex.name:
                continue
            if vertex.name in names:
                yield ValidationIssue(
                    "RG002", f"duplicate sibling vertex name {vertex.name!r}",
                    region.qualified_name)
            names[vertex.name] = vertex


def _check_vertices(machine: StateMachine) -> Iterator[ValidationIssue]:
    for vertex in machine.all_vertices():
        if isinstance(vertex, Pseudostate) and vertex.is_initial:
            out = vertex.outgoing()
            if len(out) != 1:
                yield ValidationIssue(
                    "PS001", f"initial pseudostate must have exactly one "
                    f"outgoing transition (has {len(out)})",
                    vertex.qualified_name)
            for tr in out:
                if tr.triggers:
                    yield ValidationIssue(
                        "PS002", "initial transition may not have a trigger",
                        vertex.qualified_name)
                if tr.guard is not None:
                    yield ValidationIssue(
                        "PS003", "initial transition may not have a guard",
                        vertex.qualified_name)
            if vertex.incoming():
                yield ValidationIssue(
                    "PS004", "initial pseudostate may not have incoming "
                    "transitions", vertex.qualified_name)
        elif isinstance(vertex, Pseudostate) and vertex.kind in (
                PseudostateKind.CHOICE, PseudostateKind.JUNCTION):
            if not vertex.outgoing():
                yield ValidationIssue(
                    "PS005", f"{vertex.kind.value} pseudostate needs at "
                    "least one outgoing transition", vertex.qualified_name)
        elif isinstance(vertex, FinalState):
            if vertex.outgoing():
                yield ValidationIssue(
                    "FS001", "final state may not have outgoing transitions",
                    vertex.qualified_name)


def _check_transitions(machine: StateMachine) -> Iterator[ValidationIssue]:
    for tr in machine.all_transitions():
        if tr.source.machine is not machine or tr.target.machine is not machine:
            yield ValidationIssue(
                "TR001", f"transition {tr.describe()} connects vertices "
                "outside this machine", machine.qualified_name)
        if tr.kind is TransitionKind.INTERNAL and not isinstance(tr.source, State):
            yield ValidationIssue(
                "TR002", "internal transitions require a State source",
                machine.qualified_name)
        if isinstance(tr.source, Pseudostate) and tr.source.is_initial:
            continue  # constraints covered above
        if isinstance(tr.source, Pseudostate) and tr.triggers:
            yield ValidationIssue(
                "TR003", f"transition from pseudostate {tr.source.label!r} "
                "may not have explicit triggers", machine.qualified_name)


def _iter_behaviors(machine: StateMachine) -> Iterator[Behavior]:
    for state in machine.all_states():
        yield state.entry
        yield state.exit
        yield state.do_activity
    for tr in machine.all_transitions():
        yield tr.effect


def _check_behaviors(machine: StateMachine) -> Iterator[ValidationIssue]:
    attrs = set(machine.context.attributes)

    for tr in machine.all_transitions():
        if tr.guard is None:
            continue
        for node in tr.guard.walk():
            if isinstance(node, CallExpr):
                machine.context.operation(node.func)
            if isinstance(node, VarRef) and node.name not in attrs:
                yield ValidationIssue(
                    "GD001", f"guard references undeclared attribute "
                    f"{node.name!r} (transition {tr.describe()})",
                    machine.qualified_name)

    for behavior in _iter_behaviors(machine):
        for stmt in behavior.statements:
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, CallExpr):
                        # Called operations are auto-declared — from call
                        # statements AND calls nested in assign values or
                        # guards: validation normalizes the context's
                        # operation list so code generation emits one
                        # ``extern`` (int-returning) per call target.  An
                        # undeclared call would otherwise lower with no
                        # return slot and compile to the constant 0 while
                        # the interpreter evaluates it — a model-vs-code
                        # divergence the VM conformance suite catches.
                        machine.context.operation(node.func)
                    if isinstance(node, VarRef) and node.name not in attrs:
                        yield ValidationIssue(
                            "BH001", f"behavior references undeclared "
                            f"attribute {node.name!r}",
                            machine.qualified_name)
