"""State machine, region and vertex classes of the UML subset.

Structure follows the UML 2.x superstructure: a :class:`StateMachine` owns
one or more :class:`Region` objects; a region owns :class:`Vertex` objects
(states, pseudostates, final states) and :class:`Transition` objects; a
composite :class:`State` owns nested regions.  The subset covers what the
paper's experiments need — simple and composite states, initial and final
(pseudo)states, choice/junction/history pseudostates for metamodel
completeness, signal/completion triggers, guards, and entry/exit/effect
behaviors — without the concurrency-oriented fork/join machinery.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional

from .actions import Behavior
from .elements import Element, ModelError, NamedElement
from .events import Event
from .transitions import Transition, TransitionKind

__all__ = [
    "Vertex",
    "PseudostateKind",
    "Pseudostate",
    "FinalState",
    "State",
    "Region",
    "StateMachine",
    "ContextClass",
]


class Vertex(NamedElement):
    """Abstract node of the state graph (source/target of transitions)."""

    @property
    def container(self) -> Optional["Region"]:
        """The region that directly owns this vertex."""
        return self.owner if isinstance(self.owner, Region) else None

    def incoming(self) -> List[Transition]:
        """Transitions (anywhere in the machine) targeting this vertex."""
        machine = self.machine
        if machine is None:
            return []
        return [t for t in machine.all_transitions() if t.target is self]

    def outgoing(self) -> List[Transition]:
        """Transitions (anywhere in the machine) leaving this vertex."""
        machine = self.machine
        if machine is None:
            return []
        return [t for t in machine.all_transitions() if t.source is self]

    @property
    def machine(self) -> Optional["StateMachine"]:
        root = self.root()
        return root if isinstance(root, StateMachine) else None


class PseudostateKind(enum.Enum):
    """Kinds of pseudostates in the supported subset."""

    INITIAL = "initial"
    CHOICE = "choice"
    JUNCTION = "junction"
    SHALLOW_HISTORY = "shallowHistory"
    DEEP_HISTORY = "deepHistory"
    TERMINATE = "terminate"
    ENTRY_POINT = "entryPoint"
    EXIT_POINT = "exitPoint"


class Pseudostate(Vertex):
    """Transient vertex: control passes through without resting."""

    def __init__(self, kind: PseudostateKind, name: str = "") -> None:
        super().__init__(name or kind.value)
        self.kind = kind

    @property
    def is_initial(self) -> bool:
        return self.kind is PseudostateKind.INITIAL


class FinalState(Vertex):
    """A region's final state.  Entering it completes the region."""


class State(Vertex):
    """A simple or composite state.

    A state is *composite* when it owns at least one region.  Entry and
    exit behaviors run on entering/leaving; ``do_activity`` is carried in
    the metamodel (and emitted by generators) but treated as instantaneous
    by the interpreter, matching the paper's code-size experiments which
    never rely on interruptible activities.
    """

    def __init__(self, name: str = "",
                 entry: Optional[Behavior] = None,
                 exit: Optional[Behavior] = None,
                 do_activity: Optional[Behavior] = None) -> None:
        super().__init__(name)
        self.entry: Behavior = entry or Behavior()
        self.exit: Behavior = exit or Behavior()
        self.do_activity: Behavior = do_activity or Behavior()
        self.regions: List[Region] = []

    # -- composition ----------------------------------------------------
    @property
    def is_composite(self) -> bool:
        return bool(self.regions)

    @property
    def is_simple(self) -> bool:
        return not self.regions

    def add_region(self, region: "Region") -> "Region":
        if region.owner is not None:
            raise ModelError(f"region {region.label!r} already owned")
        region.owner = self
        self.regions.append(region)
        return region

    def region(self, name: str = "") -> "Region":
        """Create (or return the single) nested region, making this state
        composite."""
        if not name and len(self.regions) == 1:
            return self.regions[0]
        return self.add_region(Region(name or f"{self.name}_region"))

    def owned_elements(self) -> Iterator[Element]:
        return iter(self.regions)

    # -- hierarchy helpers ----------------------------------------------
    def ancestors(self) -> Iterator["State"]:
        """Enclosing composite states, innermost first."""
        for anc in self.owner_chain():
            if isinstance(anc, State):
                yield anc

    def descendant_states(self) -> Iterator["State"]:
        """All states nested (transitively) inside this one."""
        for region in self.regions:
            yield from region.all_states()

    def completion_transitions(self) -> List[Transition]:
        return [t for t in self.outgoing() if t.is_completion]

    def event_transitions(self) -> List[Transition]:
        return [t for t in self.outgoing() if t.triggers]


class Region(NamedElement):
    """A container of vertices and transitions.

    Owned by a state machine (top region) or by a composite state.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.vertices: List[Vertex] = []
        self.transitions: List[Transition] = []

    # -- construction ----------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        if vertex.owner is not None:
            raise ModelError(f"vertex {vertex.label!r} already owned")
        vertex.owner = self
        self.vertices.append(vertex)
        return vertex

    def add_transition(self, transition: Transition) -> Transition:
        if transition.owner is not None:
            raise ModelError("transition already owned")
        transition.owner = self
        self.transitions.append(transition)
        return transition

    def remove_vertex(self, vertex: Vertex) -> None:
        """Detach *vertex* (must have no incident transitions left)."""
        if vertex not in self.vertices:
            raise ModelError(f"{vertex.label!r} is not in region {self.label!r}")
        machine = vertex.machine
        if machine is not None:
            dangling = [t for t in machine.all_transitions()
                        if t.source is vertex or t.target is vertex]
            if dangling:
                raise ModelError(
                    f"cannot remove {vertex.label!r}: "
                    f"{len(dangling)} incident transition(s) remain")
        self.vertices.remove(vertex)
        vertex.owner = None

    def remove_transition(self, transition: Transition) -> None:
        if transition not in self.transitions:
            raise ModelError("transition is not owned by this region")
        self.transitions.remove(transition)
        transition.owner = None

    # -- queries ----------------------------------------------------------
    def owned_elements(self) -> Iterator[Element]:
        yield from self.vertices
        yield from self.transitions

    @property
    def initial(self) -> Optional[Pseudostate]:
        """The region's initial pseudostate, if any."""
        for v in self.vertices:
            if isinstance(v, Pseudostate) and v.is_initial:
                return v
        return None

    def states(self) -> List[State]:
        """Directly owned (non-pseudo, non-final) states."""
        return [v for v in self.vertices if isinstance(v, State)]

    def final_states(self) -> List[FinalState]:
        return [v for v in self.vertices if isinstance(v, FinalState)]

    def all_states(self) -> Iterator[State]:
        """States in this region and (transitively) in nested regions."""
        for vertex in self.vertices:
            if isinstance(vertex, State):
                yield vertex
                for sub in vertex.regions:
                    yield from sub.all_states()

    def all_vertices(self) -> Iterator[Vertex]:
        for vertex in self.vertices:
            yield vertex
            if isinstance(vertex, State):
                for sub in vertex.regions:
                    yield from sub.all_vertices()

    def all_regions(self) -> Iterator["Region"]:
        yield self
        for vertex in self.vertices:
            if isinstance(vertex, State):
                for sub in vertex.regions:
                    yield from sub.all_regions()

    def all_transitions(self) -> Iterator[Transition]:
        for region in self.all_regions():
            yield from region.transitions


class ContextClass(NamedElement):
    """The class whose behavior the state machine specifies.

    Carries integer attributes (with initial values) referenced by guards
    and effects, and the names of external operations (opaque platform
    calls) the behaviors may invoke.
    """

    def __init__(self, name: str = "Context") -> None:
        super().__init__(name)
        self.attributes: Dict[str, int] = {}
        self.operations: List[str] = []

    def attribute(self, name: str, initial: int = 0) -> "ContextClass":
        self.attributes[name] = initial
        return self

    def operation(self, name: str) -> "ContextClass":
        if name not in self.operations:
            self.operations.append(name)
        return self


class StateMachine(NamedElement):
    """Top-level state machine: behavior of a :class:`ContextClass`."""

    def __init__(self, name: str = "", context: Optional[ContextClass] = None) -> None:
        super().__init__(name)
        self.regions: List[Region] = []
        self.context: ContextClass = context or ContextClass(f"{name or 'SM'}Context")
        self.events: Dict[str, Event] = {}

    # -- construction ----------------------------------------------------
    def add_region(self, region: Region) -> Region:
        if region.owner is not None:
            raise ModelError(f"region {region.label!r} already owned")
        region.owner = self
        self.regions.append(region)
        return region

    @property
    def top(self) -> Region:
        """The (single) top region, created on demand."""
        if not self.regions:
            self.add_region(Region("top"))
        return self.regions[0]

    def declare_event(self, event: Event) -> Event:
        """Register an event in the machine's alphabet (idempotent)."""
        existing = self.events.get(event.key())
        if existing is not None:
            return existing
        event.owner = self
        self.events[event.key()] = event
        return event

    # -- queries ----------------------------------------------------------
    def owned_elements(self) -> Iterator[Element]:
        yield from self.regions

    def all_regions(self) -> Iterator[Region]:
        for region in self.regions:
            yield from region.all_regions()

    def all_states(self) -> Iterator[State]:
        for region in self.regions:
            yield from region.all_states()

    def all_vertices(self) -> Iterator[Vertex]:
        for region in self.regions:
            yield from region.all_vertices()

    def all_transitions(self) -> Iterator[Transition]:
        for region in self.regions:
            yield from region.all_transitions()

    def find_state(self, name: str) -> State:
        for state in self.all_states():
            if state.name == name:
                return state
        raise ModelError(f"no state named {name!r} in machine {self.label!r}")

    def find_vertex(self, name: str) -> Vertex:
        for vertex in self.all_vertices():
            if vertex.name == name:
                return vertex
        raise ModelError(f"no vertex named {name!r} in machine {self.label!r}")

    def signal_alphabet(self) -> List[Event]:
        """Signal-like events in deterministic declaration order."""
        return [e for e in self.events.values()]
