"""Event kinds of the UML subset.

The paper's state machines react to *signal events* (``e1``, ``e2`` ...)
and to the implicit *completion event* generated when a state finishes its
entry behavior (and, for composites, when its regions reach their final
states).  ``TimeEvent`` and ``CallEvent`` are provided for completeness of
the metamodel and used by examples; the interpreter treats a time event as
a distinguished named event whose dispatch the test bench controls.
"""

from __future__ import annotations

from .elements import NamedElement

__all__ = ["Event", "SignalEvent", "CallEvent", "TimeEvent", "CompletionEvent",
           "AnyEvent"]


class Event(NamedElement):
    """Abstract event.  Events are identified by name within a machine."""

    def matches(self, other: "Event") -> bool:
        """Trigger matching: same kind and same name."""
        return type(self) is type(other) and self.name == other.name

    def key(self) -> str:
        """Stable key used by dispatch tables and code generation."""
        return f"{type(self).__name__}:{self.name}"


class SignalEvent(Event):
    """Asynchronous signal reception (the common case in the paper)."""


class CallEvent(Event):
    """Synchronous operation call event."""


class TimeEvent(Event):
    """Relative time event (``after(duration)``).

    ``duration_ms`` is informational; the interpreter fires the event when
    the test environment dispatches it, as the paper's experiments are not
    timing-sensitive.
    """

    def __init__(self, name: str = "", duration_ms: int = 0) -> None:
        super().__init__(name or f"after_{duration_ms}ms")
        self.duration_ms = duration_ms


class CompletionEvent(Event):
    """The implicit completion event of a state.

    Never appears in a trigger list; transitions with *no* trigger are
    completion transitions and are dispatched on this event.  UML gives
    completion events priority over any pooled event — the property that
    makes the paper's composite state ``S3`` unreachable.
    """

    def __init__(self, state_name: str = "") -> None:
        super().__init__(f"__completion__({state_name})")
        self.state_name = state_name


class AnyEvent(Event):
    """Wildcard trigger (UML ``all`` / ``*``): matches any signal event."""

    def __init__(self) -> None:
        super().__init__("*")

    def matches(self, other: Event) -> bool:
        return isinstance(other, (SignalEvent, CallEvent, TimeEvent))
