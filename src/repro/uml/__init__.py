"""UML 2.x state-machine metamodel subset.

Public API::

    from repro.uml import (StateMachineBuilder, StateMachine, State,
                           SignalEvent, parse_expr, validate_machine,
                           dumps_machine, loads_machine, clone_machine)
"""

from .actions import (Assign, Behavior, BinOp, BoolLit, CallExpr, CallStmt,
                      EmitStmt, EvalError, Expr, IntLit, ParseError, Stmt,
                      UnaryOp, VarRef, const_fold, eval_expr, free_variables,
                      called_functions, parse_expr, TRUE_GUARD, FALSE_GUARD)
from .builder import RegionBuilder, StateMachineBuilder, calls, effect
from .elements import Element, ModelError, NamedElement
from .events import (AnyEvent, CallEvent, CompletionEvent, Event, SignalEvent,
                     TimeEvent)
from .serialize import (dumps_machine, load_machine, loads_machine,
                        machine_from_dict, machine_to_dict, save_machine)
from .statemachine import (ContextClass, FinalState, Pseudostate,
                           PseudostateKind, Region, State, StateMachine,
                           Vertex)
from .transitions import Transition, TransitionKind
from .validate import (ValidationError, ValidationIssue, check_machine,
                       validate_machine)

__all__ = [
    # actions
    "Assign", "Behavior", "BinOp", "BoolLit", "CallExpr", "CallStmt",
    "EmitStmt", "EvalError", "Expr", "IntLit", "ParseError", "Stmt",
    "UnaryOp", "VarRef", "const_fold", "eval_expr", "free_variables",
    "called_functions", "parse_expr", "TRUE_GUARD", "FALSE_GUARD",
    # builder
    "RegionBuilder", "StateMachineBuilder", "calls", "effect",
    # elements
    "Element", "ModelError", "NamedElement",
    # events
    "AnyEvent", "CallEvent", "CompletionEvent", "Event", "SignalEvent",
    "TimeEvent",
    # serialization
    "dumps_machine", "load_machine", "loads_machine", "machine_from_dict",
    "machine_to_dict", "save_machine", "clone_machine",
    # state machine
    "ContextClass", "FinalState", "Pseudostate", "PseudostateKind", "Region",
    "State", "StateMachine", "Vertex",
    # transitions
    "Transition", "TransitionKind",
    # validation
    "ValidationError", "ValidationIssue", "check_machine", "validate_machine",
]


def clone_machine(machine: "StateMachine") -> "StateMachine":
    """Deep-copy a state machine via serialization round-trip.

    The optimizer uses this so that model transformations never mutate the
    caller's original model (the paper's tool likewise "generates the
    optimized model" as a new artifact).
    """
    return machine_from_dict(machine_to_dict(machine))
