"""Base classes of the UML metamodel subset.

The reproduction models the part of UML 2.x that the paper exercises:
state machines (states, regions, pseudostates, transitions, events) plus a
small action language used for guards and effects.  Every model object
derives from :class:`Element`, which provides identity, ownership and a
stable ``qualified_name`` used in diagnostics and serialization.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

__all__ = ["Element", "NamedElement", "ModelError", "fresh_id"]

_id_counter = itertools.count(1)


def fresh_id() -> int:
    """Return a process-unique integer id for a new model element."""
    return next(_id_counter)


class ModelError(Exception):
    """Raised for structurally invalid model constructions or lookups."""


class Element:
    """Root of the metamodel hierarchy.

    Elements form an ownership tree: each element knows its ``owner`` and
    can enumerate ``owned_elements``.  Ownership is maintained by the
    concrete containers (regions own vertices and transitions, state
    machines own regions, ...).
    """

    def __init__(self) -> None:
        self.element_id: int = fresh_id()
        self.owner: Optional["Element"] = None

    # -- ownership ----------------------------------------------------
    def owned_elements(self) -> Iterator["Element"]:
        """Iterate over directly owned elements (default: none)."""
        return iter(())

    def all_owned_elements(self) -> Iterator["Element"]:
        """Iterate over the transitive closure of owned elements."""
        for child in self.owned_elements():
            yield child
            yield from child.all_owned_elements()

    def owner_chain(self) -> Iterator["Element"]:
        """Iterate from this element's owner up to the model root."""
        cur = self.owner
        while cur is not None:
            yield cur
            cur = cur.owner

    def root(self) -> "Element":
        """Return the topmost owner (the element itself if unowned)."""
        node: Element = self
        for anc in self.owner_chain():
            node = anc
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.element_id}>"


class NamedElement(Element):
    """An element with a (possibly empty) name.

    ``qualified_name`` joins the names of the ownership chain with ``::``
    like UML tools do; anonymous ancestors contribute a placeholder based
    on their metaclass so qualified names stay unique enough for error
    messages.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name

    @property
    def label(self) -> str:
        """Name if present, otherwise a metaclass-based placeholder."""
        return self.name or f"<{type(self).__name__.lower()}#{self.element_id}>"

    @property
    def qualified_name(self) -> str:
        parts = [self.label]
        for anc in self.owner_chain():
            if isinstance(anc, NamedElement):
                parts.append(anc.label)
        return "::".join(reversed(parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.qualified_name!r}>"
