"""Cache backends: where a :class:`~repro.engine.cache.CompileCache`
keeps its completed values.

The cache's job — in-flight deduplication, statistics, the
``get_or_compute`` contract — is backend-independent; a
:class:`CacheBackend` only answers "do you hold *key*, and where from?"
Three implementations:

* :class:`MemoryBackend` — a plain dict; the seed behavior.  Fast,
  private to the process, gone at exit.
* :class:`DiskBackend` — a :class:`repro.store.ArtifactStore`; values
  survive the process and are shared by everything pointed at the same
  directory.  Store-level failures (a read-only disk, an unpicklable
  value) degrade to misses/skipped writes rather than failing the
  compile.
* :class:`TieredBackend` — memory over disk: reads probe memory first
  and *promote* disk hits, writes go to both.  This is what
  ``--cache-dir`` uses: hot keys at dict speed, cold starts served from
  disk.
* :class:`ShardedBackend` — consistent-hash routing over N child
  backends (one :class:`~repro.store.ArtifactStore` shard each in
  normal use).  Every key is owned by exactly one shard via a
  :class:`~repro.store.HashRing`, so adding or removing a shard moves
  only ~1/N of the key space and a warm multi-shard store farm stays
  warm across resizes.  The compile cluster's workers all build this
  backend from one :class:`~repro.engine.EngineSpec`, which is what
  makes their on-disk caches one coherent sharded store.

``load`` returns ``(value, origin)`` — ``origin`` is the tier that
served the hit (``"memory"`` or ``"disk"``), which is how
:class:`~repro.engine.cache.CacheStats` attributes disk hits.

Thread-safety contract: the owning cache's in-flight futures guarantee
at most one ``load``/``store`` *per key* at a time, but calls for
**distinct keys run concurrently** (backend I/O happens outside the
cache lock).  Both implementations satisfy that: dict get/set are
atomic in CPython, and :class:`~repro.store.ArtifactStore` is lockless
multi-process-concurrent by design.  A custom backend with non-atomic
internal bookkeeping must bring its own lock.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..store import ArtifactStore, HashRing

__all__ = ["CacheBackend", "MemoryBackend", "DiskBackend",
           "TieredBackend", "ShardedBackend", "backend_from_spec"]

ORIGIN_MEMORY = "memory"
ORIGIN_DISK = "disk"


class CacheBackend:
    """Value storage protocol behind :class:`CompileCache`."""

    name = "abstract"

    def load(self, key: str) -> Tuple[Any, str]:
        """Return ``(value, origin)``; raise :class:`KeyError` on miss."""
        raise KeyError(key)

    def store(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        try:
            self.load(key)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryBackend(CacheBackend):
    """In-process dict of values (the default)."""

    name = ORIGIN_MEMORY

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}

    def load(self, key: str) -> Tuple[Any, str]:
        return self._values[key], ORIGIN_MEMORY

    def store(self, key: str, value: Any) -> None:
        self._values[key] = value

    def store_if_absent(self, key: str, value: Any) -> bool:
        """Atomically publish *value* unless *key* is already present;
        True when this call did the publishing (``dict.setdefault`` is
        atomic in CPython, so concurrent promoters agree on a single
        winner)."""
        return self._values.setdefault(key, value) is value

    def keys(self) -> Tuple[str, ...]:
        """Snapshot of the held keys (safe against concurrent stores)."""
        return tuple(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()


class DiskBackend(CacheBackend):
    """Values in a persistent :class:`~repro.store.ArtifactStore`.

    Accepts a store or a directory path.  I/O and serialization
    problems never propagate into the compile path: a failed read is a
    miss, a failed write leaves the key uncached (counted on the
    store's stats where applicable).
    """

    name = ORIGIN_DISK

    def __init__(self, store: "Union[ArtifactStore, str]",
                 max_bytes: Optional[int] = None) -> None:
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store, max_bytes=max_bytes)
        self.store_dir = store

    def load(self, key: str) -> Tuple[Any, str]:
        return self.store_dir.load(key), ORIGIN_DISK

    def store(self, key: str, value: Any) -> None:
        try:
            self.store_dir.put(key, value)
        except (OSError, pickle.PickleError, TypeError, AttributeError):
            pass                     # cache write failure != compile failure

    def __contains__(self, key: str) -> bool:
        return key in self.store_dir

    def __len__(self) -> int:
        return len(self.store_dir)

    def clear(self) -> None:
        self.store_dir.clear()


class TieredBackend(CacheBackend):
    """Memory over disk: probe fast tier first, promote disk hits.

    The slow tier is any :class:`CacheBackend` (a plain
    :class:`DiskBackend`, or a :class:`ShardedBackend` spanning several
    store shards); paths and stores are wrapped in a
    :class:`DiskBackend` for convenience.
    """

    name = "tiered"

    def __init__(self, disk: "Union[CacheBackend, ArtifactStore, str]",
                 memory: Optional[MemoryBackend] = None,
                 max_bytes: Optional[int] = None) -> None:
        if not isinstance(disk, CacheBackend):
            disk = DiskBackend(disk, max_bytes=max_bytes)
        self.memory = memory if memory is not None else MemoryBackend()
        self.disk = disk

    def load(self, key: str) -> Tuple[Any, str]:
        try:
            return self.memory.load(key)
        except KeyError:
            pass
        value, _ = self.disk.load(key)
        # Promote for repeat lookups.  Exactly one concurrent promoter
        # of a key wins, and only the winner reports a disk-origin hit,
        # so disk-hit counts stay deterministic under a worker pool;
        # losers serve the promoted object like any later lookup.
        if self.memory.store_if_absent(key, value):
            return value, ORIGIN_DISK
        return self.memory.load(key)

    def store(self, key: str, value: Any) -> None:
        self.memory.store(key, value)
        self.disk.store(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.disk

    def __len__(self) -> int:
        """Distinct keys across both tiers (memory is a disk subset in
        normal use, but the tiers may be seeded independently)."""
        extra = sum(1 for key in self.memory.keys()
                    if key not in self.disk)
        return len(self.disk) + extra

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()


class ShardedBackend(CacheBackend):
    """Consistent-hash routing over N child backends.

    Every key is owned by exactly one shard
    (:meth:`~repro.store.HashRing.lookup` of its fingerprint), so
    concurrent cluster workers that build equal shard sets agree on
    placement without coordination, and resizing the shard set moves
    only ~1/N of the keys.  Reads and writes delegate to the owning
    shard; the reported hit origin is the child's, so disk-hit
    accounting is unchanged.
    """

    name = "sharded"

    def __init__(self, shards: "Sequence[Tuple[str, CacheBackend]]",
                 replicas: int = 64) -> None:
        self.shards: Dict[str, CacheBackend] = dict(shards)
        if len(self.shards) != len(shards):
            raise ValueError("shard names must be unique")
        self.ring = HashRing(self.shards, replicas=replicas)

    @classmethod
    def over_directory(cls, root: str, n_shards: int,
                       max_bytes: Optional[int] = None,
                       replicas: int = 64) -> "ShardedBackend":
        """N :class:`DiskBackend` shards under ``root/shard-XX``.

        A byte budget is split evenly across shards — consistent
        hashing balances key placement, so per-shard budgets
        approximate a whole-store budget without cross-shard GC
        coordination.
        """
        if n_shards < 1:
            raise ValueError("need at least one shard")
        per_shard = None if max_bytes is None else \
            max(1, max_bytes // n_shards)
        shards = [
            (f"shard-{i:02d}",
             DiskBackend(os.path.join(root, f"shard-{i:02d}"),
                         max_bytes=per_shard))
            for i in range(n_shards)
        ]
        return cls(shards, replicas=replicas)

    def shard_for(self, key: str) -> str:
        """Name of the shard owning *key*."""
        return self.ring.lookup(key)

    def load(self, key: str) -> Tuple[Any, str]:
        return self.shards[self.ring.lookup(key)].load(key)

    def store(self, key: str, value: Any) -> None:
        self.shards[self.ring.lookup(key)].store(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self.shards[self.ring.lookup(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards.values())

    def clear(self) -> None:
        for shard in self.shards.values():
            shard.clear()

    def shard_sizes(self) -> Dict[str, int]:
        """``{shard name: entry count}`` — the metrics endpoint's view
        of placement balance."""
        return {name: len(shard)
                for name, shard in sorted(self.shards.items())}


def backend_from_spec(spec: Optional[str] = None,
                      cache_dir: Optional[str] = None,
                      max_bytes: Optional[int] = None,
                      shards: int = 1) -> CacheBackend:
    """Build a backend from CLI-ish knobs.

    *spec* is ``"memory"`` | ``"disk"`` | ``"tiered"`` (default:
    ``"tiered"`` when *cache_dir* is given, else ``"memory"``).  The
    disk-backed specs require *cache_dir*.  ``shards > 1`` splits the
    disk tier into that many consistent-hash-routed
    :class:`~repro.store.ArtifactStore` shards under *cache_dir*.
    """
    if spec is None:
        spec = "tiered" if cache_dir else "memory"
    shards = int(shards)
    if spec == "memory":
        if shards > 1:
            raise ValueError("sharding needs a disk-backed backend "
                             "(memory caches are per-process)")
        return MemoryBackend()
    if spec in ("disk", "tiered"):
        if not cache_dir:
            raise ValueError(f"backend {spec!r} needs a cache directory")
        if shards > 1:
            disk: CacheBackend = ShardedBackend.over_directory(
                cache_dir, shards, max_bytes=max_bytes)
        else:
            disk = DiskBackend(cache_dir, max_bytes=max_bytes)
        if spec == "disk":
            return disk
        return TieredBackend(disk)
    raise ValueError(f"unknown cache backend {spec!r} "
                     "(expected memory, disk or tiered)")
