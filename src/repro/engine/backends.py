"""Cache backends: where a :class:`~repro.engine.cache.CompileCache`
keeps its completed values.

The cache's job — in-flight deduplication, statistics, the
``get_or_compute`` contract — is backend-independent; a
:class:`CacheBackend` only answers "do you hold *key*, and where from?"
Three implementations:

* :class:`MemoryBackend` — a plain dict; the seed behavior.  Fast,
  private to the process, gone at exit.
* :class:`DiskBackend` — a :class:`repro.store.ArtifactStore`; values
  survive the process and are shared by everything pointed at the same
  directory.  Store-level failures (a read-only disk, an unpicklable
  value) degrade to misses/skipped writes rather than failing the
  compile.
* :class:`TieredBackend` — memory over disk: reads probe memory first
  and *promote* disk hits, writes go to both.  This is what
  ``--cache-dir`` uses: hot keys at dict speed, cold starts served from
  disk.

``load`` returns ``(value, origin)`` — ``origin`` is the tier that
served the hit (``"memory"`` or ``"disk"``), which is how
:class:`~repro.engine.cache.CacheStats` attributes disk hits.

Thread-safety contract: the owning cache's in-flight futures guarantee
at most one ``load``/``store`` *per key* at a time, but calls for
**distinct keys run concurrently** (backend I/O happens outside the
cache lock).  Both implementations satisfy that: dict get/set are
atomic in CPython, and :class:`~repro.store.ArtifactStore` is lockless
multi-process-concurrent by design.  A custom backend with non-atomic
internal bookkeeping must bring its own lock.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional, Tuple, Union

from ..store import ArtifactStore

__all__ = ["CacheBackend", "MemoryBackend", "DiskBackend",
           "TieredBackend", "backend_from_spec"]

ORIGIN_MEMORY = "memory"
ORIGIN_DISK = "disk"


class CacheBackend:
    """Value storage protocol behind :class:`CompileCache`."""

    name = "abstract"

    def load(self, key: str) -> Tuple[Any, str]:
        """Return ``(value, origin)``; raise :class:`KeyError` on miss."""
        raise KeyError(key)

    def store(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        try:
            self.load(key)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryBackend(CacheBackend):
    """In-process dict of values (the default)."""

    name = ORIGIN_MEMORY

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}

    def load(self, key: str) -> Tuple[Any, str]:
        return self._values[key], ORIGIN_MEMORY

    def store(self, key: str, value: Any) -> None:
        self._values[key] = value

    def store_if_absent(self, key: str, value: Any) -> bool:
        """Atomically publish *value* unless *key* is already present;
        True when this call did the publishing (``dict.setdefault`` is
        atomic in CPython, so concurrent promoters agree on a single
        winner)."""
        return self._values.setdefault(key, value) is value

    def keys(self) -> Tuple[str, ...]:
        """Snapshot of the held keys (safe against concurrent stores)."""
        return tuple(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()


class DiskBackend(CacheBackend):
    """Values in a persistent :class:`~repro.store.ArtifactStore`.

    Accepts a store or a directory path.  I/O and serialization
    problems never propagate into the compile path: a failed read is a
    miss, a failed write leaves the key uncached (counted on the
    store's stats where applicable).
    """

    name = ORIGIN_DISK

    def __init__(self, store: "Union[ArtifactStore, str]",
                 max_bytes: Optional[int] = None) -> None:
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store, max_bytes=max_bytes)
        self.store_dir = store

    def load(self, key: str) -> Tuple[Any, str]:
        return self.store_dir.load(key), ORIGIN_DISK

    def store(self, key: str, value: Any) -> None:
        try:
            self.store_dir.put(key, value)
        except (OSError, pickle.PickleError, TypeError, AttributeError):
            pass                     # cache write failure != compile failure

    def __contains__(self, key: str) -> bool:
        return key in self.store_dir

    def __len__(self) -> int:
        return len(self.store_dir)

    def clear(self) -> None:
        self.store_dir.clear()


class TieredBackend(CacheBackend):
    """Memory over disk: probe fast tier first, promote disk hits."""

    name = "tiered"

    def __init__(self, disk: "Union[DiskBackend, ArtifactStore, str]",
                 memory: Optional[MemoryBackend] = None,
                 max_bytes: Optional[int] = None) -> None:
        if not isinstance(disk, DiskBackend):
            disk = DiskBackend(disk, max_bytes=max_bytes)
        self.memory = memory if memory is not None else MemoryBackend()
        self.disk = disk

    def load(self, key: str) -> Tuple[Any, str]:
        try:
            return self.memory.load(key)
        except KeyError:
            pass
        value, _ = self.disk.load(key)
        # Promote for repeat lookups.  Exactly one concurrent promoter
        # of a key wins, and only the winner reports a disk-origin hit,
        # so disk-hit counts stay deterministic under a worker pool;
        # losers serve the promoted object like any later lookup.
        if self.memory.store_if_absent(key, value):
            return value, ORIGIN_DISK
        return self.memory.load(key)

    def store(self, key: str, value: Any) -> None:
        self.memory.store(key, value)
        self.disk.store(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.disk

    def __len__(self) -> int:
        """Distinct keys across both tiers (memory is a disk subset in
        normal use, but the tiers may be seeded independently)."""
        extra = sum(1 for key in self.memory.keys()
                    if key not in self.disk)
        return len(self.disk) + extra

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()


def backend_from_spec(spec: Optional[str] = None,
                      cache_dir: Optional[str] = None,
                      max_bytes: Optional[int] = None) -> CacheBackend:
    """Build a backend from CLI-ish knobs.

    *spec* is ``"memory"`` | ``"disk"`` | ``"tiered"`` (default:
    ``"tiered"`` when *cache_dir* is given, else ``"memory"``).  The
    disk-backed specs require *cache_dir*.
    """
    if spec is None:
        spec = "tiered" if cache_dir else "memory"
    if spec == "memory":
        return MemoryBackend()
    if spec in ("disk", "tiered"):
        if not cache_dir:
            raise ValueError(f"backend {spec!r} needs a cache directory")
        if spec == "disk":
            return DiskBackend(cache_dir, max_bytes=max_bytes)
        return TieredBackend(cache_dir, max_bytes=max_bytes)
    raise ValueError(f"unknown cache backend {spec!r} "
                     "(expected memory, disk or tiered)")
