"""Content-addressed result cache with hit/miss statistics.

The cache separates two concerns:

* **in-flight deduplication** lives here: the first caller of a key
  installs a future and computes the value inline; concurrent callers
  of the same key (worker threads of a parallel batch) find the
  in-flight future and wait on it instead of recomputing.  That gives
  exactly one computation per unique key regardless of scheduling,
  which is what makes the engine's hit/miss counts deterministic
  across ``--jobs`` settings.
* **completed-value storage** is delegated to a pluggable
  :class:`~repro.engine.backends.CacheBackend` — in-process memory
  (default), a persistent on-disk :class:`~repro.store.ArtifactStore`,
  or a tiered memory-over-disk combination.  The backend reports which
  tier served each hit, so :class:`CacheStats` can attribute warm
  starts to the disk layer.

A failed computation is evicted before its exception propagates, so a
transient error does not poison the key.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from .backends import ORIGIN_DISK, CacheBackend, MemoryBackend

__all__ = ["CacheStats", "CompileCache"]


@dataclass
class CacheStats:
    """Lookup counters of one cache.

    Updates go through :meth:`record_hit` / :meth:`record_miss`, which
    are atomic (an internal lock): the engine's worker pool bumps these
    from many threads at once, and ``+=`` on a shared counter drops
    updates under contention.  ``disk_hits`` counts the subset of hits
    served by a persistent backend tier rather than process memory.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def record_hit(self, origin: str = "memory") -> None:
        with self._lock:
            self.hits += 1
            if origin == ORIGIN_DISK:
                self.disk_hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (f"cache: {self.hits} hits ({self.disk_hits} disk) / "
                f"{self.misses} misses ({self.hit_rate:.1%} hit rate, "
                f"{self.lookups} lookups)")


class CompileCache:
    """Thread-safe content-addressed cache (key -> computed result).

    *backend* selects where completed values live
    (:class:`~repro.engine.backends.MemoryBackend` by default); the
    in-flight future table and the statistics always live in-process.
    """

    def __init__(self, backend: Optional[CacheBackend] = None) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self.backend = backend if backend is not None else MemoryBackend()
        self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self.backend) + len(self._inflight)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._inflight or key in self.backend

    def clear(self) -> None:
        """Drop every completed entry (statistics are kept; in-flight
        computations complete and publish into the cleared backend)."""
        with self._lock:
            self.backend.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = CacheStats()

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, computing it on first use.

        Exactly one caller runs *compute* per key; concurrent callers
        block on the in-flight future.  Either way the lookup is
        counted (miss for the computing caller, hit for everyone else —
        tagged with the backend tier that served it).
        """
        # Optimistic lockless probe: published entries are immutable,
        # so a hit needs no in-flight coordination at all — and a slow
        # disk read never serializes lookups of other keys.
        try:
            value, origin = self.backend.load(key)
        except KeyError:
            pass
        else:
            self._stats.record_hit(origin)
            return value
        with self._lock:
            future = self._inflight.get(key)
            if future is None:
                future = Future()
                self._inflight[key] = future
                owner = True
            else:
                self._stats.record_hit("inflight")
                owner = False
        if not owner:
            return future.result()
        # This caller owns the key.  Re-probe (outside the lock): a
        # previous owner may have published between the optimistic
        # probe and the future installation above.
        try:
            value, origin = self.backend.load(key)
        except KeyError:
            pass
        else:
            self._stats.record_hit(origin)
            return self._resolve(key, future, value, store=False)
        self._stats.record_miss()
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            raise
        return self._resolve(key, future, value, store=True)

    def _resolve(self, key: str, future: Future, value: Any,
                 store: bool) -> Any:
        """Publish *value* (to the backend when *store*), wake waiters,
        and retire the in-flight entry — in that order, so there is no
        window where a key is neither in flight nor in the backend.
        The future resolves and the entry retires even if the backend
        write blows up (waiters must get the computed value, never hang
        on a storage error; the error still propagates to the owner)."""
        try:
            if store:
                self.backend.store(key, value)
        finally:
            future.set_result(value)
            with self._lock:
                self._inflight.pop(key, None)
        return value
