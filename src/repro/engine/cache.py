"""Content-addressed result cache with hit/miss statistics.

The cache separates two concerns:

* **in-flight deduplication** lives here: the first caller of a key
  installs a future and computes the value inline; concurrent callers
  of the same key (worker threads of a parallel batch) find the
  in-flight future and wait on it instead of recomputing.  That gives
  exactly one computation per unique key regardless of scheduling,
  which is what makes the engine's hit/miss counts deterministic
  across ``--jobs`` settings.
* **completed-value storage** is delegated to a pluggable
  :class:`~repro.engine.backends.CacheBackend` — in-process memory
  (default), a persistent on-disk :class:`~repro.store.ArtifactStore`,
  or a tiered memory-over-disk combination.  The backend reports which
  tier served each hit, so :class:`CacheStats` can attribute warm
  starts to the disk layer.

A failed computation is evicted before its exception propagates, so a
transient error does not poison the key.

Observability: every lookup runs under a ``cache.lookup`` span
(:mod:`repro.obs.trace` — a no-op unless tracing is enabled) tagged
with the outcome (``hit`` / ``miss`` / ``inflight-wait``) and serving
tier, and the counters mirror into the process-wide
:data:`repro.obs.metrics.REGISTRY` as ``engine_cache_hits_total`` /
``engine_cache_misses_total`` labeled by cache name and origin.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..obs.metrics import REGISTRY
from ..obs.trace import span as _span
from .backends import ORIGIN_DISK, CacheBackend, MemoryBackend

__all__ = ["CacheStats", "CompileCache"]

_HITS = REGISTRY.counter("engine_cache_hits_total",
                         "cache hits by cache name and serving tier")
_MISSES = REGISTRY.counter("engine_cache_misses_total",
                           "cache misses by cache name")


@dataclass
class CacheStats:
    """Lookup counters of one cache.

    Updates go through :meth:`record_hit` / :meth:`record_miss`, which
    are atomic (an internal lock): the engine's worker pool bumps these
    from many threads at once, and ``+=`` on a shared counter drops
    updates under contention.  ``disk_hits`` counts the subset of hits
    served by a persistent backend tier rather than process memory.

    Readers that need more than one field must use :meth:`snapshot` —
    reading ``hits`` then ``misses`` as separate attribute accesses can
    tear (a concurrent ``record_*`` lands between them and the pair
    never existed together).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    name: str = ""
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def record_hit(self, origin: str = "memory") -> None:
        with self._lock:
            self.hits += 1
            if origin == ORIGIN_DISK:
                self.disk_hits += 1
        _HITS.inc(cache=self.name or "anon", origin=origin)

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1
        _MISSES.inc(cache=self.name or "anon")

    def snapshot(self) -> Dict[str, Any]:
        """All counters from one lock acquisition — a mutually
        consistent view (no torn multi-field reads)."""
        with self._lock:
            hits, misses, disk_hits = self.hits, self.misses, self.disk_hits
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "disk_hits": disk_hits,
            "lookups": lookups,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        snap = self.snapshot()
        return (f"cache: {snap['hits']} hits ({snap['disk_hits']} disk) / "
                f"{snap['misses']} misses ({snap['hit_rate']:.1%} hit rate, "
                f"{snap['lookups']} lookups)")


class CompileCache:
    """Thread-safe content-addressed cache (key -> computed result).

    *backend* selects where completed values live
    (:class:`~repro.engine.backends.MemoryBackend` by default); the
    in-flight future table and the statistics always live in-process.
    *name* labels this cache's series in the metrics registry and its
    spans (the engine names its tiers ``module`` and ``unit``).
    """

    def __init__(self, backend: Optional[CacheBackend] = None,
                 name: str = "") -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self.backend = backend if backend is not None else MemoryBackend()
        self.name = name
        self._stats = CacheStats(name=name)

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self.backend) + len(self._inflight)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._inflight or key in self.backend

    def clear(self) -> None:
        """Drop every completed entry (statistics are kept; in-flight
        computations complete and publish into the cleared backend)."""
        with self._lock:
            self.backend.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = CacheStats(name=self.name)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, computing it on first use.

        Exactly one caller runs *compute* per key; concurrent callers
        block on the in-flight future.  Either way the lookup is
        counted (miss for the computing caller, hit for everyone else —
        tagged with the backend tier that served it).
        """
        sp = _span("cache.lookup")
        try:
            # Optimistic lockless probe: published entries are immutable,
            # so a hit needs no in-flight coordination at all — and a slow
            # disk read never serializes lookups of other keys.
            try:
                value, origin = self.backend.load(key)
            except KeyError:
                pass
            else:
                self._stats.record_hit(origin)
                if sp.recording:
                    sp.set(cache=self.name, outcome="hit", origin=origin)
                return value
            with self._lock:
                future = self._inflight.get(key)
                if future is None:
                    future = Future()
                    self._inflight[key] = future
                    owner = True
                else:
                    self._stats.record_hit("inflight")
                    owner = False
            if not owner:
                if sp.recording:
                    sp.set(cache=self.name, outcome="inflight-wait")
                return future.result()
            # This caller owns the key.  Re-probe (outside the lock): a
            # previous owner may have published between the optimistic
            # probe and the future installation above.
            try:
                value, origin = self.backend.load(key)
            except KeyError:
                pass
            else:
                self._stats.record_hit(origin)
                if sp.recording:
                    sp.set(cache=self.name, outcome="hit", origin=origin)
                return self._resolve(key, future, value, store=False)
            self._stats.record_miss()
            if sp.recording:
                sp.set(cache=self.name, outcome="miss")
            try:
                value = compute()
            except BaseException as exc:
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_exception(exc)
                raise
            return self._resolve(key, future, value, store=True)
        finally:
            sp.end()

    def _resolve(self, key: str, future: Future, value: Any,
                 store: bool) -> Any:
        """Publish *value* (to the backend when *store*), wake waiters,
        and retire the in-flight entry — in that order, so there is no
        window where a key is neither in flight nor in the backend.
        The future resolves and the entry retires even if the backend
        write blows up (waiters must get the computed value, never hang
        on a storage error; the error still propagates to the owner)."""
        try:
            if store:
                self.backend.store(key, value)
        finally:
            future.set_result(value)
            with self._lock:
                self._inflight.pop(key, None)
        return value
