"""Content-addressed result cache with hit/miss statistics.

The cache stores *futures*, not values: the first caller of a key
installs a future and computes the value inline; concurrent callers of
the same key (worker threads of a parallel batch) find the in-flight
future and wait on it instead of recomputing.  That gives exactly one
computation per unique key regardless of scheduling, which is what makes
the engine's hit/miss counts deterministic across ``--jobs`` settings.

A failed computation is evicted before its exception propagates, so a
transient error does not poison the key.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Dict

__all__ = ["CacheStats", "CompileCache"]


@dataclass
class CacheStats:
    """Lookup counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (f"cache: {self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.1%} hit rate, "
                f"{self.lookups} lookups)")


class CompileCache:
    """Thread-safe content-addressed cache (key -> computed result)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Future] = {}
        self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = CacheStats()

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, computing it on first use.

        Exactly one caller runs *compute* per key; concurrent callers
        block on the in-flight future.  Either way the lookup is counted
        (miss for the computing caller, hit for everyone else).
        """
        with self._lock:
            future = self._entries.get(key)
            if future is None:
                future = Future()
                self._entries[key] = future
                self._stats.misses += 1
                owner = True
            else:
                self._stats.hits += 1
                owner = False
        if not owner:
            return future.result()
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                self._entries.pop(key, None)
            future.set_exception(exc)
            raise
        future.set_result(value)
        return value
