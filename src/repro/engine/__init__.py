"""Cached, parallel experiment engine.

The pattern x target x level grid every experiment walks is a
configuration-selection problem over shared work: most cells repeat the
same model optimization or baseline compile.  This package provides the
machinery to exploit that:

* :mod:`~repro.engine.fingerprint` — stable content fingerprints of
  jobs, stamped with the repro serialization schema generation;
* :mod:`~repro.engine.backends` — pluggable value storage
  (:class:`CacheBackend`): in-process memory, the persistent on-disk
  :mod:`repro.store`, tiered memory-over-disk, or consistent-hash
  sharding over N store shards (:class:`ShardedBackend`);
* :mod:`~repro.engine.cache` — a thread-safe content-addressed result
  cache with hit/miss statistics and in-flight deduplication over any
  backend;
* :mod:`~repro.engine.jobs` — job value objects and the deduplicating
  batch planner;
* :mod:`~repro.engine.core` — :class:`ExperimentEngine`, the cached,
  batched, optionally parallel call surface the experiments, CLI,
  benchmarks and the compile service all go through.
"""

from .backends import (CacheBackend, DiskBackend, MemoryBackend,
                       ShardedBackend, TieredBackend, backend_from_spec)
from .cache import CacheStats, CompileCache
from .core import EngineSpec, ExperimentEngine
from .fingerprint import (compile_fingerprint, equivalence_fingerprint,
                          machine_fingerprint, optimize_fingerprint,
                          semantics_key, target_key)
from .jobs import BatchPlan, CompareJob, CompileJob, plan_batch

__all__ = [
    "CacheStats", "CompileCache", "EngineSpec", "ExperimentEngine",
    "CacheBackend", "MemoryBackend", "DiskBackend", "ShardedBackend",
    "TieredBackend", "backend_from_spec",
    "compile_fingerprint", "equivalence_fingerprint",
    "machine_fingerprint", "optimize_fingerprint", "semantics_key",
    "target_key",
    "BatchPlan", "CompareJob", "CompileJob", "plan_batch",
]
