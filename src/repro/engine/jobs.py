"""Job descriptions and the deduplicating batch planner.

A *job* is a value object describing one unit of experiment work:

* :class:`CompileJob` — generate code for one machine with one pattern
  and compile it at one level for one target;
* :class:`CompareJob` — the paper's end-to-end experiment (compile
  as-is, optimize the model, compile again, optionally check behavioral
  equivalence).

:func:`plan_batch` folds a grid of jobs into its unique work by content
fingerprint.  Grids produced by the experiment harnesses are full of
repeats — the unoptimized baseline compile shared across patterns, the
``-O0`` point duplicated between sweeps — and the planner guarantees each
is scheduled once while results are reassembled in the input order, so
batch output is deterministic no matter how many workers ran it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..compiler import OptLevel
from ..compiler.target import TargetDescription
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .fingerprint import (compile_fingerprint, machine_fingerprint,
                          semantics_key, target_key)

__all__ = ["CompileJob", "CompareJob", "BatchPlan", "plan_batch"]


@dataclass(frozen=True, eq=False)
class CompileJob:
    """One machine x pattern x level x target compile."""

    machine: StateMachine
    pattern: str = "nested-switch"
    level: OptLevel = OptLevel.OS
    target: Union[TargetDescription, str, None] = None
    semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
    capture_dumps: bool = False

    def fingerprint(self) -> str:
        return compile_fingerprint(self.machine, self.pattern, self.level,
                                   self.target, self.semantics,
                                   self.capture_dumps)


@dataclass(frozen=True, eq=False)
class CompareJob:
    """One non-optimized vs model-optimized comparison."""

    machine: StateMachine
    pattern: str = "nested-switch"
    level: OptLevel = OptLevel.OS
    model_optimizations: Optional[Sequence[str]] = None
    check_behavior: bool = True
    semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS
    target: Union[TargetDescription, str, None] = None

    def fingerprint(self) -> str:
        selection = ("default" if self.model_optimizations is None
                     else "|".join(self.model_optimizations))
        return "|".join((
            "compare",
            machine_fingerprint(self.machine),
            self.pattern, self.level.value, target_key(self.target),
            semantics_key(self.semantics), selection,
            str(bool(self.check_behavior)),
        ))


@dataclass
class BatchPlan:
    """The deduplicated execution plan of one job grid."""

    #: fingerprint of each input job, in input order.
    order: List[str] = field(default_factory=list)
    #: fingerprint -> one representative job, in first-seen order.
    unique: "Dict[str, object]" = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.order)

    @property
    def n_unique(self) -> int:
        return len(self.unique)

    @property
    def n_deduplicated(self) -> int:
        """Jobs the planner folded away as repeats of earlier work."""
        return self.n_jobs - self.n_unique

    def assemble(self, results_by_fingerprint: Dict[str, object]
                 ) -> List[object]:
        """Results for every input job, in input order."""
        return [results_by_fingerprint[fp] for fp in self.order]


def plan_batch(jobs: Sequence[object]) -> BatchPlan:
    """Fold *jobs* (anything with a ``fingerprint()``) into unique work."""
    plan = BatchPlan()
    for job in jobs:
        fp = job.fingerprint()
        plan.order.append(fp)
        if fp not in plan.unique:
            plan.unique[fp] = job
    return plan
