"""The experiment engine: cached, batched, optionally parallel execution.

:class:`ExperimentEngine` is the one call surface every experiment and
benchmark goes through.  It wraps the :mod:`repro.pipeline` primitives
with

* a **content-addressed cache** (:mod:`repro.engine.cache`) keyed by a
  stable fingerprint of (serialized machine, pattern, opt level, target
  name, semantics config) — repeated work across patterns, sweeps and
  whole experiment reruns is computed once;
* a **batch planner** (:mod:`repro.engine.jobs`) that dedupes a job grid
  before execution and reassembles results in input order;
* a **worker pool** (``jobs=N``) running unique jobs on
  :class:`concurrent.futures.ThreadPoolExecutor`.  Results are
  deterministic by construction: the cache's in-flight futures guarantee
  one computation per key, and batches order results by input position,
  so serial and parallel runs produce byte-identical tables.  Note the
  compiles are pure-Python and GIL-bound, so with CPython ``jobs>1``
  buys overlap of the little I/O there is plus a standing concurrency
  soak of the cache, not a linear speedup — the big wins here are the
  cache and the dedup; the pool keeps the call surface ready for a
  process-based executor.

Engines are cheap; ``ExperimentEngine()`` gives an isolated cache (the
default of every harness function), while sharing one engine across
calls shares its cache — that is how the second run of the full
experiment suite becomes >90 % cache hits.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from ..compiler import CompileResult, DeltaStats, OptLevel
from ..compiler.target import TargetDescription, resolve_target
from ..obs.trace import span as _span
from ..optim import OptimizationReport, check_equivalence, optimize
from ..optim.equivalence import EquivalenceReport
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .backends import CacheBackend, backend_from_spec
from .cache import CacheStats, CompileCache
from .fingerprint import (compile_fingerprint, conformance_fingerprint,
                          equivalence_fingerprint, machine_fingerprint,
                          optimize_fingerprint)
from .jobs import BatchPlan, CompareJob, CompileJob, plan_batch

__all__ = ["EngineSpec", "ExperimentEngine"]

T = TypeVar("T")


@dataclass(frozen=True)
class EngineSpec:
    """Picklable recipe for an :class:`ExperimentEngine`.

    The compile cluster's worker processes cannot share a live engine
    (caches hold unpicklable in-flight futures and open stores), but
    they can share the *recipe*: each worker rebuilds its own engine
    from one spec, so every worker gets the same backend topology — in
    particular the same consistent-hash shard set under ``cache_dir``
    — and the same delta-compile configuration, which is what makes N
    per-process unit-tier caches behave as one coherent farm over the
    shared on-disk shards.

    Only spec *strings* are allowed for the backend (live
    :class:`~repro.engine.backends.CacheBackend` objects don't cross
    process boundaries).
    """

    jobs: int = 1
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    shards: int = 1
    max_bytes: Optional[int] = None
    delta: bool = True

    def __post_init__(self) -> None:
        if self.backend is not None and not isinstance(self.backend, str):
            raise TypeError("EngineSpec.backend must be a spec string "
                            "(picklability is the point)")

    def build(self) -> "ExperimentEngine":
        """A fresh engine following this recipe (one per worker)."""
        return ExperimentEngine(jobs=self.jobs, backend=self.backend,
                                cache_dir=self.cache_dir,
                                shards=self.shards,
                                max_bytes=self.max_bytes,
                                delta=self.delta)


class ExperimentEngine:
    """Cached, deduplicating, parallel executor of experiment jobs.

    ``jobs`` is the worker-pool width (1 = serial, the default);
    ``cache`` lets callers share one :class:`CompileCache` across
    engines (a fresh private cache otherwise).  Instead of a cache,
    callers may pass a ``backend`` (any
    :class:`~repro.engine.backends.CacheBackend`, or a spec string
    ``"memory"``/``"disk"``/``"tiered"``) and/or a ``cache_dir`` — a
    directory turns the cache persistent
    (:class:`~repro.store.ArtifactStore` under a tiered memory-over-disk
    backend by default), which is how a second process run of the same
    experiments is served warm from disk.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[CompileCache] = None,
                 backend: "Union[CacheBackend, str, None]" = None,
                 cache_dir: Optional[str] = None,
                 shards: int = 1,
                 max_bytes: Optional[int] = None,
                 delta: bool = True) -> None:
        self.jobs = max(1, int(jobs))
        if cache is not None:
            if backend is not None or cache_dir is not None:
                raise ValueError(
                    "pass either cache= or backend=/cache_dir=, not both")
            self.cache = cache
        else:
            if backend is None or isinstance(backend, str):
                backend = backend_from_spec(backend, cache_dir=cache_dir,
                                            max_bytes=max_bytes,
                                            shards=shards)
            elif cache_dir is not None:
                raise ValueError(
                    "cache_dir= only applies to backend spec strings")
            self.cache = CompileCache(backend, name="module")
        #: Route whole-module cache misses through the per-unit delta
        #: path (:func:`repro.pipeline.compile_machine_delta`)?  The
        #: unit tier shares the module cache's backend — unit
        #: fingerprints carry their own kind tag, so the key spaces
        #: never collide, and a persistent backend persists units too.
        self.delta = bool(delta)
        self.units = CompileCache(getattr(self.cache, "backend", None),
                                  name="unit")
        self.delta_stats = DeltaStats()

    # -- cached primitives --------------------------------------------------

    def compile_machine(self, machine: StateMachine,
                        pattern: str = "nested-switch",
                        level: OptLevel = OptLevel.OS,
                        capture_dumps: bool = False,
                        target: Union[TargetDescription, str, None] = None,
                        semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                        ) -> CompileResult:
        """Cached :func:`repro.pipeline.compile_machine`.

        Module-cache misses route through the per-unit delta path
        (structure sharing: units whose lowered IR is unchanged come
        from the unit tier and only the rest recompile) unless
        ``capture_dumps`` asks for whole-program IR snapshots — those
        are inherently monolithic — or the engine was built with
        ``delta=False``.  Both paths produce byte-identical modules.
        """
        from ..pipeline import compile_machine as _compile_machine
        from ..pipeline import compile_machine_delta
        key = compile_fingerprint(machine, pattern, level, target,
                                  semantics, capture_dumps)

        def compute() -> CompileResult:
            if self.delta and not capture_dumps:
                return compile_machine_delta(
                    machine, pattern=pattern, level=level, target=target,
                    unit_cache=self.units, stats_out=self.delta_stats)
            return _compile_machine(machine, pattern=pattern, level=level,
                                    capture_dumps=capture_dumps,
                                    target=target)

        sp = _span("engine.compile")
        if sp.recording:
            sp.set(machine=machine.name, pattern=pattern, level=level.value)
        with sp:
            return self.cache.get_or_compute(key, compute)

    def optimize_model(self, machine: StateMachine,
                       selection: Optional[Sequence[str]] = None,
                       semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                       ) -> OptimizationReport:
        """Cached model-level optimization (:func:`repro.optim.optimize`).

        This is the shared sub-work of every comparison: one optimized
        model feeds all patterns, targets and levels of a grid.
        """
        key = optimize_fingerprint(machine, selection, semantics)
        return self.cache.get_or_compute(
            key, lambda: optimize(machine, selection=selection,
                                  semantics=semantics))

    def equivalence(self, original: StateMachine, optimized: StateMachine,
                    semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                    ) -> EquivalenceReport:
        """Cached behavioral-equivalence check."""
        key = equivalence_fingerprint(original, optimized, semantics)
        return self.cache.get_or_compute(
            key, lambda: check_equivalence(original, optimized,
                                           semantics=semantics))

    def vm_conformance(self, machine: StateMachine,
                       pattern: str = "nested-switch",
                       level: OptLevel = OptLevel.OS,
                       target: Union[TargetDescription, str, None] = None,
                       semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                       scenario_machine: Optional[StateMachine] = None,
                       exhaustive_depth: int = 2, n_random: int = 8,
                       random_length: int = 10, seed: int = 0xFACE):
        """Cached VM conformance check + dynamic metrics
        (:func:`repro.vm.check_vm_conformance`).

        One cached run serves both consumers: the conformance verdict
        and the simulated cycles/event that the dynamics experiments
        report.  ``scenario_machine`` selects whose alphabet generates
        the scenario set (default: *machine* itself) — pass the
        original machine when measuring its optimized clone, so both
        sides of a before/after comparison replay the *same* event
        sequences (the optimized machine must ignore events it
        dropped, exactly as :meth:`equivalence` exercises).
        """
        from ..vm.conformance import (check_vm_conformance,
                                      conformance_scenarios)
        source = scenario_machine if scenario_machine is not None \
            else machine
        params = {"exhaustive_depth": exhaustive_depth,
                  "n_random": n_random, "random_length": random_length,
                  "seed": seed,
                  "scenario_machine": machine_fingerprint(source)}
        key = conformance_fingerprint(machine, pattern, level, target,
                                      semantics, params)

        def compute():
            scenarios = conformance_scenarios(
                source, exhaustive_depth=exhaustive_depth,
                n_random=n_random, random_length=random_length, seed=seed)
            return check_vm_conformance(machine, pattern=pattern,
                                        level=level, target=target,
                                        semantics=semantics,
                                        scenarios=scenarios)

        return self.cache.get_or_compute(key, compute)

    def fleet_conformance(self, machine: StateMachine,
                          semantics: SemanticsConfig =
                          UML_DEFAULT_SEMANTICS,
                          wide_lanes: int = 64,
                          exhaustive_depth: int = 2, n_random: int = 8,
                          random_length: int = 10, seed: int = 0xFACE):
        """Cached fleet conformance check
        (:func:`repro.fleet.check_fleet_conformance`): the vectorized
        table engine against the reference interpreter on the same
        scenario construction :meth:`vm_conformance` uses."""
        from ..fleet.conformance import check_fleet_conformance
        from ..vm.conformance import conformance_scenarios
        from .fingerprint import fleet_conformance_fingerprint
        params = {"exhaustive_depth": exhaustive_depth,
                  "n_random": n_random, "random_length": random_length,
                  "seed": seed, "wide_lanes": wide_lanes}
        key = fleet_conformance_fingerprint(machine, semantics, params)

        def compute():
            scenarios = conformance_scenarios(
                machine, exhaustive_depth=exhaustive_depth,
                n_random=n_random, random_length=random_length, seed=seed)
            return check_fleet_conformance(machine, semantics=semantics,
                                           scenarios=scenarios,
                                           wide_lanes=wide_lanes)

        return self.cache.get_or_compute(key, compute)

    def tune(self, machine: StateMachine,
             target: Union[TargetDescription, str, None] = None,
             objective=None, profile=None,
             patterns: Optional[Sequence[str]] = None,
             levels: Optional[Sequence[OptLevel]] = None,
             semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS):
        """Cached autotuner search (:func:`repro.tune.run_search`).

        Two cache tiers cooperate: each cell's model optimization and
        VM measurement is independently cached (a warm engine re-tunes
        a machine without a single new simulation), and the finished
        :class:`~repro.tune.record.TuningRecord` is itself an artifact
        under a ``tune`` fingerprint — with a persistent ``cache_dir``
        the record survives the process and a warm rerun is one disk
        read.  Cells run on the engine's worker pool.
        """
        from ..codegen import ALL_PATTERNS
        from ..tune.record import EventProfile, ObjectiveWeights
        from ..tune.search import DEFAULT_LEVELS, run_search
        from .fingerprint import tune_fingerprint
        objective = objective if objective is not None \
            else ObjectiveWeights()
        profile = profile if profile is not None else EventProfile()
        pattern_names = list(patterns) if patterns is not None \
            else [gen_cls.name for gen_cls in ALL_PATTERNS]
        level_list = list(levels) if levels is not None \
            else list(DEFAULT_LEVELS)
        key = tune_fingerprint(machine, target, objective.key(),
                               profile.key(), pattern_names, level_list,
                               semantics)
        return self.cache.get_or_compute(
            key, lambda: run_search(self, machine, target=target,
                                    objective=objective, profile=profile,
                                    patterns=pattern_names,
                                    levels=level_list,
                                    semantics=semantics))

    # -- pipeline-level operations ------------------------------------------

    def run_pipeline(self, machine: StateMachine,
                     pattern: str = "nested-switch",
                     level: OptLevel = OptLevel.OS,
                     model_optimizations: Optional[Sequence[str]] = None,
                     optimize_model: bool = True,
                     semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                     target: Union[TargetDescription, str, None] = None,
                     ):
        """Cached equivalent of :func:`repro.pipeline.run_pipeline`."""
        from ..pipeline import PipelineResult
        report: Optional[OptimizationReport] = None
        source = machine
        if optimize_model:
            report = self.optimize_model(
                machine, selection=model_optimizations, semantics=semantics)
            source = report.optimized
        compile_result = self.compile_machine(
            source, pattern=pattern, level=level, target=target,
            semantics=semantics)
        return PipelineResult(machine=machine, pattern=pattern,
                              opt_level=level, model_report=report,
                              compile_result=compile_result)

    def optimize_and_compare(self, machine: StateMachine,
                             pattern: str = "nested-switch",
                             level: OptLevel = OptLevel.OS,
                             model_optimizations: Optional[Sequence[str]]
                             = None,
                             check_behavior: bool = True,
                             semantics: SemanticsConfig =
                             UML_DEFAULT_SEMANTICS,
                             target: Union[TargetDescription, str, None]
                             = None,
                             tuned: bool = False,
                             ):
        """Cached equivalent of :func:`repro.pipeline.optimize_and_compare`.

        The model optimization, both compiles and the equivalence check
        are cached independently, so a grid of comparisons shares its
        baseline compiles and optimized models across cells.

        ``tuned=True`` asks the autotuner first: pattern, level and
        pass selection are taken from the winning cell of
        :meth:`tune` for this machine/target (the explicit ``pattern``
        / ``level`` / ``model_optimizations`` arguments are ignored),
        so the comparison answers "what does the measured-best
        configuration save" instead of "what does this configuration
        save".  Raises :class:`repro.tune.TuningError` when no
        conformant configuration exists.
        """
        from ..pipeline import CompareResult
        tgt = resolve_target(target)
        if tuned:
            winner = self.tune(machine, target=tgt,
                               semantics=semantics).require_winner()
            pattern = winner.pattern
            level = OptLevel(winner.level)
            model_optimizations = list(winner.passes)
        report = self.optimize_model(machine,
                                     selection=model_optimizations,
                                     semantics=semantics)
        size_before = self.compile_machine(
            machine, pattern, level, target=tgt,
            semantics=semantics).total_size
        size_after = self.compile_machine(
            report.optimized, pattern, level, target=tgt,
            semantics=semantics).total_size
        if check_behavior:
            equivalence = self.equivalence(machine, report.optimized,
                                           semantics=semantics)
        else:
            equivalence = EquivalenceReport()
        return CompareResult(machine_name=machine.name, pattern=pattern,
                             size_before=size_before,
                             size_after=size_after,
                             model_report=report, equivalence=equivalence,
                             target_name=tgt.name)

    # -- batch execution ----------------------------------------------------

    def run_batch(self, jobs: Sequence[CompileJob]) -> List[CompileResult]:
        """Execute a grid of compile jobs; results in input order."""
        return self.run_batch_planned(jobs)[0]

    def run_batch_planned(self, jobs: Sequence[CompileJob]
                          ) -> "tuple[List[CompileResult], BatchPlan]":
        """Like :meth:`run_batch`, also returning the executed
        :class:`BatchPlan` (dedup counts etc.) — planning happens once."""
        return self._run_planned(jobs, self._run_compile_job)

    def compare_batch(self, jobs: Sequence[CompareJob]) -> List:
        """Execute a grid of comparison jobs; results in input order."""
        return self._run_planned(jobs, self._run_compare_job)[0]

    def _run_compile_job(self, job: CompileJob) -> CompileResult:
        return self.compile_machine(job.machine, pattern=job.pattern,
                                    level=job.level,
                                    capture_dumps=job.capture_dumps,
                                    target=job.target,
                                    semantics=job.semantics)

    def _run_compare_job(self, job: CompareJob):
        return self.optimize_and_compare(
            job.machine, pattern=job.pattern, level=job.level,
            model_optimizations=job.model_optimizations,
            check_behavior=job.check_behavior, semantics=job.semantics,
            target=job.target)

    def _run_planned(self, jobs: Sequence, run_one: Callable
                     ) -> "tuple[List, BatchPlan]":
        plan: BatchPlan = plan_batch(jobs)
        unique = list(plan.unique.items())
        values = self.map(lambda item: run_one(item[1]), unique)
        results: Dict[str, object] = {fp: value for (fp, _), value
                                      in zip(unique, values)}
        return plan.assemble(results), plan

    def map(self, fn: Callable[..., T], items: Sequence) -> List[T]:
        """Apply *fn* over *items* on the worker pool, preserving order."""
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
                max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    # -- introspection ------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def unit_stats(self) -> CacheStats:
        """Lookup counters of the per-unit cache tier."""
        return self.units.stats

    def describe(self) -> str:
        backend = getattr(self.cache, "backend", None)
        backend_note = f", backend={backend.name}" if backend is not None \
            else ""
        unit = self.unit_stats
        unit_note = ""
        if self.delta or unit.lookups:
            unit_note = (f"; units: {unit.hits} hits "
                         f"({unit.disk_hits} disk) / {unit.misses} misses")
        return (f"engine(jobs={self.jobs}{backend_note}): "
                f"{self.stats.summary()}{unit_note}")
