"""Stable content fingerprints for the experiment engine's cache keys.

A fingerprint is a SHA-256 digest over a canonical JSON rendering of
everything that determines a job's result:

* the **serialized machine** (via :func:`repro.uml.serialize.machine_to_dict`
  with sorted keys — structurally identical machines fingerprint
  identically even when they are distinct Python objects);
* the **pattern** name, the **optimization level**, the resolved
  **target name**, and the **semantics configuration**;
* job-type-specific extras (``capture_dumps`` for compiles, the pass
  selection for model optimizations, the scenario parameters for
  equivalence checks).

Fingerprints are *content-addressed*: rebuilding the same machine from
scratch (same builder calls, same seed) hits the same cache entry, while
any change to any key component — including the target or semantics —
misses.

Every digest also folds in the repro **schema stamp**
(:func:`repro.schema.schema_stamp`).  Keys may outlive the process via
the on-disk store (:mod:`repro.store`), and an artifact pickled by an
older serialization generation must not satisfy a newer key: bumping
``repro.schema.SCHEMA_VERSION`` (or the machine JSON format version)
changes every fingerprint, so stale on-disk entries become misses
instead of deserializing wrongly.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Optional, Sequence, Union

from ..compiler import OptLevel
from ..compiler.target import TargetDescription, resolve_target
from ..schema import schema_stamp
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.serialize import machine_to_dict
from ..uml.statemachine import StateMachine

__all__ = ["machine_fingerprint", "semantics_key", "target_key",
           "compile_fingerprint", "optimize_fingerprint",
           "equivalence_fingerprint", "conformance_fingerprint",
           "stimuli_key", "interp_observation_fingerprint",
           "vm_observation_fingerprint", "fleet_observation_fingerprint",
           "fleet_conformance_fingerprint", "tune_fingerprint"]


#: Per-object memo so repeated lookups of the same machine (the engine
#: fingerprints a machine several times per comparison) don't
#: re-serialize it.  Machines are immutable once built by repo
#: convention (the optimizer clones, never mutates), which is what makes
#: identity-keyed memoization sound.
_machine_fp_memo: "weakref.WeakKeyDictionary[StateMachine, str]" = \
    weakref.WeakKeyDictionary()


def machine_fingerprint(machine: StateMachine) -> str:
    """Digest of the machine's canonical serialized form."""
    try:
        return _machine_fp_memo[machine]
    except (KeyError, TypeError):
        pass
    payload = json.dumps(machine_to_dict(machine), sort_keys=True,
                         separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    try:
        _machine_fp_memo[machine] = digest
    except TypeError:  # unhashable/unweakrefable machine subclass
        pass
    return digest


def semantics_key(semantics: SemanticsConfig) -> str:
    """Canonical string for every semantic variation point."""
    return json.dumps({
        "event_pool": semantics.event_pool.value,
        "unconsumed_events": semantics.unconsumed_events.value,
        "conflict_resolution": semantics.conflict_resolution.value,
        "completion_priority": semantics.completion_priority,
        "max_rtc_steps": semantics.max_run_to_completion_steps,
    }, sort_keys=True, separators=(",", ":"))


def target_key(target: Union[TargetDescription, str, None]) -> str:
    """Resolved target name (the registry is keyed by name)."""
    return resolve_target(target).name


def _digest(kind: str, *components: str) -> str:
    hasher = hashlib.sha256()
    hasher.update(schema_stamp().encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(kind.encode("utf-8"))
    for component in components:
        hasher.update(b"\x00")
        hasher.update(component.encode("utf-8"))
    return hasher.hexdigest()


def compile_fingerprint(machine: StateMachine, pattern: str,
                        level: OptLevel,
                        target: Union[TargetDescription, str, None],
                        semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                        capture_dumps: bool = False) -> str:
    """Key of one generate+compile job."""
    return _digest("compile", machine_fingerprint(machine), pattern,
                   level.value, target_key(target),
                   semantics_key(semantics), str(bool(capture_dumps)))


def optimize_fingerprint(machine: StateMachine,
                         selection: Optional[Sequence[str]],
                         semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                         ) -> str:
    """Key of one model-optimization job."""
    selection_key = ("default" if selection is None
                     else json.dumps(list(selection)))
    return _digest("optimize", machine_fingerprint(machine), selection_key,
                   semantics_key(semantics))


def equivalence_fingerprint(original: StateMachine,
                            optimized: StateMachine,
                            semantics: SemanticsConfig =
                            UML_DEFAULT_SEMANTICS) -> str:
    """Key of one behavioral-equivalence check."""
    return _digest("equivalence", machine_fingerprint(original),
                   machine_fingerprint(optimized), semantics_key(semantics))


def stimuli_key(stimuli) -> str:
    """Canonical string for a fuzz stimulus set: a sequence of event
    sequences, each event a ``(name, payload)`` pair.  Plain data on
    purpose — the fingerprint layer never imports fuzz types."""
    return json.dumps([[[str(n), int(p)] for n, p in stimulus]
                       for stimulus in stimuli],
                      separators=(",", ":"))


def interp_observation_fingerprint(machine: StateMachine, stimuli,
                                   semantics: SemanticsConfig =
                                   UML_DEFAULT_SEMANTICS) -> str:
    """Key of one reference-interpreter observation run
    (:func:`repro.fuzz.observe.observe_interpreter_many`)."""
    return _digest("interp-observe", machine_fingerprint(machine),
                   stimuli_key(stimuli), semantics_key(semantics))


def vm_observation_fingerprint(machine: StateMachine, stimuli,
                               pattern: str, level: OptLevel,
                               target: Union[TargetDescription, str, None],
                               ) -> str:
    """Key of one compiled-VM observation run
    (:func:`repro.fuzz.observe.observe_vm_many`)."""
    return _digest("vm-observe", machine_fingerprint(machine),
                   stimuli_key(stimuli), pattern, level.value,
                   target_key(target))


def fleet_observation_fingerprint(machine: StateMachine, stimuli,
                                  semantics: SemanticsConfig =
                                  UML_DEFAULT_SEMANTICS) -> str:
    """Key of one fleet-engine observation run
    (:func:`repro.fuzz.observe.observe_fleet_many`)."""
    return _digest("fleet-observe", machine_fingerprint(machine),
                   stimuli_key(stimuli), semantics_key(semantics))


def fleet_conformance_fingerprint(machine: StateMachine,
                                  semantics: SemanticsConfig =
                                  UML_DEFAULT_SEMANTICS,
                                  scenario_params: Optional[dict] = None,
                                  ) -> str:
    """Key of one fleet conformance run (interpreter vs. table engine,
    scalar and vectorized paths)."""
    params_key = json.dumps(scenario_params or {}, sort_keys=True,
                            separators=(",", ":"))
    return _digest("fleet-conformance", machine_fingerprint(machine),
                   semantics_key(semantics), params_key)


def tune_fingerprint(machine: StateMachine,
                     target: Union[TargetDescription, str, None],
                     objective_key: str, profile_key: str,
                     patterns: Sequence[str],
                     levels: Sequence[OptLevel],
                     semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                     ) -> str:
    """Key of one autotuner search (:meth:`ExperimentEngine.tune`).

    ``objective_key`` / ``profile_key`` are the canonical strings of
    :class:`repro.tune.record.ObjectiveWeights` /
    :class:`~repro.tune.record.EventProfile` — the fingerprint layer
    stays free of tune imports, like it is for fuzz stimuli.  The
    pattern and level axes key the record too: searching a narrower
    lattice is a different question with a different answer.
    """
    axes_key = json.dumps({"patterns": list(patterns),
                           "levels": [lv.value for lv in levels]},
                          sort_keys=True, separators=(",", ":"))
    return _digest("tune", machine_fingerprint(machine),
                   target_key(target), objective_key, profile_key,
                   axes_key, semantics_key(semantics))


def conformance_fingerprint(machine: StateMachine, pattern: str,
                            level: OptLevel,
                            target: Union[TargetDescription, str, None],
                            semantics: SemanticsConfig =
                            UML_DEFAULT_SEMANTICS,
                            scenario_params: Optional[dict] = None) -> str:
    """Key of one VM conformance run (interpreter vs. executed code).

    ``scenario_params`` are the :func:`repro.vm.conformance_scenarios`
    knobs — the scenario set is a deterministic function of the machine
    alphabet and these parameters, so they key the cache entry.
    """
    params_key = json.dumps(scenario_params or {}, sort_keys=True,
                            separators=(",", ":"))
    return _digest("vm-conformance", machine_fingerprint(machine), pattern,
                   level.value, target_key(target),
                   semantics_key(semantics), params_key)
