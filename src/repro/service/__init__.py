"""Batch compile service: compilation offered over a socket.

The engine (:mod:`repro.engine`) made repeated work cheap *within* a
process and the store (:mod:`repro.store`) made artifacts outlive one;
this package makes compilation a *service* so many clients — CLI
invocations, CI shards, notebooks — share one hot engine without
sharing a process:

* :mod:`~repro.service.protocol` — the JSON-lines wire format: request
  and response shapes, machine/semantics (de)serialization, and the
  canonical result payload (built by the same function the in-process
  path uses, so service answers are identical to local engine runs);
* :mod:`~repro.service.server` — :class:`CompileService`, an asyncio
  server over a unix socket or TCP port fronting one
  :class:`~repro.engine.ExperimentEngine`: identical in-flight requests
  are coalesced onto one computation, batches are deduplicated by the
  engine's planner, and per-client statistics are kept;
  :class:`ServiceThread` runs the whole thing on a background thread
  for examples/tests;
* :mod:`~repro.service.client` — :class:`ServiceClient`, a thin
  blocking client.

CLI: ``python -m repro.service serve|submit|stats``.
"""

from .client import ServiceClient, ServiceError
from .protocol import (compile_params, compile_result_payload,
                       job_from_params, parse_opt_level,
                       semantics_from_dict, semantics_to_dict)
from .server import CompileService, ServiceThread, start_service

__all__ = [
    "ServiceClient", "ServiceError",
    "CompileService", "ServiceThread", "start_service",
    "compile_params", "compile_result_payload", "job_from_params",
    "parse_opt_level", "semantics_from_dict", "semantics_to_dict",
]
