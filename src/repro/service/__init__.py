"""Batch compile service: compilation offered over a socket, scalable
to a multi-worker sharded cluster.

The engine (:mod:`repro.engine`) made repeated work cheap *within* a
process and the store (:mod:`repro.store`) made artifacts outlive one;
this package makes compilation a *service* so many clients — CLI
invocations, CI shards, notebooks — share one hot engine without
sharing a process:

* :mod:`~repro.service.protocol` — the JSON-lines wire format: request
  and response shapes, machine/semantics (de)serialization, and the
  canonical result payload (built by the same function the in-process
  path uses, so service answers are identical to local engine runs);
* :mod:`~repro.service.server` — :class:`CompileService`, an asyncio
  server over a unix socket or TCP port.  In-process mode fronts one
  :class:`~repro.engine.ExperimentEngine`; cluster mode
  (``workers=N``) runs compiles on a process pool over a
  consistent-hash-sharded store, with bounded-queue backpressure
  (``busy`` replies) and a ``metrics`` endpoint.
  :class:`ServiceThread` runs the whole thing on a background thread
  for examples/tests;
* :mod:`~repro.service.workers` — :class:`WorkerPool`, the fault-
  tolerant process pool (dead workers are respawned, interrupted
  chunks retried);
* :mod:`~repro.service.batching` — batch dedup, the unit-cache
  locality sort, and chunk planning;
* :mod:`~repro.service.metrics` — latency histograms and the
  scrape-stable ``metrics`` JSON document;
* :mod:`~repro.service.loadgen` — mixed-workload load generator and
  payload verifier (the CI SLO gate's measurement core);
* :mod:`~repro.service.client` — :class:`ServiceClient`, a thin
  blocking client with busy-reply backoff.

CLI: ``python -m repro.service serve|submit|stats|metrics|loadgen``.
"""

from .batching import (dedup_params, params_digest, plan_chunks,
                       sort_for_locality)
from .client import ServiceBusy, ServiceClient, ServiceError
from .loadgen import (LoadgenSpec, LoadReport, build_corpus, run_load,
                      verify_payloads)
from .metrics import METRICS_SCHEMA_VERSION, ServiceMetrics
from .protocol import (compile_params, compile_result_payload,
                       job_from_params, parse_opt_level,
                       semantics_from_dict, semantics_to_dict)
from .server import (BusyRejection, CompileService, ServiceThread,
                     start_service)
from .workers import PoolStats, WorkerPool

__all__ = [
    "ServiceClient", "ServiceError", "ServiceBusy",
    "CompileService", "ServiceThread", "start_service", "BusyRejection",
    "WorkerPool", "PoolStats",
    "ServiceMetrics", "METRICS_SCHEMA_VERSION",
    "LoadgenSpec", "LoadReport", "build_corpus", "run_load",
    "verify_payloads",
    "params_digest", "dedup_params", "sort_for_locality", "plan_chunks",
    "compile_params", "compile_result_payload", "job_from_params",
    "parse_opt_level", "semantics_from_dict", "semantics_to_dict",
]
