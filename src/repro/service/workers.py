""":class:`WorkerPool` — compile workers in separate processes.

The asyncio server's default executor is a *thread* pool: pure-Python
compiles are GIL-bound there, so one busy compile starves the rest and
N threads buy no throughput.  This pool runs compiles in N worker
**processes** instead.  Each worker rebuilds its own
:class:`~repro.engine.ExperimentEngine` from a picklable
:class:`~repro.engine.EngineSpec` (live engines don't cross process
boundaries), so every worker owns a private in-memory cache plus the
PR 7 unit-tier delta cache — while a spec with ``cache_dir``/``shards``
points them all at one consistent-hash-sharded on-disk store, making
the farm's persistent cache coherent without any cross-process locks
(the :class:`~repro.store.ArtifactStore` is multi-process-safe by
construction).

Work travels as *chunks*: lists of wire-level compile params.  A chunk
is executed start-to-finish by one worker, which is what makes the
locality sort (:mod:`repro.service.batching`) pay off — near-duplicate
jobs grouped into one chunk hit that worker's warm unit cache.
Workers return the canonical result payloads
(:func:`~repro.service.protocol.compile_result_payload`), so a
cluster-served response is byte-identical to an in-process compile.

**Fault tolerance**: an abruptly dead worker breaks the whole
``ProcessPoolExecutor`` (every pending future raises
``BrokenProcessPool``).  The pool treats that as a *pool generation*
change: the first completion callback to notice rebuilds the executor
exactly once, and every interrupted chunk is resubmitted on the new
generation, up to ``max_retries`` times.  Deterministic failures (a
malformed machine) are *not* retried — they propagate to the one
request that caused them.  All fault counters surface in the
``metrics`` endpoint.

Workers honor test-only *chaos* directives (``{"chaos": {...}}`` in a
job's params) **only** when the pool was built with
``allow_chaos=True`` — the fault-injection suite uses them to kill a
worker mid-batch (``exit_before`` a marker file: die once, then
succeed on retry), to crash-loop (``exit_always``), and to stub a slow
worker (``sleep``).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence

from ..engine import EngineSpec
from ..obs.trace import SpanContext, get_tracer

__all__ = ["WorkerPool", "PoolStats"]

#: Counters a worker's cache snapshot carries (summed across workers).
_STAT_KEYS = ("jobs", "hits", "misses", "disk_hits", "unit_hits",
              "unit_misses", "unit_disk_hits", "reused_units",
              "compiled_units")


# ---------------------------------------------------------------------------
# worker-process side (module-level: must be picklable by spawn)
# ---------------------------------------------------------------------------

_WORKER_ENGINE = None
_WORKER_TOKEN = ""
_WORKER_CHAOS = False
_WORKER_JOBS = 0


def _init_worker(spec: EngineSpec, allow_chaos: bool) -> None:
    global _WORKER_ENGINE, _WORKER_TOKEN, _WORKER_CHAOS, _WORKER_JOBS
    _WORKER_ENGINE = spec.build()
    _WORKER_TOKEN = os.urandom(8).hex()
    _WORKER_CHAOS = bool(allow_chaos)
    _WORKER_JOBS = 0


def _apply_chaos(chaos: Dict[str, Any]) -> None:
    """Honor one job's fault-injection directive (test pools only)."""
    sleep_s = chaos.get("sleep")
    if sleep_s:
        time.sleep(float(sleep_s))
    marker = chaos.get("exit_before")
    if marker:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass                 # already died here once: proceed
        else:
            os.close(fd)
            os._exit(13)         # simulate a hard worker death mid-chunk
    if chaos.get("exit_always"):
        os._exit(13)


def _stats_snapshot() -> Dict[str, Any]:
    engine = _WORKER_ENGINE
    # snapshot() reads each CacheStats under one lock acquisition — a
    # field-by-field read here could tear against a concurrent compile.
    stats = engine.stats.snapshot()
    units = engine.unit_stats.snapshot()
    delta = engine.delta_stats
    return {
        "token": _WORKER_TOKEN,
        "pid": os.getpid(),
        "jobs": _WORKER_JOBS,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "disk_hits": stats["disk_hits"],
        "unit_hits": units["hits"],
        "unit_misses": units["misses"],
        "unit_disk_hits": units["disk_hits"],
        "reused_units": delta.reused_units,
        "compiled_units": delta.compiled_units,
    }


def _run_chunk(chunk: Sequence[Dict[str, Any]],
               trace_ctx: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
    """Compile every job of *chunk* on this worker's engine.

    *trace_ctx* is the server's batch-span wire context; when present,
    this worker's spans (chunk, per-job compile, and everything the
    engine emits underneath) re-parent under it and ship back in the
    reply's ``spans`` field, piggybacked on the payloads.
    """
    global _WORKER_JOBS
    from .protocol import compile_result_payload, job_from_params
    tracer = get_tracer()
    parent = SpanContext.from_wire(trace_ctx)
    chunk_span = tracer.span("worker.chunk", parent=parent)
    if chunk_span.recording:
        chunk_span.set(jobs=len(chunk), pid=os.getpid())
    started = time.perf_counter()
    payloads: List[Dict[str, Any]] = []
    with chunk_span:
        for params in chunk:
            if _WORKER_CHAOS and isinstance(params.get("chaos"), dict):
                _apply_chaos(params["chaos"])
            job = job_from_params(params)
            with tracer.span("worker.compile") as job_span:
                result = _WORKER_ENGINE.compile_machine(
                    job.machine, pattern=job.pattern, level=job.level,
                    target=job.target, semantics=job.semantics)
                if job_span.recording:
                    job_span.set(machine=job.machine.name,
                                 pattern=job.pattern)
            payloads.append(compile_result_payload(
                job, result, want_asm=bool(params.get("want_asm"))))
            _WORKER_JOBS += 1
    reply = {
        "payloads": payloads,
        "busy_s": time.perf_counter() - started,
        "stats": _stats_snapshot(),
    }
    if chunk_span.recording:
        reply["spans"] = tracer.drain(chunk_span.trace_id)
    return reply


def _ping(sleep_s: float) -> str:
    """Startup barrier task: occupy one worker long enough that the
    pool spins up its siblings; returns the worker token."""
    time.sleep(sleep_s)
    return _WORKER_TOKEN


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------

class PoolStats:
    """Thread-safe fault counters of one pool."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.deaths = 0            # pool-breaking worker exits observed
        self.restarts = 0          # executor rebuilds performed
        self.retried_chunks = 0    # chunks resubmitted after a death
        self.failed_chunks = 0     # chunks abandoned (retries exhausted)

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {"deaths": self.deaths, "restarts": self.restarts,
                    "retried_chunks": self.retried_chunks,
                    "failed_chunks": self.failed_chunks}


class WorkerPool:
    """N compile-worker processes behind a retrying submit surface."""

    def __init__(self, spec: EngineSpec, workers: int,
                 allow_chaos: bool = False, max_retries: int = 2,
                 mp_method: Optional[str] = None) -> None:
        self.spec = spec
        self.workers = max(1, int(workers))
        self.allow_chaos = bool(allow_chaos)
        self.max_retries = max(0, int(max_retries))
        # spawn by default: forking a live asyncio server process (event
        # loop + executor threads holding locks) is a deadlock lottery.
        self._mp_method = mp_method or "spawn"
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self._worker_stats: Dict[str, Dict[str, Any]] = {}
        self._executor = self._new_executor()

    # -- lifecycle ----------------------------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(self._mp_method)
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context,
            initializer=_init_worker,
            initargs=(self.spec, self.allow_chaos))

    def wait_ready(self, timeout: float = 60.0) -> int:
        """Block until every worker process has built its engine;
        returns the number of distinct workers seen.  Load generators
        call this so pool spin-up is excluded from throughput windows.
        """
        barrier = [self._executor.submit(_ping, 0.2)
                   for _ in range(self.workers)]
        tokens = {future.result(timeout=timeout) for future in barrier}
        return len(tokens)

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            executor = self._executor
        executor.shutdown(wait=False, cancel_futures=True)

    # -- submission ---------------------------------------------------------

    def submit_chunk(self, chunk: Sequence[Dict[str, Any]],
                     trace_ctx: Optional[Dict[str, Any]] = None
                     ) -> "Future":
        """Run *chunk* on one worker; the future resolves to the worker
        reply (``payloads`` + ``busy_s`` + ``stats``, plus ``spans``
        when *trace_ctx* carries a recording trace).  Worker deaths are
        retried transparently up to ``max_retries`` times."""
        outer: Future = Future()
        self._submit(list(chunk), outer, self.max_retries, trace_ctx)
        return outer

    def _submit(self, chunk: List[Dict[str, Any]], outer: Future,
                retries_left: int,
                trace_ctx: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            if self._closed:
                outer.set_exception(
                    RuntimeError("worker pool is shut down"))
                return
            generation = self._generation
            try:
                inner = self._executor.submit(_run_chunk, chunk, trace_ctx)
            except BrokenProcessPool as exc:
                # The pool broke between submissions; rebuild inline.
                self._rebuild_locked(generation)
                if retries_left > 0:
                    self.stats.bump("retried_chunks")
                    generation = self._generation
                    try:
                        inner = self._executor.submit(_run_chunk, chunk,
                                                      trace_ctx)
                        retries_left -= 1
                    except BrokenProcessPool as again:
                        self.stats.bump("failed_chunks")
                        outer.set_exception(again)
                        return
                else:
                    self.stats.bump("failed_chunks")
                    outer.set_exception(exc)
                    return

        def on_done(done: Future, _gen: int = generation,
                    _retries: int = retries_left) -> None:
            exc = done.exception()
            if exc is None:
                reply = done.result()
                self._note_stats(reply.get("stats"))
                outer.set_result(reply)
                return
            if isinstance(exc, BrokenProcessPool):
                with self._lock:
                    self._rebuild_locked(_gen)
                if _retries > 0:
                    self.stats.bump("retried_chunks")
                    self._submit(chunk, outer, _retries - 1, trace_ctx)
                    return
                self.stats.bump("failed_chunks")
            outer.set_exception(exc)

        inner.add_done_callback(on_done)

    def _rebuild_locked(self, generation: int) -> None:
        """Replace a broken executor (callers hold ``self._lock`` or
        are inside a ``with self._lock`` block).  Many chunks observe
        one death; the generation counter makes exactly one of them
        perform the rebuild."""
        self.stats.bump("deaths")
        if generation != self._generation or self._closed:
            return
        old = self._executor
        self._executor = self._new_executor()
        self._generation += 1
        self.stats.bump("restarts")
        # Old executor's processes are gone; reap its bookkeeping
        # without waiting (its futures already errored).
        threading.Thread(target=old.shutdown, kwargs={"wait": False},
                         daemon=True).start()

    # -- introspection ------------------------------------------------------

    def _note_stats(self, snapshot: Optional[Dict[str, Any]]) -> None:
        if not snapshot or "token" not in snapshot:
            return
        with self._lock:
            self._worker_stats[snapshot["token"]] = snapshot

    def aggregate_stats(self) -> Dict[str, Any]:
        """Summed cache counters across the latest snapshot of every
        worker ever seen (dead workers' last words included — their
        cache work happened)."""
        with self._lock:
            snapshots = list(self._worker_stats.values())
        totals = {key: 0 for key in _STAT_KEYS}
        for snapshot in snapshots:
            for key in _STAT_KEYS:
                totals[key] += int(snapshot.get(key, 0))
        totals["workers_reporting"] = len(snapshots)
        return totals

    def per_worker(self) -> List[Dict[str, Any]]:
        with self._lock:
            return sorted(self._worker_stats.values(),
                          key=lambda s: (s.get("pid", 0),
                                         s.get("token", "")))
