"""Wire format of the compile service: JSON lines, one message per line.

Requests are objects ``{"id": N, "op": NAME, ...params}``; responses
echo the id: ``{"id": N, "ok": true, "result": {...}}`` or ``{"id": N,
"ok": false, "error": "..."}``.  Operations:

======== ==============================================================
op       params -> result
======== ==============================================================
ping     ``{}`` -> ``{"pong": true, "version": ...}``
compile  one compile-job description (see :func:`compile_params`) ->
         the canonical result payload (:func:`compile_result_payload`)
batch    ``{"jobs": [<compile params>, ...]}`` -> ``{"results": [...],
         "deduplicated": N}`` — results in input order, grid deduped
         by the engine's batch planner
stats    ``{}`` -> engine cache statistics + per-client counters
metrics  ``{}`` -> latency histograms, queue gauges, worker fault
         counters, cache counters, shard sizes
         (:mod:`repro.service.metrics`; schema-stamped)
======== ==============================================================

A server running with a bounded queue may answer ``compile``/``batch``
with a **busy reply** instead: ``{"id": N, "ok": false, "busy": true,
"retry": true|false, "error": "..."}`` — the wire protocol's 429.
``retry: true`` means a backoff resend can succeed
(:class:`~repro.service.client.ServiceClient` does this
transparently); ``retry: false`` marks a request that can never be
admitted (a batch larger than the whole queue).

**Tracing (optional).**  A request may carry a ``"trace"`` field —
``{"trace_id": hex, "parent_id": hex}``, a
:meth:`repro.obs.trace.SpanContext.to_wire` dict — in which case the
server opens its ``service.<op>`` span under that parent (and forwards
the context to worker processes on chunk submissions).  The matching
response then carries a ``"spans"`` array of finished span dicts (see
:mod:`repro.obs.trace` for the schema) covering the server's and
workers' share of the trace, which the client ingests into its local
tracer.  Untraced requests omit both fields and pay nothing.

Machines travel as their canonical JSON dict
(:func:`repro.uml.serialize.machine_to_dict`) and semantics configs via
:func:`semantics_to_dict` — the same serializations the engine's cache
fingerprints are built from, so a service-side compile lands on exactly
the cache entry an in-process run of the same job would.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Union

from ..compiler import CompileResult, OptLevel
from ..engine.jobs import CompileJob
from ..semantics.variation import (ConflictPolicy, EventPoolPolicy,
                                   SemanticsConfig, UML_DEFAULT_SEMANTICS,
                                   UnconsumedPolicy)
from ..uml.serialize import machine_from_dict, machine_to_dict
from ..uml.statemachine import StateMachine

__all__ = ["MAX_LINE_BYTES", "encode_message", "decode_message",
           "parse_opt_level", "semantics_to_dict", "semantics_from_dict",
           "compile_params", "job_from_params", "compile_result_payload"]

#: Stream limit for one JSON line (a serialized machine can be large).
MAX_LINE_BYTES = 8 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("message must be a JSON object")
    return message


def parse_opt_level(level: Union[OptLevel, str, None]) -> OptLevel:
    """Accept ``OptLevel``, ``"-Os"``, ``"Os"``, ``"OS"`` ... (default
    ``-Os``, the paper's measurement flag)."""
    if level is None:
        return OptLevel.OS
    if isinstance(level, OptLevel):
        return level
    text = str(level)
    for candidate in (text, f"-{text}"):
        try:
            return OptLevel(candidate)
        except ValueError:
            pass
    try:
        return OptLevel[text.lstrip("-").upper()]
    except KeyError:
        raise ValueError(
            f"unknown optimization level {level!r} (expected one of "
            f"{', '.join(lv.value for lv in OptLevel)})") from None


def semantics_to_dict(semantics: SemanticsConfig) -> Dict[str, Any]:
    return {
        "event_pool": semantics.event_pool.value,
        "unconsumed_events": semantics.unconsumed_events.value,
        "conflict_resolution": semantics.conflict_resolution.value,
        "completion_priority": semantics.completion_priority,
        "max_run_to_completion_steps":
            semantics.max_run_to_completion_steps,
    }


def semantics_from_dict(data: Optional[Dict[str, Any]]) -> SemanticsConfig:
    if not data:
        return UML_DEFAULT_SEMANTICS
    return SemanticsConfig(
        event_pool=EventPoolPolicy(
            data.get("event_pool", EventPoolPolicy.FIFO.value)),
        unconsumed_events=UnconsumedPolicy(
            data.get("unconsumed_events", UnconsumedPolicy.DISCARD.value)),
        conflict_resolution=ConflictPolicy(
            data.get("conflict_resolution",
                     ConflictPolicy.INNERMOST_FIRST.value)),
        completion_priority=bool(data.get("completion_priority", True)),
        max_run_to_completion_steps=int(
            data.get("max_run_to_completion_steps", 10_000)),
    )


def compile_params(machine: Union[StateMachine, Dict[str, Any]],
                   pattern: str = "nested-switch",
                   level: Union[OptLevel, str, None] = None,
                   target: Optional[str] = None,
                   semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                   want_asm: bool = False) -> Dict[str, Any]:
    """The params object of one ``compile`` request / ``batch`` job."""
    if isinstance(machine, StateMachine):
        machine = machine_to_dict(machine)
    return {
        "machine": machine,
        "pattern": pattern,
        "level": parse_opt_level(level).value,
        "target": target,
        "semantics": semantics_to_dict(semantics),
        "want_asm": bool(want_asm),
    }


def job_from_params(params: Dict[str, Any]) -> CompileJob:
    """Rebuild the engine job a ``compile``/``batch`` params object
    describes (raises ``KeyError``/``ValueError`` on malformed input)."""
    return CompileJob(
        machine=machine_from_dict(params["machine"]),
        pattern=params.get("pattern", "nested-switch"),
        level=parse_opt_level(params.get("level")),
        target=params.get("target"),
        semantics=semantics_from_dict(params.get("semantics")),
    )


def compile_result_payload(job: CompileJob, result: CompileResult,
                           want_asm: bool = False) -> Dict[str, Any]:
    """Canonical JSON rendering of one compile's artifacts.

    Both the service and in-process comparisons build payloads through
    this one function, which is what makes "submit over the socket" and
    "call the engine directly" byte-comparable.
    """
    module = result.module
    payload = {
        "fingerprint": job.fingerprint(),
        "machine": job.machine.name,
        "pattern": job.pattern,
        "level": result.opt_level.value,
        "target": result.target.name if result.target is not None else None,
        "total_size": module.total_size,
        "text_size": module.text_size,
        "rodata_size": module.rodata_size,
        "data_size": module.data_size,
        "bss_size": module.bss_size,
        "function_sizes": module.function_sizes(),
        "pass_stats": dict(result.pass_stats),
    }
    if want_asm:
        payload["asm"] = module.listing()
    return payload
