"""Batch shaping for the cluster: dedup, locality sort, chunk planning.

These are the pure functions between "a batch request arrived" and
"chunks hit the worker pool", kept side-effect-free so the scheduling
policy is unit-testable without processes.

**Dedup** folds byte-identical jobs (same canonical params JSON) onto
one computation, mirroring the engine's batch planner one layer
earlier — a duplicate never even crosses a process boundary.

**Locality sort** (the ROADMAP item 5 follow-up): mixed batches are
full of *near*-duplicates — mutant chains of one machine, the same
machine across levels — whose lowered compilation units overlap
almost entirely.  Unit-cache reuse only pays when related jobs land on
the *same worker's* warm unit tier, so the sort groups jobs by
(machine name, pattern, target, level, semantics) before contiguous
chunking; a family of near-duplicates then rides one chunk to one
worker instead of being sprayed across the pool.

**Chunk planning** splits the sorted jobs into at most
``2 * workers`` contiguous, near-equal chunks: enough chunks that a
straggler machine doesn't idle half the pool, few enough that
families stay mostly contiguous.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["params_digest", "dedup_params", "locality_key",
           "sort_for_locality", "plan_chunks"]


def params_digest(params: Dict[str, Any]) -> str:
    """Digest of one wire-level compile-params object.

    This is the *request-identity* key (coalescing, batch dedup): two
    requests with byte-identical canonical params JSON are the same
    request.  It deliberately does not deserialize the machine — the
    event loop and batch front-end stay CPU-light; the engine-level
    content fingerprint is computed by whichever worker runs the job.
    """
    canonical = json.dumps(params, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dedup_params(raw_jobs: Sequence[Dict[str, Any]]
                 ) -> Tuple[List[str], Dict[str, Dict[str, Any]]]:
    """``(digest per input job, {digest: params first seen})``."""
    order: List[str] = []
    unique: Dict[str, Dict[str, Any]] = {}
    for params in raw_jobs:
        digest = params_digest(params)
        order.append(digest)
        if digest not in unique:
            unique[digest] = params
    return order, unique


def locality_key(params: Dict[str, Any]) -> Tuple[str, ...]:
    """Sort key grouping near-duplicate jobs adjacently.

    Machine *name* leads: mutant chains and sweep variants keep their
    parent's name, and that is exactly the population whose units
    overlap.  Pattern/target/level follow so one family's grid cells
    cluster too; the full digest breaks ties deterministically.
    """
    machine = params.get("machine")
    name = machine.get("name", "") if isinstance(machine, dict) else ""
    semantics = params.get("semantics")
    return (
        str(name),
        str(params.get("pattern", "")),
        str(params.get("target") or ""),
        str(params.get("level", "")),
        json.dumps(semantics, sort_keys=True) if semantics else "",
        params_digest(params),
    )


def sort_for_locality(digests_and_params:
                      "Sequence[Tuple[str, Dict[str, Any]]]"
                      ) -> List[Tuple[str, Dict[str, Any]]]:
    """Order (digest, params) pairs so near-duplicates are adjacent."""
    return sorted(digests_and_params,
                  key=lambda item: locality_key(item[1]))


def plan_chunks(items: Sequence, n_chunks: int) -> List[List]:
    """Split *items* into ``min(len, n_chunks)`` contiguous, near-equal
    chunks (earlier chunks take the remainder)."""
    items = list(items)
    if not items:
        return []
    n_chunks = max(1, min(len(items), int(n_chunks)))
    base, extra = divmod(len(items), n_chunks)
    chunks: List[List] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks
