"""Compile-service CLI: ``python -m repro.service <serve|submit|stats>``.

``serve`` runs the asyncio server in the foreground::

    python -m repro.service serve --socket /tmp/repro.sock \\
        --cache-dir .repro-store --jobs 4

``submit`` compiles a model over the wire (one request per ``--pattern``,
batched when several are given)::

    python -m repro.service submit --socket /tmp/repro.sock \\
        --model flat --pattern nested-switch --pattern state-table

``stats`` prints the server's engine + per-client statistics as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from ..engine import ExperimentEngine
from ..uml.serialize import load_machine
from .client import ServiceClient, ServiceError
from .server import start_service

#: Named models submit can compile without a machine-JSON file.
_MODELS = {
    "flat": "flat_machine_with_unreachable_state",
    "flat-opt": "flat_machine_optimized_by_hand",
    "hier": "hierarchical_machine_with_shadowed_composite",
    "hier-opt": "hierarchical_machine_optimized_by_hand",
}


def _add_address_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", metavar="PATH",
                        help="unix socket path of the server")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP host (with --port; default %(default)s)")
    parser.add_argument("--port", type=int, metavar="N",
                        help="TCP port of the server")


def _client(args: argparse.Namespace) -> ServiceClient:
    if not args.socket and args.port is None:
        raise SystemExit("error: need --socket or --port")
    return ServiceClient(socket_path=args.socket, host=args.host,
                         port=args.port)


def _cmd_serve(args: argparse.Namespace) -> int:
    if not args.socket and args.port is None:
        print("error: need --socket or --port to serve on",
              file=sys.stderr)
        return 2
    engine = ExperimentEngine(jobs=args.jobs, backend=args.backend,
                              cache_dir=args.cache_dir)

    async def _serve() -> None:
        server, service = await start_service(
            engine, socket_path=args.socket, host=args.host,
            port=args.port)
        where = args.socket if args.socket else \
            "%s:%d" % server.sockets[0].getsockname()[:2]
        print(f"repro compile service listening on {where} "
              f"({engine.describe()})", file=sys.stderr)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)
    return 0


def _load_model(args: argparse.Namespace):
    if args.machine_json:
        return load_machine(args.machine_json)
    from ..experiments import models
    return getattr(models, _MODELS[args.model])()


def _cmd_submit(args: argparse.Namespace) -> int:
    machine = _load_model(args)
    patterns: List[str] = args.pattern or ["nested-switch"]
    with _client(args) as client:
        if len(patterns) == 1:
            results = [client.compile_machine(
                machine, pattern=patterns[0], level=args.level,
                target=args.target, want_asm=args.asm)]
        else:
            from .protocol import compile_params
            results = client.submit_batch([
                compile_params(machine, pattern=pattern, level=args.level,
                               target=args.target, want_asm=args.asm)
                for pattern in patterns])
    print(json.dumps(results if len(results) > 1 else results[0],
                     indent=2, sort_keys=True))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _client(args) as client:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve, query and submit to the repro compile "
                    "service.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the compile server")
    _add_address_args(serve)
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="engine worker-pool width (default "
                            "%(default)s)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persistent artifact store directory "
                            "(tiered memory-over-disk cache)")
    serve.add_argument("--backend",
                       choices=("memory", "disk", "tiered"),
                       help="cache backend (default: tiered with "
                            "--cache-dir, else memory)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="compile a model via the "
                                           "service")
    _add_address_args(submit)
    submit.add_argument("--model", choices=sorted(_MODELS),
                        default="flat",
                        help="named experiment model (default "
                             "%(default)s)")
    submit.add_argument("--machine-json", metavar="FILE",
                        help="machine JSON file (overrides --model)")
    submit.add_argument("--pattern", action="append", metavar="NAME",
                        help="codegen pattern; repeat for a batch "
                             "(default nested-switch)")
    submit.add_argument("--level", default="-Os",
                        help="optimization level (default %(default)s)")
    submit.add_argument("--target", default=None, metavar="NAME",
                        help="backend ISA (default: registry default)")
    submit.add_argument("--asm", action="store_true",
                        help="include the assembly listing in the "
                             "result")
    submit.set_defaults(func=_cmd_submit)

    stats = sub.add_parser("stats", help="print server statistics")
    _add_address_args(stats)
    stats.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConnectionError, ServiceError, FileNotFoundError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
