"""Compile-service CLI:
``python -m repro.service <serve|submit|stats|metrics|loadgen>``.

``serve`` runs the asyncio server in the foreground — in-process by
default, a worker cluster with ``--workers``::

    python -m repro.service serve --port 9090 \\
        --workers 2 --shards 2 --cache-dir /data/store --queue-limit 64

``submit`` compiles a model over the wire (one request per ``--pattern``,
batched when several are given)::

    python -m repro.service submit --socket /tmp/repro.sock \\
        --model flat --pattern nested-switch --pattern state-table

``stats`` prints the server's engine + per-client statistics as JSON;
``metrics`` prints the latency/queue/worker telemetry document
(``--json`` for one scrape-friendly line).

``serve`` and ``loadgen`` accept ``--trace-out TRACE.json``: sampling
is flipped to 1.0 and every span the process saw — for loadgen that is
the whole distributed trace, client + server + worker processes — is
written as Chrome trace_event JSON on exit (load it in Perfetto or
``python -m repro.obs view``).

``loadgen`` drives a deterministic mixed corpus (workload families +
mutant chains + fuzz machines + duplicates) against a running server
and reports throughput and latency percentiles; ``--verify`` also
recompiles everything locally and demands byte-identical payloads::

    python -m repro.service loadgen --port 9090 --clients 4 --verify
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from ..engine import EngineSpec, ExperimentEngine
from ..obs.export import write_chrome_trace
from ..obs.trace import configure, get_tracer
from ..uml.serialize import load_machine
from .client import ServiceClient, ServiceError
from .loadgen import LoadgenSpec, build_corpus, run_load, verify_payloads
from .server import start_service

#: Named models submit can compile without a machine-JSON file.
_MODELS = {
    "flat": "flat_machine_with_unreachable_state",
    "flat-opt": "flat_machine_optimized_by_hand",
    "hier": "hierarchical_machine_with_shadowed_composite",
    "hier-opt": "hierarchical_machine_optimized_by_hand",
}


def _add_address_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", metavar="PATH",
                        help="unix socket path of the server")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP host (with --port; default %(default)s)")
    parser.add_argument("--port", type=int, metavar="N",
                        help="TCP port of the server")


def _client(args: argparse.Namespace, **kwargs) -> ServiceClient:
    if not args.socket and args.port is None:
        raise SystemExit("error: need --socket or --port")
    return ServiceClient(socket_path=args.socket, host=args.host,
                         port=args.port, **kwargs)


def _trace_flush(path: Optional[str], **metadata) -> None:
    """Write every span this process buffered to *path* (no-op when
    ``--trace-out`` was not given)."""
    if not path:
        return
    count = write_chrome_trace(path, get_tracer().drain(),
                               metadata=metadata)
    print(f"wrote {count} span(s) to {path}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    if not args.socket and args.port is None:
        print("error: need --socket or --port to serve on",
              file=sys.stderr)
        return 2
    if args.trace_out:
        configure(sample_ratio=1.0, process="service")
    engine = None
    engine_spec = None
    if args.workers > 0:
        engine_spec = EngineSpec(jobs=args.jobs, backend=args.backend,
                                 cache_dir=args.cache_dir,
                                 shards=args.shards)
        described = (f"cluster: {args.workers} workers, "
                     f"{args.shards} store shard(s)"
                     + (f" under {args.cache_dir}" if args.cache_dir
                        else ""))
    else:
        engine = ExperimentEngine(jobs=args.jobs, backend=args.backend,
                                  cache_dir=args.cache_dir,
                                  shards=args.shards)
        described = engine.describe()

    async def _serve() -> None:
        server, service = await start_service(
            engine, socket_path=args.socket, host=args.host,
            port=args.port, workers=args.workers,
            engine_spec=engine_spec, queue_limit=args.queue_limit)
        where = args.socket if args.socket else \
            "%s:%d" % server.sockets[0].getsockname()[:2]
        print(f"repro compile service listening on {where} "
              f"({described})", file=sys.stderr)
        try:
            async with server:
                await server.serve_forever()
        finally:
            service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)
    finally:
        _trace_flush(args.trace_out, mode="serve",
                     workers=args.workers, shards=args.shards)
    return 0


def _load_model(args: argparse.Namespace):
    if args.machine_json:
        return load_machine(args.machine_json)
    from ..experiments import models
    return getattr(models, _MODELS[args.model])()


def _cmd_submit(args: argparse.Namespace) -> int:
    machine = _load_model(args)
    patterns: List[str] = args.pattern or ["nested-switch"]
    with _client(args) as client:
        if len(patterns) == 1:
            results = [client.compile_machine(
                machine, pattern=patterns[0], level=args.level,
                target=args.target, want_asm=args.asm)]
        else:
            from .protocol import compile_params
            results = client.submit_batch([
                compile_params(machine, pattern=pattern, level=args.level,
                               target=args.target, want_asm=args.asm)
                for pattern in patterns])
    print(json.dumps(results if len(results) > 1 else results[0],
                     indent=2, sort_keys=True))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _client(args) as client:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    with _client(args) as client:
        print(json.dumps(client.metrics(),
                         indent=None if args.json else 2,
                         sort_keys=True))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    spec = LoadgenSpec(machines=args.machines, mutants=args.mutants,
                       fuzz_machines=args.fuzz_machines, seed=args.seed)
    corpus = build_corpus(spec, screen=not args.no_screen)
    for _ in range(max(0, args.repeat - 1)):
        corpus = corpus + corpus
    print(f"loadgen: {len(corpus)} jobs, {args.clients} client(s), "
          f"batches of {args.batch_size}", file=sys.stderr)
    if args.trace_out:
        # After corpus screening: the trace should hold the served
        # load, not the local pre-compiles.
        configure(sample_ratio=1.0, process="loadgen")

    def make_client():
        return _client(args, busy_retries=args.busy_retries)

    try:
        report = run_load(make_client, corpus,
                          batch_size=args.batch_size,
                          clients=args.clients)
    finally:
        _trace_flush(args.trace_out, mode="loadgen", jobs=len(corpus),
                     clients=args.clients, batch_size=args.batch_size)
    summary = report.as_dict()
    if args.verify:
        divergent = verify_payloads(corpus, report.payloads)
        summary["divergent_payloads"] = len(divergent)
        if divergent:
            print(f"error: {len(divergent)} served payloads diverge "
                  f"from the in-process compiler", file=sys.stderr)
    print(json.dumps(summary, indent=None if args.json else 2,
                     sort_keys=True))
    return 1 if summary.get("divergent_payloads") else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve, query, submit to and load-test the repro "
                    "compile service.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the compile server")
    _add_address_args(serve)
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="engine worker-pool width (default "
                            "%(default)s)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="compile-worker processes (0 = in-process "
                            "engine; default %(default)s)")
    serve.add_argument("--shards", type=int, default=1, metavar="M",
                       help="consistent-hash store shards under "
                            "--cache-dir (default %(default)s)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       metavar="Q",
                       help="bounded-queue size; over-limit requests "
                            "get busy replies (default: unbounded)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persistent artifact store directory "
                            "(tiered memory-over-disk cache)")
    serve.add_argument("--backend",
                       choices=("memory", "disk", "tiered"),
                       help="cache backend (default: tiered with "
                            "--cache-dir, else memory)")
    serve.add_argument("--trace-out", metavar="TRACE.json",
                       help="sample every request and write the "
                            "server-side spans as Chrome trace JSON "
                            "on shutdown")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="compile a model via the "
                                           "service")
    _add_address_args(submit)
    submit.add_argument("--model", choices=sorted(_MODELS),
                        default="flat",
                        help="named experiment model (default "
                             "%(default)s)")
    submit.add_argument("--machine-json", metavar="FILE",
                        help="machine JSON file (overrides --model)")
    submit.add_argument("--pattern", action="append", metavar="NAME",
                        help="codegen pattern; repeat for a batch "
                             "(default nested-switch)")
    submit.add_argument("--level", default="-Os",
                        help="optimization level (default %(default)s)")
    submit.add_argument("--target", default=None, metavar="NAME",
                        help="backend ISA (default: registry default)")
    submit.add_argument("--asm", action="store_true",
                        help="include the assembly listing in the "
                             "result")
    submit.set_defaults(func=_cmd_submit)

    stats = sub.add_parser("stats", help="print server statistics")
    _add_address_args(stats)
    stats.set_defaults(func=_cmd_stats)

    metrics = sub.add_parser("metrics", help="print server latency/"
                                             "queue/worker telemetry")
    _add_address_args(metrics)
    metrics.add_argument("--json", action="store_true",
                         help="print the document as one JSON line "
                              "(scrape-friendly)")
    metrics.set_defaults(func=_cmd_metrics)

    loadgen = sub.add_parser("loadgen", help="drive a mixed compile "
                                             "load against a server")
    _add_address_args(loadgen)
    loadgen.add_argument("--machines", type=int, default=3, metavar="N",
                         help="workload families (default %(default)s)")
    loadgen.add_argument("--mutants", type=int, default=3, metavar="N",
                         help="mutant chain length per family "
                              "(default %(default)s)")
    loadgen.add_argument("--fuzz-machines", type=int, default=4,
                         metavar="N",
                         help="fuzz-generated machines (default "
                              "%(default)s)")
    loadgen.add_argument("--seed", type=int, default=20260808,
                         help="corpus seed (default %(default)s)")
    loadgen.add_argument("--repeat", type=int, default=1, metavar="K",
                         help="double the corpus K-1 times (warm-cache "
                              "load; default %(default)s)")
    loadgen.add_argument("--batch-size", type=int, default=8,
                         metavar="B",
                         help="jobs per batch request (default "
                              "%(default)s)")
    loadgen.add_argument("--clients", type=int, default=2, metavar="C",
                         help="concurrent client connections (default "
                              "%(default)s)")
    loadgen.add_argument("--busy-retries", type=int, default=20,
                         metavar="R",
                         help="busy-reply backoff retries per request "
                              "(default %(default)s)")
    loadgen.add_argument("--no-screen", action="store_true",
                         help="skip pre-compiling the corpus locally "
                              "(keeps uncompilable fuzz draws)")
    loadgen.add_argument("--verify", action="store_true",
                         help="recompile locally and require "
                              "byte-identical payloads")
    loadgen.add_argument("--json", action="store_true",
                         help="print the summary as one JSON line")
    loadgen.add_argument("--trace-out", metavar="TRACE.json",
                         help="trace every request end-to-end (client "
                              "+ server + workers) and write one "
                              "Chrome trace JSON")
    loadgen.set_defaults(func=_cmd_loadgen)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConnectionError, ServiceError, FileNotFoundError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
