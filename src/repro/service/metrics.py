"""Service observability: latency histograms, queue gauges, worker
counters — everything the ``metrics`` endpoint serves.

Design rules, in the measure-don't-guess tradition:

* **Scrape-stable schema.**  :meth:`ServiceMetrics.payload` is plain
  JSON with a ``schema`` stamp; CI gates (``scripts/check_service_slo``)
  assert its shape, so extending it is additive and renaming is a
  schema bump.
* **Cheap on the hot path.**  Recording one request is a bucket
  increment and a few integer adds under one lock; percentile math
  happens only at scrape time.
* **Histograms, not reservoirs.**  Latencies land in fixed log-spaced
  buckets (~28 per decade would be overkill; we use x1.35 steps from
  0.05 ms to ~2 min, 39 buckets).  Percentiles are reported as the
  upper bound of the covering bucket — deterministic, mergeable, and
  within one bucket width of the true quantile, which is the right
  trade for an SLO gate.

The module is asyncio-agnostic: the server calls it from the event
loop *and* worker-completion callbacks (executor threads), hence the
lock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["METRICS_SCHEMA_VERSION", "LatencyHistogram",
           "EndpointMetrics", "ServiceMetrics"]

#: Bump when the ``payload()`` shape changes incompatibly.
METRICS_SCHEMA_VERSION = 1


def _bounds() -> List[float]:
    bounds = []
    edge = 0.00005                      # 0.05 ms
    while edge < 120.0:                 # 2 minutes
        bounds.append(edge)
        edge *= 1.35
    bounds.append(float("inf"))
    return bounds


_BOUNDS = _bounds()


class LatencyHistogram:
    """Log-bucketed latency histogram (seconds in, milliseconds out)."""

    __slots__ = ("counts", "count", "total")

    def __init__(self) -> None:
        self.counts = [0] * len(_BOUNDS)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        index = 0
        for index, bound in enumerate(_BOUNDS):   # 39 bounds: linear
            if seconds <= bound:                  # scan beats bisect
                break                             # at this size
        self.counts[index] += 1
        self.count += 1
        self.total += seconds

    def percentile(self, q: float) -> Optional[float]:
        """Upper bound (ms) of the bucket covering quantile *q*."""
        if not self.count:
            return None
        need = max(1, int(q * self.count + 0.9999999))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= need:
                bound = _BOUNDS[index]
                if bound == float("inf"):
                    bound = _BOUNDS[-2] * 1.35
                return bound * 1000.0
        return _BOUNDS[-2] * 1000.0

    @property
    def mean_ms(self) -> Optional[float]:
        if not self.count:
            return None
        return self.total / self.count * 1000.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(0.50),
            "p90_ms": self.percentile(0.90),
            "p99_ms": self.percentile(0.99),
        }


class EndpointMetrics:
    """Latency + outcome counters of one wire operation."""

    __slots__ = ("latency", "errors", "busy")

    def __init__(self) -> None:
        self.latency = LatencyHistogram()
        self.errors = 0
        self.busy = 0

    def as_dict(self) -> Dict[str, Any]:
        payload = self.latency.as_dict()
        payload["errors"] = self.errors
        payload["busy"] = self.busy
        return payload


class ServiceMetrics:
    """The cluster's one metrics registry (thread-safe).

    Tracks per-endpoint latency histograms, the bounded-queue gauges
    (depth, high water, rejections), and worker-pool execution time for
    the utilization figure.  Worker *fault* counters (deaths, restarts,
    retried and failed chunks) live on the pool's own stats object and
    are merged in at :meth:`payload` time.
    """

    def __init__(self, queue_limit: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.queue_limit = queue_limit
        self.queue_depth = 0
        self.queue_high_water = 0
        self.busy_rejections = 0
        self.jobs_done = 0
        self.busy_seconds = 0.0          # summed job execution time
        self._endpoints: Dict[str, EndpointMetrics] = {}

    # -- recording (hot path) ----------------------------------------------

    def observe(self, op: str, seconds: float, outcome: str = "ok") -> None:
        """One request of *op* took *seconds*; outcome is ``ok`` |
        ``error`` | ``busy``."""
        with self._lock:
            endpoint = self._endpoints.get(op)
            if endpoint is None:
                endpoint = self._endpoints[op] = EndpointMetrics()
            endpoint.latency.record(seconds)
            if outcome == "error":
                endpoint.errors += 1
            elif outcome == "busy":
                endpoint.busy += 1

    def enqueue(self, n: int) -> None:
        """*n* compile jobs admitted to the bounded queue."""
        with self._lock:
            self.queue_depth += n
            if self.queue_depth > self.queue_high_water:
                self.queue_high_water = self.queue_depth

    def dequeue(self, n: int, busy_seconds: float = 0.0) -> None:
        """*n* jobs finished after *busy_seconds* of execution time."""
        with self._lock:
            self.queue_depth -= n
            self.jobs_done += n
            self.busy_seconds += busy_seconds

    def reject(self) -> None:
        with self._lock:
            self.busy_rejections += 1

    # -- scraping -----------------------------------------------------------

    def utilization(self, workers: int) -> Optional[float]:
        """Mean busy fraction of the worker slots since startup."""
        elapsed = time.monotonic() - self._started
        if workers <= 0 or elapsed <= 0.0:
            return None
        return min(1.0, self.busy_seconds / (elapsed * workers))

    def payload(self, workers: int = 0,
                pool_stats: Optional[Dict[str, Any]] = None,
                cache: Optional[Dict[str, Any]] = None,
                shard_sizes: Optional[Dict[str, int]] = None,
                ) -> Dict[str, Any]:
        """The ``metrics`` endpoint's JSON document."""
        with self._lock:
            endpoints = {op: endpoint.as_dict()
                         for op, endpoint in sorted(self._endpoints.items())}
            queue = {
                "depth": self.queue_depth,
                "limit": self.queue_limit,
                "high_water": self.queue_high_water,
                "busy_rejections": self.busy_rejections,
            }
            jobs_done = self.jobs_done
        worker_block: Dict[str, Any] = {
            "configured": workers,
            "mode": "process-pool" if workers else "in-process",
            "jobs_done": jobs_done,
            "utilization": self.utilization(workers),
        }
        worker_block.update(pool_stats or {})
        payload: Dict[str, Any] = {
            "schema": METRICS_SCHEMA_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "endpoints": endpoints,
            "queue": queue,
            "workers": worker_block,
            "cache": cache or {},
        }
        if shard_sizes is not None:
            payload["shards"] = shard_sizes
        return payload
