"""Service observability: the ``metrics`` endpoint as a view over
:mod:`repro.obs.metrics`.

Since schema v2 the service keeps **no private histogram code**: every
figure the endpoint serves lives in a :class:`~repro.obs.metrics`
instrument — per-endpoint latency in a labeled ``Histogram``, outcomes
in a labeled ``Counter``, queue depth/high-water in ``Gauge``s — held
in a per-service :class:`~repro.obs.metrics.MetricsRegistry` (so two
:class:`ServiceThread`\\ s in one process don't bleed into each other).
:meth:`ServiceMetrics.payload` renders the same v1 document shape from
those instruments (CI gates assert it), adds a ``registry`` section
exposing *every* registered metric — including the process-global
:data:`~repro.obs.metrics.REGISTRY` the engine/VM/fleet publish into —
and stamps ``schema: 2``.

Design rules, in the measure-don't-guess tradition:

* **Scrape-stable schema.**  Plain JSON with a ``schema`` stamp;
  extending is additive, renaming is a schema bump.  All v1 keys
  survive under v2.
* **Cheap on the hot path.**  Recording one request is a bucket
  increment and a counter add; percentile math happens at scrape time.
* **Histograms, not reservoirs.**  The shared ×1.35 log-bucket ladder
  (see :data:`repro.obs.metrics.DEFAULT_BOUNDS`); percentiles are the
  covering bucket's upper bound — deterministic, mergeable, within one
  bucket width of the true quantile, the right trade for an SLO gate.

The module is asyncio-agnostic: the server calls it from the event
loop *and* worker-completion callbacks (executor threads); the obs
instruments carry their own locks.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..obs.metrics import REGISTRY, Histogram, MetricsRegistry

__all__ = ["METRICS_SCHEMA_VERSION", "LatencyHistogram", "ServiceMetrics"]

#: Bump when the ``payload()`` shape changes incompatibly.
#: v2 (PR 9): same keys as v1 plus a ``registry`` section; figures now
#: sourced from :mod:`repro.obs.metrics` instruments.
METRICS_SCHEMA_VERSION = 2


class LatencyHistogram:
    """Log-bucketed latency histogram (seconds in, milliseconds out).

    Thin veneer over one unlabeled :class:`repro.obs.metrics.Histogram`
    series — kept because "seconds in, ms out, ``None`` when empty" is
    the contract the service payload and its tests speak.
    """

    __slots__ = ("_histogram",)

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self._histogram = histogram \
            if histogram is not None else Histogram("latency_seconds")

    def record(self, seconds: float) -> None:
        self._histogram.record(seconds)

    @property
    def count(self) -> int:
        return self._histogram.count()

    def percentile(self, q: float) -> Optional[float]:
        """Upper bound (ms) of the bucket covering quantile *q*."""
        seconds = self._histogram.percentile(q)
        return None if seconds is None else seconds * 1000.0

    @property
    def mean_ms(self) -> Optional[float]:
        mean = self._histogram.mean()
        return None if mean is None else mean * 1000.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(0.50),
            "p90_ms": self.percentile(0.90),
            "p99_ms": self.percentile(0.99),
        }


class ServiceMetrics:
    """One service's metrics, all held as registry instruments.

    Tracks per-endpoint latency histograms, the bounded-queue gauges
    (depth, high water, rejections), and worker-pool execution time for
    the utilization figure.  Worker *fault* counters (deaths, restarts,
    retried and failed chunks) live on the pool's own stats object and
    are merged in at :meth:`payload` time.
    """

    def __init__(self, queue_limit: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()    # enqueue's depth/high-water pair
        self._started = time.monotonic()
        self.queue_limit = queue_limit
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self._latency = reg.histogram(
            "service_request_seconds", "wire request latency by op")
        self._requests = reg.counter(
            "service_requests_total", "wire requests by op and outcome")
        self._depth = reg.gauge(
            "service_queue_depth", "compile jobs admitted and not done")
        self._high_water = reg.gauge(
            "service_queue_high_water", "max queue depth observed")
        self._rejections = reg.counter(
            "service_busy_rejections_total", "requests refused at the gate")
        self._jobs = reg.counter(
            "service_jobs_done_total", "compile jobs completed")
        self._busy = reg.counter(
            "service_busy_seconds_total", "summed job execution time")

    # -- v1 attribute compatibility ------------------------------------------

    @property
    def queue_depth(self) -> int:
        return int(self._depth.value())

    @property
    def queue_high_water(self) -> int:
        return int(self._high_water.value())

    @property
    def busy_rejections(self) -> int:
        return int(self._rejections.value())

    @property
    def jobs_done(self) -> int:
        return int(self._jobs.value())

    @property
    def busy_seconds(self) -> float:
        return self._busy.value()

    # -- recording (hot path) ----------------------------------------------

    def observe(self, op: str, seconds: float, outcome: str = "ok") -> None:
        """One request of *op* took *seconds*; outcome is ``ok`` |
        ``error`` | ``busy``."""
        self._latency.record(seconds, op=op)
        self._requests.inc(op=op, outcome=outcome)

    def enqueue(self, n: int) -> None:
        """*n* compile jobs admitted to the bounded queue."""
        with self._lock:                 # depth and high-water move together
            depth = self._depth.add(n)
            self._high_water.max_with(depth)

    def dequeue(self, n: int, busy_seconds: float = 0.0) -> None:
        """*n* jobs finished after *busy_seconds* of execution time."""
        self._depth.add(-n)
        self._jobs.inc(n)
        if busy_seconds:
            self._busy.inc(busy_seconds)

    def reject(self) -> None:
        self._rejections.inc()

    # -- scraping -----------------------------------------------------------

    def utilization(self, workers: int) -> Optional[float]:
        """Mean busy fraction of the worker slots since startup."""
        elapsed = time.monotonic() - self._started
        if workers <= 0 or elapsed <= 0.0:
            return None
        return min(1.0, self.busy_seconds / (elapsed * workers))

    def _endpoint_block(self, op: str) -> Dict[str, Any]:
        mean = self._latency.mean(op=op)
        block: Dict[str, Any] = {
            "count": self._latency.count(op=op),
            "mean_ms": None if mean is None else mean * 1000.0,
        }
        for label, q in (("p50_ms", 0.50), ("p90_ms", 0.90),
                         ("p99_ms", 0.99)):
            seconds = self._latency.percentile(q, op=op)
            block[label] = None if seconds is None else seconds * 1000.0
        block["errors"] = int(self._requests.value(op=op, outcome="error"))
        block["busy"] = int(self._requests.value(op=op, outcome="busy"))
        return block

    def payload(self, workers: int = 0,
                pool_stats: Optional[Dict[str, Any]] = None,
                cache: Optional[Dict[str, Any]] = None,
                shard_sizes: Optional[Dict[str, int]] = None,
                ) -> Dict[str, Any]:
        """The ``metrics`` endpoint's JSON document (schema v2: every
        v1 key, plus ``registry`` — this service's instruments merged
        with the process-global :data:`~repro.obs.metrics.REGISTRY`)."""
        ops = sorted({labels["op"]
                      for labels in self._latency.labelsets()
                      if "op" in labels})
        endpoints = {op: self._endpoint_block(op) for op in ops}
        worker_block: Dict[str, Any] = {
            "configured": workers,
            "mode": "process-pool" if workers else "in-process",
            "jobs_done": self.jobs_done,
            "utilization": self.utilization(workers),
        }
        worker_block.update(pool_stats or {})
        payload: Dict[str, Any] = {
            "schema": METRICS_SCHEMA_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "endpoints": endpoints,
            "queue": {
                "depth": self.queue_depth,
                "limit": self.queue_limit,
                "high_water": self.queue_high_water,
                "busy_rejections": self.busy_rejections,
            },
            "workers": worker_block,
            "cache": cache or {},
            "registry": {**REGISTRY.snapshot(), **self.registry.snapshot()},
        }
        if shard_sizes is not None:
            payload["shards"] = shard_sizes
        return payload
