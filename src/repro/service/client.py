""":class:`ServiceClient` — thin blocking client of the compile service.

One socket connection, synchronous request/response over JSON lines.
The client does no compilation-side work beyond serializing the
machine; the result payloads it returns are exactly the server's
(:func:`repro.service.protocol.compile_result_payload`), so a
round-trip through the service is directly comparable to an in-process
engine run.

::

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        payload = client.compile_machine(machine, pattern="state-table")
        print(payload["total_size"])
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Union

from ..compiler import OptLevel
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .protocol import (MAX_LINE_BYTES, compile_params, decode_message,
                       encode_message)

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """The server answered a request with ``ok: false``."""


class ServiceClient:
    """Blocking JSON-lines client over a unix socket or TCP address."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: float = 300.0) -> None:
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        elif port is not None:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port), timeout=timeout)
        else:
            raise ValueError("need socket_path or port to connect to")
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request; return its ``result`` object or raise
        :class:`ServiceError`."""
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update(params)
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_message(line)
        # ok/error first: framing-level failures answer with id=None,
        # and their message must not be masked by the id sanity check.
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown error"))
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} != request id "
                f"{self._next_id}")
        return response.get("result", {})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def compile_machine(self, machine: Union[StateMachine, Dict[str, Any]],
                        pattern: str = "nested-switch",
                        level: Union[OptLevel, str, None] = None,
                        target: Optional[str] = None,
                        semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                        want_asm: bool = False) -> Dict[str, Any]:
        """Compile one machine on the server; returns the result
        payload (sizes, pass stats, fingerprint, optionally the
        assembly listing)."""
        return self.request("compile",
                            **compile_params(machine, pattern=pattern,
                                             level=level, target=target,
                                             semantics=semantics,
                                             want_asm=want_asm))

    def submit_batch(self, jobs: Sequence[Dict[str, Any]]
                     ) -> List[Dict[str, Any]]:
        """Submit a grid of compile jobs (each a :func:`compile_params`
        object); results come back in input order."""
        return self.request("batch", jobs=list(jobs))["results"]
