""":class:`ServiceClient` — thin blocking client of the compile service.

One socket connection, synchronous request/response over JSON lines.
The client does no compilation-side work beyond serializing the
machine; the result payloads it returns are exactly the server's
(:func:`repro.service.protocol.compile_result_payload`), so a
round-trip through the service is directly comparable to an in-process
engine run.

A loaded cluster answers over-limit requests with ``busy`` replies
(the wire protocol's 429) instead of queueing without bound; the
client absorbs those transparently with capped exponential backoff —
up to ``busy_retries`` resends, sleeping
``min(busy_backoff * 2**attempt, busy_backoff_cap)`` between them —
and raises :class:`ServiceBusy` only when retries are exhausted or the
server marked the rejection non-retryable (a batch larger than the
whole queue).

::

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        payload = client.compile_machine(machine, pattern="state-table")
        print(payload["total_size"])
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from ..compiler import OptLevel
from ..obs.trace import get_tracer, span as _span
from ..semantics.variation import SemanticsConfig, UML_DEFAULT_SEMANTICS
from ..uml.statemachine import StateMachine
from .protocol import (MAX_LINE_BYTES, compile_params, decode_message,
                       encode_message)

__all__ = ["ServiceError", "ServiceBusy", "ServiceClient"]


class ServiceError(RuntimeError):
    """The server answered a request with ``ok: false``."""


class ServiceBusy(ServiceError):
    """The server's bounded queue rejected the request and backoff
    retries were exhausted (or the rejection was non-retryable)."""


class ServiceClient:
    """Blocking JSON-lines client over a unix socket or TCP address."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: float = 300.0,
                 busy_retries: int = 10,
                 busy_backoff: float = 0.05,
                 busy_backoff_cap: float = 2.0) -> None:
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        elif port is not None:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port), timeout=timeout)
        else:
            raise ValueError("need socket_path or port to connect to")
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self.busy_retries = max(0, int(busy_retries))
        self.busy_backoff = busy_backoff
        self.busy_backoff_cap = busy_backoff_cap
        #: Total busy replies absorbed by backoff (load reports read it).
        self.busy_retries_used = 0

    # -- plumbing -----------------------------------------------------------

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request; return its ``result`` object or raise
        :class:`ServiceError` / :class:`ServiceBusy`.  ``busy`` replies
        are retried with capped exponential backoff.

        When tracing is on, the request carries the client span's
        context on the wire and every reply's piggybacked ``spans``
        (server + worker) are ingested into the local tracer — one
        connected trace across processes."""
        sp = _span(f"client.{op}")
        try:
            attempt = 0
            while True:
                self._next_id += 1
                message = {"id": self._next_id, "op": op}
                message.update(params)
                if sp.recording:
                    message["trace"] = sp.ctx.to_wire()
                response = self._roundtrip(message)
                if response.get("spans"):
                    get_tracer().ingest(response["spans"])
                if response.get("busy"):
                    error = response.get("error", "server busy")
                    if response.get("retry") is False:
                        raise ServiceBusy(error)
                    if attempt >= self.busy_retries:
                        raise ServiceBusy(
                            f"{error} (after {attempt} retries)")
                    self.busy_retries_used += 1
                    time.sleep(min(self.busy_backoff_cap,
                                   self.busy_backoff * (2 ** attempt)))
                    attempt += 1
                    continue
                # ok/error first: framing-level failures answer with
                # id=None, and their message must not be masked by the
                # id sanity check.
                if not response.get("ok"):
                    raise ServiceError(
                        response.get("error", "unknown error"))
                if response.get("id") != self._next_id:
                    raise ServiceError(
                        f"response id {response.get('id')!r} != request "
                        f"id {self._next_id}")
                if sp.recording:
                    sp.set(op=op, attempts=attempt + 1)
                return response.get("result", {})
        finally:
            sp.end()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def metrics(self) -> Dict[str, Any]:
        """The server's latency/queue/worker/cache telemetry document
        (see :mod:`repro.service.metrics` for the schema)."""
        return self.request("metrics")

    def compile_machine(self, machine: Union[StateMachine, Dict[str, Any]],
                        pattern: str = "nested-switch",
                        level: Union[OptLevel, str, None] = None,
                        target: Optional[str] = None,
                        semantics: SemanticsConfig = UML_DEFAULT_SEMANTICS,
                        want_asm: bool = False) -> Dict[str, Any]:
        """Compile one machine on the server; returns the result
        payload (sizes, pass stats, fingerprint, optionally the
        assembly listing)."""
        return self.request("compile",
                            **compile_params(machine, pattern=pattern,
                                             level=level, target=target,
                                             semantics=semantics,
                                             want_asm=want_asm))

    def submit_batch(self, jobs: Sequence[Dict[str, Any]]
                     ) -> List[Dict[str, Any]]:
        """Submit a grid of compile jobs (each a :func:`compile_params`
        object); results come back in input order."""
        return self.request("batch", jobs=list(jobs))["results"]
