""":class:`CompileService` — an asyncio JSON-lines compile server.

One service fronts one :class:`~repro.engine.ExperimentEngine`; every
connected client shares that engine's cache (point the engine at a
``cache_dir`` and the service becomes a warm, persistent compile
farm).  The event loop only parses and routes; compiles run on the
loop's default executor so the socket stays responsive while the
engine works.

**Request coalescing**: identical compile jobs (same content
fingerprint) that are in flight at the same time — from one client or
many — are folded onto a single computation; late arrivals await the
same task and are counted as *coalesced*.  This is the asyncio
analogue of the cache's in-flight futures, one layer earlier: a
coalesced request never even occupies an executor slot.

**Per-client statistics**: the service tracks requests, compiles,
batch jobs, coalesced hits and errors per live connection, folds
disconnected clients into running totals (so a long-lived server's
stats stay bounded), and serves both — plus the engine's cache
counters — to the ``stats`` operation.

:class:`ServiceThread` wraps server + event loop in a background
thread behind a context manager — the sync-world entry point examples,
tests and the docs use.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..engine import ExperimentEngine
from .protocol import (MAX_LINE_BYTES, compile_result_payload,
                       decode_message, encode_message, job_from_params)

__all__ = ["ClientStats", "CompileService", "start_service",
           "ServiceThread"]


@dataclass
class ClientStats:
    """Counters of one client connection."""

    peer: str = ""
    requests: int = 0
    compiles: int = 0
    batch_jobs: int = 0
    coalesced: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {"peer": self.peer, "requests": self.requests,
                "compiles": self.compiles, "batch_jobs": self.batch_jobs,
                "coalesced": self.coalesced, "errors": self.errors}


@dataclass
class _ServiceTotals:
    """Aggregate counters (mutated on the event-loop thread only).

    Disconnected clients fold into these, so the per-client table can
    hold *live* connections only without losing history."""

    connections: int = 0
    requests: int = 0
    compiles: int = 0
    batch_jobs: int = 0
    coalesced: int = 0
    errors: int = 0

    def absorb(self, client: "ClientStats") -> None:
        self.compiles += client.compiles
        self.batch_jobs += client.batch_jobs


class CompileService:
    """Routes wire requests onto one shared experiment engine."""

    def __init__(self, engine: Optional[ExperimentEngine] = None) -> None:
        self.engine = engine if engine is not None else ExperimentEngine()
        self.totals = _ServiceTotals()
        self.clients: Dict[str, ClientStats] = {}
        #: compile fingerprint -> in-flight asyncio task (coalescing).
        self._inflight: Dict[str, asyncio.Task] = {}

    # -- connection handling ------------------------------------------------

    async def handle_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self.totals.connections += 1
        name = f"client-{self.totals.connections}"
        peername = writer.get_extra_info("peername")
        client = ClientStats(peer=repr(peername) if peername else "unix")
        self.clients[name] = client              # live connections only
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(
                        {"ok": False, "error": "request line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line, name, client)
                writer.write(encode_message(response))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            # Retire the per-client row (unbounded growth otherwise on a
            # long-lived server); its counters live on in the totals.
            self.totals.absorb(client)
            self.clients.pop(name, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, name: str,
                           client: ClientStats) -> Dict[str, Any]:
        client.requests += 1
        self.totals.requests += 1
        request_id = None
        try:
            message = decode_message(line)
            request_id = message.get("id")
            op = message.get("op")
            result = await self._dispatch(op, message, name, client)
        except Exception as exc:
            client.errors += 1
            self.totals.errors += 1
            return {"id": request_id, "ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        return {"id": request_id, "ok": True, "result": result}

    # -- operations ---------------------------------------------------------

    async def _dispatch(self, op: Any, message: Dict[str, Any], name: str,
                        client: ClientStats) -> Dict[str, Any]:
        if op == "ping":
            from .. import __version__
            return {"pong": True, "version": __version__}
        if op == "stats":
            return self.stats_payload()
        if op == "compile":
            return await self._compile_one(message, client)
        if op == "batch":
            return await self._compile_batch(message, client)
        raise ValueError(f"unknown operation {op!r}")

    async def _compile_one(self, message: Dict[str, Any],
                           client: ClientStats) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        # Deserializing and fingerprinting a machine is CPU work
        # proportional to its size — executor, not event loop.
        job = await loop.run_in_executor(
            None, lambda: job_from_params(message))
        key = await loop.run_in_executor(None, job.fingerprint)
        task = self._inflight.get(key)
        if task is None:
            task = loop.create_task(self._run_compile(job))
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _key=key: self._inflight.pop(_key, None))
        else:
            client.coalesced += 1
            self.totals.coalesced += 1
        client.compiles += 1
        # shield: one requester disconnecting must not cancel the shared
        # computation other requesters of the same key are awaiting.
        result = await asyncio.shield(task)
        return await loop.run_in_executor(
            None, lambda: compile_result_payload(
                job, result, want_asm=bool(message.get("want_asm"))))

    async def _run_compile(self, job):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.engine.compile_machine(
                job.machine, pattern=job.pattern, level=job.level,
                target=job.target, semantics=job.semantics))

    async def _compile_batch(self, message: Dict[str, Any],
                             client: ClientStats) -> Dict[str, Any]:
        raw_jobs = message.get("jobs")
        if not isinstance(raw_jobs, list):
            raise ValueError("batch needs a 'jobs' array")
        client.batch_jobs += len(raw_jobs)

        def run_whole_batch():
            # Deserialization and planning are CPU work proportional to
            # the grid — keep them off the event-loop thread too.
            jobs = [job_from_params(params) for params in raw_jobs]
            results, plan = self.engine.run_batch_planned(jobs)
            return [
                compile_result_payload(
                    job, result, want_asm=bool(params.get("want_asm")))
                for params, job, result in zip(raw_jobs, jobs, results)
            ], plan.n_deduplicated

        loop = asyncio.get_running_loop()
        payloads, deduplicated = await loop.run_in_executor(
            None, run_whole_batch)
        return {"results": payloads, "deduplicated": deduplicated}

    # -- introspection ------------------------------------------------------

    def stats_payload(self) -> Dict[str, Any]:
        stats = self.engine.stats
        unit_stats = getattr(self.engine, "unit_stats", None)
        delta_stats = getattr(self.engine, "delta_stats", None)
        return {
            "engine": {
                "jobs": self.engine.jobs,
                "hits": stats.hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "lookups": stats.lookups,
                "hit_rate": stats.hit_rate,
            },
            # The per-unit cache tier behind delta compiles: batch
            # clients sharing structure (same action bodies across
            # machine variants) show up as unit hits even when every
            # whole-module fingerprint is new.
            "units": {
                "hits": unit_stats.hits if unit_stats else 0,
                "disk_hits": unit_stats.disk_hits if unit_stats else 0,
                "misses": unit_stats.misses if unit_stats else 0,
                "reused": delta_stats.reused_units if delta_stats else 0,
                "compiled": delta_stats.compiled_units if delta_stats else 0,
            },
            "service": {
                "connections": self.totals.connections,
                "requests": self.totals.requests,
                "compiles": self.totals.compiles +
                sum(c.compiles for c in self.clients.values()),
                "batch_jobs": self.totals.batch_jobs +
                sum(c.batch_jobs for c in self.clients.values()),
                "coalesced": self.totals.coalesced,
                "errors": self.totals.errors,
            },
            # live connections only; disconnected clients are folded
            # into the service totals above.
            "clients": {name: client.as_dict()
                        for name, client in sorted(self.clients.items())},
        }


async def start_service(engine: Optional[ExperimentEngine] = None,
                        socket_path: Optional[str] = None,
                        host: Optional[str] = None,
                        port: Optional[int] = None,
                        ) -> Tuple[asyncio.AbstractServer, CompileService]:
    """Start serving on a unix socket (*socket_path*) or TCP
    (*host*/*port*); returns ``(asyncio server, service)``."""
    service = CompileService(engine)
    if socket_path is not None:
        server = await asyncio.start_unix_server(
            service.handle_client, path=socket_path, limit=MAX_LINE_BYTES)
    elif port is not None:
        server = await asyncio.start_server(
            service.handle_client, host=host or "127.0.0.1", port=port,
            limit=MAX_LINE_BYTES)
    else:
        raise ValueError("need socket_path or port to serve on")
    return server, service


class ServiceThread:
    """A compile service on a background thread (context manager).

    With no address arguments a throwaway unix socket is created::

        with ServiceThread(engine) as handle:
            with handle.client() as client:
                client.ping()
    """

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 socket_path: Optional[str] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._own_socket_dir: Optional[str] = None
        if socket_path is None and port is None:
            self._own_socket_dir = tempfile.mkdtemp(prefix="repro-service-")
            socket_path = os.path.join(self._own_socket_dir, "service.sock")
        self.socket_path = socket_path
        self.server: Optional[asyncio.AbstractServer] = None
        self.service: Optional[CompileService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            start_service(self.engine, socket_path=self.socket_path,
                          host=self.host, port=self.port), self._loop)
        self.server, self.service = future.result(timeout=30)
        if self.socket_path is None:
            self.port = self.server.sockets[0].getsockname()[1]
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def stop(self) -> None:
        if self._loop is None:
            return
        if self.server is not None:
            async def _close(server=self.server):
                server.close()
                await server.wait_closed()
            asyncio.run_coroutine_threadsafe(_close(),
                                             self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop.close()
        self._loop = self._thread = self.server = None
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._own_socket_dir and os.path.isdir(self._own_socket_dir):
            try:
                os.rmdir(self._own_socket_dir)
            except OSError:
                pass

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- conveniences -------------------------------------------------------

    def client(self):
        """A :class:`~repro.service.client.ServiceClient` for this
        server's address."""
        from .client import ServiceClient
        if self.socket_path is not None:
            return ServiceClient(socket_path=self.socket_path)
        return ServiceClient(host=self.host, port=self.port)

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"
